//===- support/Wire.cpp - Length-prefixed frame I/O -----------------------===//
//
// Part of the SDSP project: a reproduction of Gao, Wong & Ning,
// "A Timed Petri-Net Model for Fine-Grain Loop Scheduling", PLDI 1991.
//
//===----------------------------------------------------------------------===//

#include "support/Wire.h"

#ifndef _WIN32

#include <cerrno>
#include <cstring>
#include <unistd.h>

namespace sdsp {

namespace {

Status ioError(const char *What) {
  return Status::error(ErrorCode::TransientFault, "wire",
                       std::string(What) + ": " + std::strerror(errno));
}

/// Reads exactly \p N bytes.  Returns 1 on success, 0 on EOF at offset
/// zero (clean close), -1 on error or a torn frame (errno untouched for
/// the torn case; Err filled either way).
int readAll(int Fd, char *Buf, size_t N, Status &Err) {
  size_t Got = 0;
  while (Got < N) {
    ssize_t R = ::read(Fd, Buf + Got, N - Got);
    if (R < 0) {
      if (errno == EINTR)
        continue;
      Err = ioError("read failed");
      return -1;
    }
    if (R == 0) {
      if (Got == 0)
        return 0;
      Err = Status::error(ErrorCode::TransientFault, "wire",
                          "connection closed mid-frame");
      return -1;
    }
    Got += static_cast<size_t>(R);
  }
  return 1;
}

} // namespace

Status readFrame(int Fd, std::string &Payload, bool &CleanClose) {
  CleanClose = false;
  unsigned char Len[4];
  Status Err;
  int R = readAll(Fd, reinterpret_cast<char *>(Len), sizeof(Len), Err);
  if (R == 0) {
    CleanClose = true;
    return Status::error(ErrorCode::TransientFault, "wire",
                         "connection closed");
  }
  if (R < 0)
    return Err;
  uint32_t N = static_cast<uint32_t>(Len[0]) |
               (static_cast<uint32_t>(Len[1]) << 8) |
               (static_cast<uint32_t>(Len[2]) << 16) |
               (static_cast<uint32_t>(Len[3]) << 24);
  if (N > MaxWireFrameBytes)
    return Status::error(ErrorCode::InvalidInput, "wire",
                         "frame length " + std::to_string(N) +
                             " exceeds the " +
                             std::to_string(MaxWireFrameBytes) +
                             "-byte limit");
  Payload.resize(N);
  if (N > 0 && readAll(Fd, Payload.data(), N, Err) <= 0) {
    if (Err.code() == ErrorCode::Ok)
      Err = Status::error(ErrorCode::TransientFault, "wire",
                          "connection closed mid-frame");
    return Err;
  }
  return Status::ok();
}

Status writeFrame(int Fd, const std::string &Payload) {
  if (Payload.size() > MaxWireFrameBytes)
    return Status::error(ErrorCode::InvalidInput, "wire",
                         "frame payload exceeds the limit");
  uint32_t N = static_cast<uint32_t>(Payload.size());
  unsigned char Len[4] = {static_cast<unsigned char>(N),
                          static_cast<unsigned char>(N >> 8),
                          static_cast<unsigned char>(N >> 16),
                          static_cast<unsigned char>(N >> 24)};
  struct Chunk {
    const char *Data;
    size_t Size;
  } Chunks[2] = {{reinterpret_cast<const char *>(Len), sizeof(Len)},
                 {Payload.data(), Payload.size()}};
  for (const Chunk &C : Chunks) {
    size_t Sent = 0;
    while (Sent < C.Size) {
      ssize_t W = ::write(Fd, C.Data + Sent, C.Size - Sent);
      if (W < 0) {
        if (errno == EINTR)
          continue;
        return ioError("write failed");
      }
      Sent += static_cast<size_t>(W);
    }
  }
  return Status::ok();
}

} // namespace sdsp

#endif // _WIN32
