//===- support/Wire.h - Length-prefixed frame I/O ---------------*- C++ -*-===//
//
// Part of the SDSP project: a reproduction of Gao, Wong & Ning,
// "A Timed Petri-Net Model for Fine-Grain Loop Scheduling", PLDI 1991.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The sdspd wire framing (docs/SERVICE.md): every message is a 4-byte
/// little-endian payload length followed by that many payload bytes
/// (UTF-8 JSON at the protocol layer; this file does not interpret
/// them).  Reads and writes retry on EINTR and on short transfers, so
/// callers see whole frames or a clean error.  An upper bound on the
/// frame length guards the daemon against a hostile or corrupt length
/// prefix committing it to a multi-gigabyte allocation.
///
/// POSIX file descriptors only — the daemon speaks Unix-domain sockets
/// and is compiled on UNIX hosts (tools/CMakeLists.txt gates it).
///
//===----------------------------------------------------------------------===//

#ifndef SDSP_SUPPORT_WIRE_H
#define SDSP_SUPPORT_WIRE_H

#include "support/Status.h"

#include <cstdint>
#include <string>

namespace sdsp {

/// Largest accepted frame payload (64 MiB).  Compile requests are tiny;
/// responses carry captured stdout plus any JSON file outputs, which
/// stay far below this for every bundled corpus.
inline constexpr uint32_t MaxWireFrameBytes = 64u << 20;

/// Reads one frame from \p Fd into \p Payload.  Returns Ok on success;
/// a Status with stage "wire" on a malformed length, a short read, or
/// an I/O error.  A clean EOF before any length byte sets
/// \p CleanClose and returns an error Status — connection teardown
/// between frames is a normal event the caller distinguishes from a
/// torn frame.
Status readFrame(int Fd, std::string &Payload, bool &CleanClose);

/// Writes one frame (length prefix + \p Payload) to \p Fd.
Status writeFrame(int Fd, const std::string &Payload);

} // namespace sdsp

#endif // SDSP_SUPPORT_WIRE_H
