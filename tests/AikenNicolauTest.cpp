//===- tests/AikenNicolauTest.cpp - A-N baseline tests ---------------------===//
//
// Part of the SDSP project: a reproduction of Gao, Wong & Ning,
// "A Timed Petri-Net Model for Fine-Grain Loop Scheduling", PLDI 1991.
//
//===----------------------------------------------------------------------===//

#include "sched/AikenNicolau.h"

#include "TestUtil.h"
#include "core/RateAnalysis.h"
#include "core/SdspPn.h"
#include "gtest/gtest.h"

using namespace sdsp;
using namespace sdsp::testutil;

namespace {

TEST(AikenNicolau, DoallIsUnbounded) {
  // Without loop-carried deps and without storage limits, greedy
  // scheduling starts every iteration at once.
  DepGraph D = depGraphFromSdsp(Sdsp::standard(buildL1()));
  auto R = aikenNicolauSchedule(D);
  ASSERT_TRUE(R.has_value());
  EXPECT_TRUE(R->unboundedRate());
}

TEST(AikenNicolau, L2ConvergesToTheRecurrenceRate) {
  DepGraph D = depGraphFromSdsp(Sdsp::standard(buildL2Direct()));
  auto R = aikenNicolauSchedule(D);
  ASSERT_TRUE(R.has_value());
  EXPECT_FALSE(R->unboundedRate());
  EXPECT_EQ(R->rate(), Rational(1, 3)) << "limited by C-D-E-C";
}

TEST(AikenNicolau, WithAcksMatchesPetriNetRate) {
  for (bool UseL2 : {false, true}) {
    Sdsp S = Sdsp::standard(UseL2 ? buildL2Direct() : buildL1());
    DepGraph D = depGraphFromSdspWithAcks(S);
    auto R = aikenNicolauSchedule(D);
    ASSERT_TRUE(R.has_value());
    SdspPn Pn = buildSdspPn(S);
    EXPECT_EQ(R->rate(), analyzeRate(Pn).OptimalRate);
  }
}

TEST(AikenNicolau, ScheduleRespectsDependences) {
  Sdsp S = Sdsp::standard(buildL2Direct());
  DepGraph D = depGraphFromSdspWithAcks(S);
  auto R = aikenNicolauSchedule(D);
  ASSERT_TRUE(R.has_value());
  for (size_t Iter = 0; Iter < R->StartTimes.size(); ++Iter)
    for (const DepGraph::Dep &Dep : D.Deps) {
      if (Dep.Distance > Iter)
        continue;
      uint64_t Src = R->StartTimes[Iter - Dep.Distance][Dep.From];
      EXPECT_GE(R->StartTimes[Iter][Dep.To],
                Src + D.Ops[Dep.From].Latency);
    }
}

TEST(AikenNicolau, PatternSelfConsistent) {
  Sdsp S = Sdsp::standard(buildL2Direct());
  DepGraph D = depGraphFromSdsp(S);
  auto R = aikenNicolauSchedule(D);
  ASSERT_TRUE(R.has_value());
  // Inside the detected pattern each op drifts by a constant per-op
  // amount per k iterations, none above p, and ops on the critical
  // recurrence drift by exactly p (off-cycle ops may run ahead — the
  // gap the paper highlights in Aiken-Nicolau's analysis).
  uint64_t K = R->IterationsPerPattern, P = R->CyclesPerPattern;
  ASSERT_GE(K, 1u);
  std::vector<uint64_t> Drift(D.size());
  for (size_t Op = 0; Op < D.size(); ++Op)
    Drift[Op] = R->StartTimes[R->PatternStart + K][Op] -
                R->StartTimes[R->PatternStart][Op];
  uint64_t MaxDrift = 0;
  for (uint64_t Dr : Drift)
    MaxDrift = std::max(MaxDrift, Dr);
  EXPECT_EQ(MaxDrift, P);
  for (uint64_t I = R->PatternStart;
       I + K < R->StartTimes.size(); ++I)
    for (size_t Op = 0; Op < D.size(); ++Op) {
      EXPECT_LE(R->StartTimes[I + K][Op],
                R->StartTimes[I][Op] + P);
      EXPECT_EQ(R->StartTimes[I + K][Op] - R->StartTimes[I][Op],
                Drift[Op]);
    }
}

TEST(AikenNicolau, ConvergesQuicklyOnRandomLoops) {
  Rng Rand(606);
  for (int Trial = 0; Trial < 10; ++Trial) {
    DataflowGraph G = buildRandomLoopGraph(Rand, 4 + Trial % 5, 30);
    Sdsp S = Sdsp::standard(G);
    DepGraph D = depGraphFromSdspWithAcks(S);
    auto R = aikenNicolauSchedule(D);
    ASSERT_TRUE(R.has_value()) << "trial " << Trial;
    EXPECT_LE(R->IterationsExamined, 4 * D.size() * D.size() + 16)
        << "trial " << Trial;
  }
}

} // namespace
