//===- tests/AnalyticFuzzTest.cpp - Analytic engine vs simulator oracles ---===//
//
// Part of the SDSP project: a reproduction of Gao, Wong & Ning,
// "A Timed Petri-Net Model for Fine-Grain Loop Scheduling", PLDI 1991.
//
//===----------------------------------------------------------------------===//
//
// The analytic frustum engine (petri/AnalyticSteadyState.h) constructs
// the frustum window from the max-plus round recurrence instead of
// simulating instant by instant.  Its contract is the same as the fast
// engine's: byte-identical FrustumInfo — boundaries, repeated state,
// per-instant trace, firing counts — and identical diagnostics when the
// detection fails.  This suite pins detectFrustumAnalytic against BOTH
// simulators (detectFrustumChecked and the naive detectFrustumReference)
// on a 200-net fuzz family, and guards against the equivalence becoming
// vacuous: a minimum number of nets must actually take the analytic
// path rather than falling back to simulation.
//
// It also pins the budget boundary semantics (the satellite of this
// change): budgets straddling the repeat instant and tiny budgets of a
// few steps must produce identical success-or-BudgetExceeded outcomes,
// including the diagnostic text, from all three engines.
//
//===----------------------------------------------------------------------===//

#include "core/Frustum.h"

#include "TestUtil.h"
#include "core/ScpModel.h"
#include "core/Sdsp.h"
#include "core/SdspPn.h"
#include "livermore/Livermore.h"
#include "loopir/Lowering.h"
#include "gtest/gtest.h"

using namespace sdsp;
using namespace sdsp::testutil;

namespace {

/// Asserts the analytic detector agrees byte for byte with a simulator
/// result: identical FrustumInfo on success, identical status code and
/// message on failure.
void expectSameResult(const Expected<FrustumInfo> &Ana,
                      const Expected<FrustumInfo> &Sim,
                      const std::string &Label) {
  ASSERT_EQ(Ana.ok(), Sim.ok()) << Label;
  if (!Ana) {
    EXPECT_EQ(Ana.status().code(), Sim.status().code()) << Label;
    EXPECT_EQ(Ana.status().message(), Sim.status().message()) << Label;
    return;
  }
  EXPECT_EQ(Ana->StartTime, Sim->StartTime) << Label;
  EXPECT_EQ(Ana->RepeatTime, Sim->RepeatTime) << Label;
  EXPECT_TRUE(Ana->State == Sim->State) << Label;
  EXPECT_EQ(Ana->FiringCounts, Sim->FiringCounts) << Label;
  ASSERT_EQ(Ana->Trace.size(), Sim->Trace.size()) << Label;
  for (size_t I = 0; I < Ana->Trace.size(); ++I) {
    const StepRecord &A = Ana->Trace[I];
    const StepRecord &B = Sim->Trace[I];
    EXPECT_EQ(A.Time, B.Time) << Label << " step " << I;
    EXPECT_EQ(A.Completed, B.Completed) << Label << " step " << I;
    EXPECT_EQ(A.Fired, B.Fired) << Label << " step " << I;
  }
}

/// Runs all three engines on \p Net under \p Budget and asserts full
/// agreement.  Returns true when the analytic path actually ran (no
/// fallback), so callers can enforce an anti-vacuity floor.
bool expectAnalyticGolden(const PetriNet &Net, FrustumBudget Budget,
                          const std::string &Label) {
  std::string Reason;
  Expected<FrustumInfo> Ana =
      detectFrustumAnalytic(Net, nullptr, Budget, {}, nullptr, &Reason);
  Expected<FrustumInfo> Fast = detectFrustumChecked(Net, nullptr, Budget);
  Expected<FrustumInfo> Ref = detectFrustumReference(Net, nullptr, Budget);
  expectSameResult(Ana, Fast, Label + "/vs-fast");
  expectSameResult(Ana, Ref, Label + "/vs-reference");
  return Reason.empty();
}

/// The fuzz family: every fifth net is a ring (token count 1-3, so the
/// multi-token ones exercise the not-1-bounded fallback), the rest are
/// random live safe marked graphs with chords (whose tied cycle ratios
/// exercise the multiple-critical-cycles fallback).
PetriNet fuzzNet(Rng &R, int Case) {
  if (Case % 5 == 0)
    return buildRing(static_cast<size_t>(3 + Case % 7),
                     static_cast<uint32_t>(1 + Case % 3));
  return buildRandomMarkedGraph(R, static_cast<size_t>(3 + Case % 10),
                                static_cast<size_t>(Case % 5));
}

TEST(AnalyticFuzz, FuzzFamilyByteIdentical) {
  Rng R(0xa11a'11cull);
  int AnalyticRuns = 0;
  for (int Case = 0; Case < 200; ++Case) {
    PetriNet Net = fuzzNet(R, Case);
    if (expectAnalyticGolden(Net, FrustumBudget{},
                             "analytic-fuzz-" + std::to_string(Case)))
      ++AnalyticRuns;
  }
  // Anti-vacuity: the equivalence above proves nothing if every net
  // fell back to the simulator.  The family is built so a substantial
  // fraction qualifies (single-token rings always do); a collapse here
  // means the qualification bar broke, not the family.
  EXPECT_GE(AnalyticRuns, 60)
      << "too few nets took the analytic path; the byte-identity sweep "
         "is no longer testing the analytic engine";
}

TEST(AnalyticFuzz, BudgetBoundariesByteIdentical) {
  // Satellite: budgets pinched around the repeat instant.  A budget of
  // RepeatTime steps must fail (the detection needs instants
  // 0..RepeatTime inclusive); RepeatTime + 1 and beyond must succeed;
  // and the BudgetExceeded diagnostic (instants simulated, firings
  // observed) must be identical across all three engines at every
  // boundary.  Tiny budgets (1-3) pin the short-window accounting.
  Rng R(0xb0d9'e7ull);
  int AnalyticRuns = 0;
  for (int Case = 0; Case < 24; ++Case) {
    PetriNet Net = fuzzNet(R, Case);
    std::string Label = "analytic-budget-" + std::to_string(Case);
    Expected<FrustumInfo> Full = detectFrustumReference(Net);
    ASSERT_TRUE(Full.ok()) << Label;
    TimeStep Rep = Full->RepeatTime;
    for (TimeStep B = Rep > 3 ? Rep - 3 : 1; B <= Rep + 2; ++B)
      if (expectAnalyticGolden(Net, FrustumBudget::steps(B),
                               Label + "/steps-" + std::to_string(B)))
        ++AnalyticRuns;
    for (TimeStep B = 1; B <= 3; ++B)
      if (expectAnalyticGolden(Net, FrustumBudget::steps(B),
                               Label + "/tiny-" + std::to_string(B)))
        ++AnalyticRuns;
  }
  EXPECT_GE(AnalyticRuns, 30) << "budget sweep no longer reaches the "
                                 "analytic path";
}

TEST(AnalyticFuzz, MultiTokenRingFallsBack) {
  // A 2-token place breaks 1-boundedness: the analytic bar must refuse
  // (the closed form assumes a safe marking) and the fallback must
  // still produce the simulators' exact result.
  PetriNet Net = buildRing(4, 2);
  std::string Reason;
  Expected<FrustumInfo> Ana =
      detectFrustumAnalytic(Net, nullptr, {}, {}, nullptr, &Reason);
  EXPECT_EQ(Reason, "initial marking not 1-bounded");
  expectSameResult(Ana, detectFrustumChecked(Net), "ring-2tok");
}

TEST(AnalyticFuzz, ExternalPolicyFallsBack) {
  // A stateful firing policy makes the firing order non-canonical, so
  // the analytic recurrence does not apply; the bar must say so before
  // even looking at the net.
  const LivermoreKernel *K = findKernel("loop5");
  ASSERT_NE(K, nullptr);
  DiagnosticEngine Diags;
  auto G = compileLoop(K->Source, Diags);
  ASSERT_TRUE(G.has_value());
  SdspPn Pn = buildSdspPn(Sdsp::standard(std::move(*G)));
  ScpPn Scp = buildScpPn(Pn, /*PipelineDepth=*/2);
  auto AnaPolicy = Scp.makeFifoPolicy();
  auto SimPolicy = Scp.makeFifoPolicy();
  std::string Reason;
  Expected<FrustumInfo> Ana = detectFrustumAnalytic(
      Scp.Net, AnaPolicy.get(), {}, {}, nullptr, &Reason);
  EXPECT_EQ(Reason, "external firing policy");
  expectSameResult(Ana, detectFrustumChecked(Scp.Net, SimPolicy.get()),
                   "scp-fifo-policy");
}

TEST(AnalyticFuzz, LivermoreParity) {
  // The six Section-5 kernels end to end: l2/loop3 qualify for the
  // analytic path, the others fall back (multiple critical cycles or
  // acyclic nets) — either way the result must match both simulators.
  for (const char *Id :
       {"loop1", "loop7", "loop12", "loop3", "loop5", "loop9lcd"}) {
    const LivermoreKernel *K = findKernel(Id);
    ASSERT_NE(K, nullptr) << Id;
    DiagnosticEngine Diags;
    auto G = compileLoop(K->Source, Diags);
    ASSERT_TRUE(G.has_value()) << Id;
    SdspPn Pn = buildSdspPn(Sdsp::standard(std::move(*G)));
    expectAnalyticGolden(Pn.Net, FrustumBudget{}, std::string("lk-") + Id);
  }
}

} // namespace
