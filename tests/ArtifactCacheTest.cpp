//===- tests/ArtifactCacheTest.cpp - Session artifact-cache behavior -------===//
//
// Part of the SDSP project: a reproduction of Gao, Wong & Ning,
// "A Timed Petri-Net Model for Fine-Grain Loop Scheduling", PLDI 1991.
//
//===----------------------------------------------------------------------===//
//
// The artifact cache must be an invisible optimization: hits are
// observable only through the per-pass counters, never through the
// artifacts themselves.  These tests pin the accounting (hit/miss/
// failure), the invalidation rules (any option change misses, including
// the frustum budget/engine regression), and the disable switches
// (SessionConfig and SDSP_DISABLE_ARTIFACT_CACHE).
//
//===----------------------------------------------------------------------===//

#include "core/Session.h"
#include "core/ArtifactStore.h"
#include "core/SharedArtifactCache.h"
#include "livermore/Livermore.h"

#include "gtest/gtest.h"

#include <cstdlib>
#include <filesystem>
#include <random>
#include <sstream>

using namespace sdsp;

namespace {

/// A session with the cache forced on, immune to the environment.
CompilationSession cachedSession() {
  return CompilationSession(SessionConfig{true});
}

const std::string &kernelSource(const std::string &Id) {
  const LivermoreKernel *K = findKernel(Id);
  EXPECT_NE(K, nullptr) << Id;
  return K->Source;
}

TEST(ArtifactCacheTest, LowerHitAndMissAccounting) {
  CompilationSession S = cachedSession();
  ASSERT_TRUE(S.cacheEnabled());

  auto G1 = S.lower(kernelSource("loop1"));
  ASSERT_TRUE(bool(G1));
  EXPECT_EQ(S.passStats(PassKind::Lower).Invocations, 1u);
  EXPECT_EQ(S.passStats(PassKind::Lower).CacheHits, 0u);
  EXPECT_EQ(S.cacheEntries(), 1u);

  // Same source: a hit, and the exact same artifact object.
  auto G2 = S.lower(kernelSource("loop1"));
  ASSERT_TRUE(bool(G2));
  EXPECT_EQ(S.passStats(PassKind::Lower).Invocations, 2u);
  EXPECT_EQ(S.passStats(PassKind::Lower).CacheHits, 1u);
  EXPECT_EQ(G1->ptr(), G2->ptr());
  EXPECT_EQ(G1->hash(), G2->hash());
  EXPECT_EQ(S.cacheEntries(), 1u);

  // Different source: a miss and a new entry.
  auto G3 = S.lower(kernelSource("loop7"));
  ASSERT_TRUE(bool(G3));
  EXPECT_EQ(S.passStats(PassKind::Lower).Invocations, 3u);
  EXPECT_EQ(S.passStats(PassKind::Lower).CacheHits, 1u);
  EXPECT_NE(G1->hash(), G3->hash());
  EXPECT_EQ(S.cacheEntries(), 2u);
}

TEST(ArtifactCacheTest, OptionChangeInvalidates) {
  CompilationSession S = cachedSession();
  auto G = S.lower(kernelSource("loop1"));
  ASSERT_TRUE(bool(G));

  ASSERT_TRUE(bool(S.buildSdsp(*G, /*Capacity=*/1, false)));
  ASSERT_TRUE(bool(S.buildSdsp(*G, /*Capacity=*/1, false)));
  EXPECT_EQ(S.passStats(PassKind::Sdsp).CacheHits, 1u);

  // A different capacity is a different options fingerprint: miss.
  ASSERT_TRUE(bool(S.buildSdsp(*G, /*Capacity=*/2, false)));
  EXPECT_EQ(S.passStats(PassKind::Sdsp).Invocations, 3u);
  EXPECT_EQ(S.passStats(PassKind::Sdsp).CacheHits, 1u);

  // Same for the storage-minimizer toggle.
  ASSERT_TRUE(bool(S.buildSdsp(*G, /*Capacity=*/1, true)));
  EXPECT_EQ(S.passStats(PassKind::Sdsp).CacheHits, 1u);
}

TEST(ArtifactCacheTest, FailuresAreNeverCached) {
  CompilationSession S = cachedSession();
  for (int I = 0; I < 2; ++I) {
    auto G = S.lower("do i { this is not a loop }");
    EXPECT_FALSE(bool(G));
  }
  const PassStats &PS = S.passStats(PassKind::Lower);
  EXPECT_EQ(PS.Invocations, 2u);
  EXPECT_EQ(PS.CacheHits, 0u);
  EXPECT_EQ(PS.Failures, 2u);
  EXPECT_EQ(S.cacheEntries(), 0u);
}

TEST(ArtifactCacheTest, DisabledCacheNeverHits) {
  CompilationSession S(SessionConfig{false});
  EXPECT_FALSE(S.cacheEnabled());
  ASSERT_TRUE(bool(S.lower(kernelSource("loop1"))));
  ASSERT_TRUE(bool(S.lower(kernelSource("loop1"))));
  EXPECT_EQ(S.passStats(PassKind::Lower).Invocations, 2u);
  EXPECT_EQ(S.passStats(PassKind::Lower).CacheHits, 0u);
  EXPECT_EQ(S.cacheEntries(), 0u);
}

TEST(ArtifactCacheTest, EnvironmentVariableDisables) {
  ASSERT_EQ(setenv("SDSP_DISABLE_ARTIFACT_CACHE", "1", 1), 0);
  EXPECT_FALSE(CompilationSession().cacheEnabled());
  // "0" and empty mean "not disabled".
  ASSERT_EQ(setenv("SDSP_DISABLE_ARTIFACT_CACHE", "0", 1), 0);
  EXPECT_TRUE(CompilationSession().cacheEnabled());
  ASSERT_EQ(setenv("SDSP_DISABLE_ARTIFACT_CACHE", "", 1), 0);
  EXPECT_TRUE(CompilationSession().cacheEnabled());
  // An explicit SessionConfig beats the environment.
  ASSERT_EQ(setenv("SDSP_DISABLE_ARTIFACT_CACHE", "1", 1), 0);
  EXPECT_TRUE(CompilationSession(SessionConfig{true}).cacheEnabled());
  ASSERT_EQ(unsetenv("SDSP_DISABLE_ARTIFACT_CACHE"), 0);
  EXPECT_TRUE(CompilationSession().cacheEnabled());
}

TEST(ArtifactCacheTest, ClearCacheForcesRecompute) {
  CompilationSession S = cachedSession();
  ASSERT_TRUE(bool(S.lower(kernelSource("loop1"))));
  S.clearCache();
  EXPECT_EQ(S.cacheEntries(), 0u);
  ASSERT_TRUE(bool(S.lower(kernelSource("loop1"))));
  EXPECT_EQ(S.passStats(PassKind::Lower).Invocations, 2u);
  EXPECT_EQ(S.passStats(PassKind::Lower).CacheHits, 0u);
}

/// Regression for the frustum options fingerprint: a cached success
/// under a generous budget must NOT be served when the caller asks for
/// a budget too small to have produced it (and vice versa: the small-
/// budget failure must not poison later generous-budget searches).
TEST(ArtifactCacheTest, BudgetChangeInvalidatesFrustum) {
  CompilationSession S = cachedSession();
  auto G = S.lower(kernelSource("loop7"));
  ASSERT_TRUE(bool(G));
  auto Sd = S.buildSdsp(*G, 1, false);
  ASSERT_TRUE(bool(Sd));
  auto Pn = S.buildPn(*Sd);
  ASSERT_TRUE(bool(Pn));

  // Default (theory-bound) budget succeeds and populates the cache.
  auto Found = S.searchFrustum(*Pn, FrustumOptions{});
  ASSERT_TRUE(bool(Found));
  EXPECT_EQ(S.passStats(PassKind::Frustum).CacheHits, 0u);

  // One step cannot reach the frustum: must recompute and fail, not
  // answer from the cached success.
  FrustumOptions Tiny;
  Tiny.BudgetSteps = 1;
  auto Starved = S.searchFrustum(*Pn, Tiny);
  ASSERT_FALSE(bool(Starved));
  EXPECT_EQ(Starved.status().code(), ErrorCode::BudgetExceeded);
  EXPECT_EQ(S.passStats(PassKind::Frustum).Invocations, 2u);
  EXPECT_EQ(S.passStats(PassKind::Frustum).CacheHits, 0u);

  // And the failure was not cached: the default budget still hits the
  // original success.
  auto Again = S.searchFrustum(*Pn, FrustumOptions{});
  ASSERT_TRUE(bool(Again));
  EXPECT_EQ(S.passStats(PassKind::Frustum).CacheHits, 1u);
  EXPECT_EQ(Again->ptr(), Found->ptr());
}

/// Regression for the engine half of the fingerprint: switching between
/// the fast and reference engines must recompute (they are timed
/// against each other), while agreeing on the result.
TEST(ArtifactCacheTest, EngineChangeInvalidatesFrustum) {
  CompilationSession S = cachedSession();
  auto G = S.lower(kernelSource("l2"));
  ASSERT_TRUE(bool(G));
  auto Sd = S.buildSdsp(*G, 1, false);
  ASSERT_TRUE(bool(Sd));
  auto Pn = S.buildPn(*Sd);
  ASSERT_TRUE(bool(Pn));

  auto Fast = S.searchFrustum(*Pn, FrustumOptions{});
  ASSERT_TRUE(bool(Fast));
  FrustumOptions Ref;
  Ref.Engine = FrustumEngine::Reference;
  auto Slow = S.searchFrustum(*Pn, Ref);
  ASSERT_TRUE(bool(Slow));
  EXPECT_EQ(S.passStats(PassKind::Frustum).Invocations, 2u);
  EXPECT_EQ(S.passStats(PassKind::Frustum).CacheHits, 0u);

  // Distinct computations, identical frustum (the golden-equivalence
  // contract), and each now hits its own cache line.
  EXPECT_EQ((*Fast)->StartTime, (*Slow)->StartTime);
  EXPECT_EQ((*Fast)->RepeatTime, (*Slow)->RepeatTime);
  ASSERT_TRUE(bool(S.searchFrustum(*Pn, FrustumOptions{})));
  ASSERT_TRUE(bool(S.searchFrustum(*Pn, Ref)));
  EXPECT_EQ(S.passStats(PassKind::Frustum).CacheHits, 2u);
}

TEST(ArtifactCacheTest, ValidateIterationsIsPartOfScheduleKey) {
  CompilationSession S = cachedSession();
  auto G = S.lower(kernelSource("l2"));
  ASSERT_TRUE(bool(G));
  auto Sd = S.buildSdsp(*G, 1, false);
  ASSERT_TRUE(bool(Sd));
  auto Pn = S.buildPn(*Sd);
  ASSERT_TRUE(bool(Pn));
  auto F = S.searchFrustum(*Pn, FrustumOptions{});
  ASSERT_TRUE(bool(F));

  ASSERT_TRUE(bool(S.deriveSchedule(*Sd, *Pn, *F, 32)));
  ASSERT_TRUE(bool(S.deriveSchedule(*Sd, *Pn, *F, 32)));
  EXPECT_EQ(S.passStats(PassKind::Schedule).CacheHits, 1u);
  ASSERT_TRUE(bool(S.deriveSchedule(*Sd, *Pn, *F, 64)));
  EXPECT_EQ(S.passStats(PassKind::Schedule).Invocations, 3u);
  EXPECT_EQ(S.passStats(PassKind::Schedule).CacheHits, 1u);
}

TEST(ArtifactCacheTest, PersistentStoreHonorsOptionFingerprints) {
  // The invalidation rules survive the disk tier: an artifact persisted
  // under one options fingerprint is never served to a request with a
  // different one, even across "processes" (fresh memory tiers over one
  // directory; see tests/ArtifactStoreTest.cpp for the store itself).
  std::random_device RD;
  std::ostringstream Name;
  Name << "sdsp-cache-fp-" << std::hex << RD() << RD();
  std::filesystem::path Dir = std::filesystem::temp_directory_path() / Name.str();
  std::filesystem::create_directories(Dir);

  PipelineOptions Cap1;
  PipelineOptions Cap2;
  Cap2.Capacity = 2;

  auto CompileCold = [&](const PipelineOptions &PO, DiskStore::Counters &C) {
    MemoryStore Memory;
    DiskStore Disk(DiskStore::Config{Dir.string(), 0});
    TieredStore Tiered(Memory, Disk);
    SessionConfig SC;
    SC.Store = &Tiered;
    SC.EnableCache = true;
    CompilationSession S(SC);
    auto R = S.compile(kernelSource("loop1"), PO);
    EXPECT_TRUE(R) << R.status().str();
    C = Disk.counters();
  };

  DiskStore::Counters First, Second, Third;
  CompileCold(Cap1, First);
  EXPECT_GT(First.Writes, 0u);
  EXPECT_EQ(First.Hits, 0u);

  // Capacity is part of the sdsp-pass fingerprint: the lowering hits
  // from disk, but the capacity-dependent chain recomputes and writes
  // new objects rather than replaying the capacity-1 artifacts.
  CompileCold(Cap2, Second);
  EXPECT_GT(Second.Hits, 0u);
  EXPECT_GT(Second.Writes, 0u);

  // Both fingerprints now coexist; replaying either is all hits.
  CompileCold(Cap1, Third);
  EXPECT_EQ(Third.Misses, 0u);
  EXPECT_EQ(Third.Writes, 0u);

  std::error_code EC;
  std::filesystem::remove_all(Dir, EC);
}

} // namespace
