//===- tests/ArtifactStoreTest.cpp - Persistent artifact-store tests -------===//
//
// Part of the SDSP project: a reproduction of Gao, Wong & Ning,
// "A Timed Petri-Net Model for Fine-Grain Loop Scheduling", PLDI 1991.
//
//===----------------------------------------------------------------------===//
//
// Pins the tiered persistent store (core/ArtifactStore.h): a cold
// process over a warm directory serves every cacheable pass from disk
// with byte-identical results, corrupt objects degrade to recompute
// (and are healed), an injected store:write fault skips the write
// without poisoning the index, the byte budget evicts LRU objects, and
// a lost index is rebuilt by scanning objects/.
//
//===----------------------------------------------------------------------===//

#include "core/ArtifactStore.h"

#include "core/Session.h"
#include "core/SharedArtifactCache.h"
#include "livermore/Livermore.h"
#include "support/FaultInjection.h"

#include "gtest/gtest.h"

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <random>
#include <sstream>
#include <string>
#include <vector>

using namespace sdsp;
namespace fs = std::filesystem;

namespace {

/// A unique scratch directory, removed on destruction.
struct TempDir {
  fs::path Path;

  TempDir() {
    std::random_device RD;
    std::ostringstream Name;
    Name << "sdsp-store-test-" << std::hex << RD() << RD();
    Path = fs::temp_directory_path() / Name.str();
    fs::create_directories(Path);
  }
  ~TempDir() {
    std::error_code EC;
    fs::remove_all(Path, EC);
  }
  std::string str() const { return Path.string(); }
};

const std::string &kernelSource(const std::string &Id) {
  const LivermoreKernel *K = findKernel(Id);
  EXPECT_NE(K, nullptr) << Id;
  return K->Source;
}

/// One "process": a fresh memory tier over the (persistent) disk tier.
struct Process {
  MemoryStore Memory;
  DiskStore Disk;
  TieredStore Tiered;

  explicit Process(const std::string &Dir, uint64_t MaxBytes = 0)
      : Disk(DiskStore::Config{Dir, MaxBytes}), Tiered(Memory, Disk) {}
};

SessionConfig storeConfig(ArtifactStore &Store,
                          FaultContext *Faults = nullptr) {
  SessionConfig SC;
  SC.Store = &Store;
  SC.EnableCache = true;
  SC.Faults = Faults;
  return SC;
}

/// Renders the bytes a byte-identical recompile must reproduce: rate,
/// frustum, and the full schedule table.
std::string summarize(const CompiledLoop &CL) {
  std::ostringstream OS;
  OS << CL.Rate->OptimalRate << " [" << CL.Frustum->StartTime << ", "
     << CL.Frustum->RepeatTime << ")\n";
  std::vector<std::string> Names;
  for (TransitionId T : CL.Pn->Net.transitionIds())
    Names.push_back(CL.Pn->Net.transition(T).Name);
  CL.Schedule->print(OS, Names);
  return OS.str();
}

/// Compiles \p Source in \p S (--verify semantics) and summarizes.
std::string compileIn(CompilationSession &S, const std::string &Source) {
  PipelineOptions PO;
  PO.Verify = true;
  auto R = S.compile(Source, PO);
  EXPECT_TRUE(R) << R.status().str();
  return R ? summarize(*R) : "<failed>";
}

/// One-shot: a throwaway session over \p Store.
std::string compileSummary(ArtifactStore &Store, const std::string &Source,
                           FaultContext *Faults = nullptr) {
  CompilationSession S(storeConfig(Store, Faults));
  return compileIn(S, Source);
}

/// Total invocations of cache-registered passes in \p S, and how many
/// of them were answered from the store.
void cachedPassCounts(const CompilationSession &S, uint64_t &Invocations,
                      uint64_t &Hits) {
  Invocations = Hits = 0;
  for (size_t P = 0; P < NumPassKinds; ++P) {
    if (!passInfo(static_cast<PassKind>(P)).Cached)
      continue;
    Invocations += S.passStats(static_cast<PassKind>(P)).Invocations;
    Hits += S.passStats(static_cast<PassKind>(P)).CacheHits;
  }
}

size_t objectFileCount(const fs::path &Dir) {
  size_t N = 0;
  std::error_code EC;
  for (auto It = fs::recursive_directory_iterator(Dir / "objects", EC);
       It != fs::recursive_directory_iterator(); ++It)
    if (It->is_regular_file())
      ++N;
  return N;
}

size_t indexLineCount(const fs::path &Dir) {
  std::ifstream In(Dir / "index");
  size_t N = 0;
  std::string Line;
  while (std::getline(In, Line))
    if (!Line.empty())
      ++N;
  return N;
}

//===----------------------------------------------------------------------===//
// Cold-restart persistence.
//===----------------------------------------------------------------------===//

TEST(ArtifactStoreTest, ColdRestartServesLivermoreKernelsFromDisk) {
  // The acceptance shape (docs/SERVICE.md): compile the six Livermore
  // kernels, tear the process-local tiers down, and recompile cold —
  // every cacheable pass is a disk hit and the output is byte-identical.
  const char *Kernels[] = {"loop1", "loop3", "loop5",
                           "loop7", "loop9", "loop12"};
  for (const char *Id : Kernels) {
    TempDir Dir;
    std::string ColdSummary;
    uint64_t ColdWrites = 0;
    {
      Process Cold(Dir.str());
      ColdSummary = compileSummary(Cold.Tiered, kernelSource(Id));
      auto C = Cold.Disk.counters();
      EXPECT_GT(C.Writes, 0u) << Id;
      EXPECT_EQ(C.Hits, 0u) << Id;
      ColdWrites = C.Writes;
      EXPECT_EQ(Cold.Disk.entries(), ColdWrites) << Id;
    } // The memory tier dies with the "process"; the directory stays.

    Process Warm(Dir.str());
    CompilationSession S(storeConfig(Warm.Tiered));
    std::string WarmSummary = compileIn(S, kernelSource(Id));
    EXPECT_EQ(WarmSummary, ColdSummary) << Id;

    // Every cacheable pass was answered from the store, and the store
    // answered every distinct key from disk without recomputing or
    // rewriting anything.
    uint64_t Invocations = 0, Hits = 0;
    cachedPassCounts(S, Invocations, Hits);
    EXPECT_GT(Invocations, 0u) << Id;
    EXPECT_EQ(Hits, Invocations) << Id;
    auto C = Warm.Disk.counters();
    EXPECT_EQ(C.Hits, ColdWrites) << Id;
    EXPECT_EQ(C.Misses, 0u) << Id;
    EXPECT_EQ(C.Writes, 0u) << Id;
    EXPECT_EQ(C.Corrupt, 0u) << Id;
  }
}

TEST(ArtifactStoreTest, TwoProcessesOverOneDirectoryAgree) {
  // Two live "processes" pointed at one directory: whichever writes
  // first, the other reads, and both summaries match the single-process
  // result.
  TempDir Dir;
  Process A(Dir.str()), B(Dir.str());
  std::string FromA = compileSummary(A.Tiered, kernelSource("loop7"));
  std::string FromB = compileSummary(B.Tiered, kernelSource("loop7"));
  EXPECT_EQ(FromA, FromB);
  EXPECT_EQ(B.Disk.counters().Writes, 0u); // A's objects answered B.
  EXPECT_GT(B.Disk.counters().Hits, 0u);
}

//===----------------------------------------------------------------------===//
// Corruption tolerance.
//===----------------------------------------------------------------------===//

TEST(ArtifactStoreTest, CorruptObjectDegradesToRecomputeAndHeals) {
  TempDir Dir;
  std::string ColdSummary;
  {
    Process Cold(Dir.str());
    ColdSummary = compileSummary(Cold.Tiered, kernelSource("loop7"));
    ASSERT_GT(Cold.Disk.entries(), 0u);
  }

  // Garble the first object: keep the length (so this is payload
  // corruption, not a torn write) but flip the bytes.
  fs::path Victim;
  for (auto &E : fs::recursive_directory_iterator(Dir.Path / "objects"))
    if (E.is_regular_file()) {
      Victim = E.path();
      break;
    }
  ASSERT_FALSE(Victim.empty());
  {
    std::fstream F(Victim,
                   std::ios::in | std::ios::out | std::ios::binary);
    ASSERT_TRUE(F.good());
    F.seekp(0);
    for (int I = 0; I < 64; ++I)
      F.put(static_cast<char>(0xAA));
  }

  Process Warm(Dir.str());
  std::string WarmSummary = compileSummary(Warm.Tiered, kernelSource("loop7"));
  EXPECT_EQ(WarmSummary, ColdSummary);
  auto C = Warm.Disk.counters();
  EXPECT_GE(C.Corrupt, 1u);  // Rejected and unlinked...
  EXPECT_GE(C.Writes, 1u);   // ...then healed from the recompute.
  EXPECT_FALSE(fs::exists(Victim) &&
               fs::file_size(Victim) == 0); // Never left half-dead.

  // The healed store is fully warm again.
  Process Again(Dir.str());
  compileSummary(Again.Tiered, kernelSource("loop7"));
  EXPECT_EQ(Again.Disk.counters().Misses, 0u);
  EXPECT_EQ(Again.Disk.counters().Corrupt, 0u);
}

TEST(ArtifactStoreTest, TruncatedObjectIsRejected) {
  TempDir Dir;
  {
    Process Cold(Dir.str());
    compileSummary(Cold.Tiered, kernelSource("loop1"));
  }
  fs::path Victim;
  for (auto &E : fs::recursive_directory_iterator(Dir.Path / "objects"))
    if (E.is_regular_file()) {
      Victim = E.path();
      break;
    }
  ASSERT_FALSE(Victim.empty());
  fs::resize_file(Victim, fs::file_size(Victim) / 2);

  Process Warm(Dir.str());
  std::string Summary = compileSummary(Warm.Tiered, kernelSource("loop1"));
  EXPECT_NE(Summary, "<failed>");
  EXPECT_GE(Warm.Disk.counters().Corrupt, 1u);
}

//===----------------------------------------------------------------------===//
// Fault injection (docs/ROBUSTNESS.md).
//===----------------------------------------------------------------------===//

TEST(ArtifactStoreTest, WriteFaultSkipsObjectAndNeverPoisonsIndex) {
  TempDir Dir;
  Expected<FaultSchedule> Sched = FaultSchedule::parse("store:write:fail@1");
  ASSERT_TRUE(Sched) << Sched.status().str();
  FaultContext FC(&*Sched, "test");

  uint64_t SurvivingWrites = 0;
  std::string ColdSummary;
  {
    Process Cold(Dir.str());
    ColdSummary = compileSummary(Cold.Tiered, kernelSource("loop7"), &FC);
    ASSERT_NE(ColdSummary, "<failed>"); // The job absorbed the fault.
    auto C = Cold.Disk.counters();
    SurvivingWrites = C.Writes;
    EXPECT_GT(SurvivingWrites, 0u);
    // The skipped object left no trace: index, directory and counters
    // all agree on exactly the objects that completed their rename.
    EXPECT_EQ(Cold.Disk.entries(), SurvivingWrites);
    EXPECT_EQ(indexLineCount(Dir.Path), SurvivingWrites);
    EXPECT_EQ(objectFileCount(Dir.Path), SurvivingWrites);
  }

  // A cold process over the partial store: the surviving objects hit,
  // the skipped one recomputes (a miss) and is persisted this time.
  Process Warm(Dir.str());
  std::string WarmSummary = compileSummary(Warm.Tiered, kernelSource("loop7"));
  EXPECT_EQ(WarmSummary, ColdSummary);
  auto C = Warm.Disk.counters();
  EXPECT_EQ(C.Hits, SurvivingWrites);
  EXPECT_EQ(C.Misses, 1u);
  EXPECT_EQ(C.Writes, 1u);
  EXPECT_EQ(Warm.Disk.entries(), SurvivingWrites + 1);
}

TEST(ArtifactStoreTest, ReadFaultDegradesToRecompute) {
  TempDir Dir;
  std::string ColdSummary;
  uint64_t Entries = 0;
  {
    Process Cold(Dir.str());
    ColdSummary = compileSummary(Cold.Tiered, kernelSource("loop1"));
    Entries = Cold.Disk.entries();
    ASSERT_GT(Entries, 0u);
  }

  Expected<FaultSchedule> Sched = FaultSchedule::parse("store:read:fail@1");
  ASSERT_TRUE(Sched) << Sched.status().str();
  FaultContext FC(&*Sched, "test");
  Process Warm(Dir.str());
  std::string WarmSummary =
      compileSummary(Warm.Tiered, kernelSource("loop1"), &FC);
  EXPECT_EQ(WarmSummary, ColdSummary);
  auto C = Warm.Disk.counters();
  EXPECT_EQ(C.Misses, 1u); // The faulted read, recomputed.
  EXPECT_EQ(C.Hits, Entries - 1);
  EXPECT_EQ(C.Corrupt, 0u); // A read fault is not a corrupt object.
}

//===----------------------------------------------------------------------===//
// Eviction and index recovery.
//===----------------------------------------------------------------------===//

TEST(ArtifactStoreTest, ByteBudgetEvictsLeastRecentlyUsed) {
  TempDir Dir;
  uint64_t Unbounded = 0;
  {
    Process Cold(Dir.str());
    compileSummary(Cold.Tiered, kernelSource("loop7"));
    Unbounded = Cold.Disk.bytes();
    ASSERT_GT(Unbounded, 0u);
  }

  TempDir Small;
  Process Tight(Small.str(), /*MaxBytes=*/Unbounded / 2);
  std::string Summary = compileSummary(Tight.Tiered, kernelSource("loop7"));
  EXPECT_NE(Summary, "<failed>"); // Eviction never fails the compile.
  auto C = Tight.Disk.counters();
  EXPECT_GT(C.Evictions, 0u);
  EXPECT_GE(Tight.Disk.entries(), 1u); // The newest entry always survives.
  EXPECT_EQ(objectFileCount(Small.Path), Tight.Disk.entries());
  EXPECT_EQ(indexLineCount(Small.Path), Tight.Disk.entries());

  // A reopened store sees exactly the survivors.
  DiskStore Reopened(DiskStore::Config{Small.str(), 0});
  EXPECT_EQ(Reopened.entries(), Tight.Disk.entries());
  EXPECT_EQ(Reopened.bytes(), Tight.Disk.bytes());
}

TEST(ArtifactStoreTest, MissingIndexIsRebuiltByScanningObjects) {
  TempDir Dir;
  uint64_t Entries = 0, Bytes = 0;
  std::string ColdSummary;
  {
    Process Cold(Dir.str());
    ColdSummary = compileSummary(Cold.Tiered, kernelSource("loop12"));
    Entries = Cold.Disk.entries();
    Bytes = Cold.Disk.bytes();
  }
  fs::remove(Dir.Path / "index");

  Process Warm(Dir.str());
  EXPECT_EQ(Warm.Disk.entries(), Entries);
  EXPECT_EQ(Warm.Disk.bytes(), Bytes);
  std::string WarmSummary = compileSummary(Warm.Tiered, kernelSource("loop12"));
  EXPECT_EQ(WarmSummary, ColdSummary);
  EXPECT_EQ(Warm.Disk.counters().Misses, 0u);
}

TEST(ArtifactStoreTest, GarbageIndexFallsBackToScan) {
  TempDir Dir;
  uint64_t Entries = 0;
  {
    Process Cold(Dir.str());
    compileSummary(Cold.Tiered, kernelSource("loop1"));
    Entries = Cold.Disk.entries();
  }
  {
    std::ofstream Out(Dir.Path / "index", std::ios::trunc);
    Out << "this is not an index\nnor this line either\n";
  }
  Process Warm(Dir.str());
  EXPECT_EQ(Warm.Disk.entries(), Entries);
  Process Again(Dir.str());
  compileSummary(Again.Tiered, kernelSource("loop1"));
  EXPECT_EQ(Again.Disk.counters().Misses, 0u);
}

//===----------------------------------------------------------------------===//
// Interface conformance: MemoryStore and TieredStore are
// interchangeable behind ArtifactStore.
//===----------------------------------------------------------------------===//

TEST(ArtifactStoreTest, MemoryAndTieredStoresProduceIdenticalOutput) {
  TempDir Dir;
  MemoryStore Plain;
  std::string FromMemory = compileSummary(Plain, kernelSource("loop5"));

  Process Tiered(Dir.str());
  std::string FromTiered = compileSummary(Tiered.Tiered, kernelSource("loop5"));
  EXPECT_EQ(FromMemory, FromTiered);

  SessionConfig Off;
  Off.EnableCache = false;
  CompilationSession Uncached(Off);
  PipelineOptions PO;
  PO.Verify = true;
  auto R = Uncached.compile(kernelSource("loop5"), PO);
  ASSERT_TRUE(R) << R.status().str();
  EXPECT_EQ(summarize(*R), FromMemory);
}

} // namespace
