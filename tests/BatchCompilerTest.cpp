//===- tests/BatchCompilerTest.cpp - Batch compilation tests ----------------===//
//
// Part of the SDSP project: a reproduction of Gao, Wong & Ning,
// "A Timed Petri-Net Model for Fine-Grain Loop Scheduling", PLDI 1991.
//
//===----------------------------------------------------------------------===//
//
// The BatchCompiler determinism and failure-isolation contract
// (core/BatchCompiler.h): rendered output is byte-identical for any
// thread count, a failing job never aborts its siblings or poisons the
// shared cache, and sharing the cache deduplicates identical work.
// The batch-determinism CI job re-pins the same properties end-to-end
// through the sdspc binary; run under ThreadSanitizer in CI.
//
//===----------------------------------------------------------------------===//

#include "core/BatchCompiler.h"

#include "livermore/Livermore.h"
#include "support/FaultInjection.h"

#include "gtest/gtest.h"

#include <chrono>

using namespace sdsp;

namespace {

const char *Biquad = R"(do i {
  init y = 0, 0;
  y = b0 * x[i] + b1 * x[i-1] + b2 * x[i-2]
      - a1 * y[i-1] - a2 * y[i-2];
  out y;
})";

const char *Doall = R"(doall i {
  a = x[i] * 2;
  b = a + y[i];
  out b;
})";

// Semantically invalid: loop-carried `y` without an init window.
const char *Bad = "do i { y = y[i-1] + x[i]; out y; }";

std::vector<BatchJob> kernelJobs() {
  std::vector<BatchJob> Jobs;
  for (const LivermoreKernel &K : livermoreKernels())
    Jobs.push_back({std::string("kernel:") + K.Id, K.Source});
  return Jobs;
}

BatchOutcome runWith(unsigned Threads, const std::vector<BatchJob> &Jobs,
                     bool ShareCache = true, uint64_t MaxCacheBytes = 0) {
  BatchOptions BO;
  BO.Threads = Threads;
  BO.ShareCache = ShareCache;
  BO.EnableCache = true;
  BO.MaxCacheBytes = MaxCacheBytes;
  PipelineOptions PO;
  PO.Verify = true;
  BatchCompiler BC(BO);
  return BC.run(Jobs, BatchCompiler::compileOnly(PO));
}

void expectSameObservables(const BatchOutcome &A, const BatchOutcome &B) {
  ASSERT_EQ(A.Results.size(), B.Results.size());
  for (size_t I = 0; I < A.Results.size(); ++I) {
    EXPECT_EQ(A.Results[I].Name, B.Results[I].Name) << I;
    EXPECT_EQ(A.Results[I].ExitCode, B.Results[I].ExitCode) << I;
    EXPECT_EQ(A.Results[I].Out, B.Results[I].Out) << A.Results[I].Name;
    EXPECT_EQ(A.Results[I].Err, B.Results[I].Err) << A.Results[I].Name;
  }
  EXPECT_EQ(A.ExitCode, B.ExitCode);
  // Invocation and failure counts are thread-count independent; wall
  // times and cache-hit counts (who wins a compute race) are not.
  ASSERT_EQ(A.MergedTrace.Passes.size(), B.MergedTrace.Passes.size());
  for (size_t P = 0; P < A.MergedTrace.Passes.size(); ++P) {
    EXPECT_EQ(A.MergedTrace.Passes[P].Stats.Invocations,
              B.MergedTrace.Passes[P].Stats.Invocations)
        << A.MergedTrace.Passes[P].Pass;
    EXPECT_EQ(A.MergedTrace.Passes[P].Stats.Failures,
              B.MergedTrace.Passes[P].Stats.Failures)
        << A.MergedTrace.Passes[P].Pass;
  }
}

TEST(BatchCompilerTest, ResultsComeBackInInputOrder) {
  std::vector<BatchJob> Jobs = kernelJobs();
  BatchOutcome O = runWith(4, Jobs);
  ASSERT_EQ(O.Results.size(), Jobs.size());
  for (size_t I = 0; I < Jobs.size(); ++I) {
    EXPECT_EQ(O.Results[I].Name, Jobs[I].Name);
    EXPECT_EQ(O.Results[I].ExitCode, 0) << O.Results[I].Err;
    EXPECT_TRUE(O.Results[I].TaskStatus);
    EXPECT_NE(O.Results[I].Out.find("ok"), std::string::npos);
  }
  EXPECT_EQ(O.ExitCode, 0);
}

TEST(BatchCompilerTest, OutputIsIdenticalAcrossThreadCounts) {
  std::vector<BatchJob> Jobs = kernelJobs();
  Jobs.push_back({"biquad", Biquad});
  Jobs.push_back({"doall", Doall});
  BatchOutcome Serial = runWith(1, Jobs);
  BatchOutcome Par4 = runWith(4, Jobs);
  BatchOutcome Par8 = runWith(8, Jobs);
  expectSameObservables(Serial, Par4);
  expectSameObservables(Serial, Par8);
}

TEST(BatchCompilerTest, SharedCacheDoesNotChangeOutput) {
  std::vector<BatchJob> Jobs = kernelJobs();
  BatchOutcome Shared = runWith(4, Jobs, /*ShareCache=*/true);
  BatchOutcome Private = runWith(4, Jobs, /*ShareCache=*/false);
  ASSERT_EQ(Shared.Results.size(), Private.Results.size());
  for (size_t I = 0; I < Shared.Results.size(); ++I) {
    EXPECT_EQ(Shared.Results[I].Out, Private.Results[I].Out);
    EXPECT_EQ(Shared.Results[I].Err, Private.Results[I].Err);
    EXPECT_EQ(Shared.Results[I].ExitCode, Private.Results[I].ExitCode);
  }
  EXPECT_EQ(Private.Cache.Inserts, 0u); // Nothing touched the shared table.
}

TEST(BatchCompilerTest, SharedCacheDeduplicatesIdenticalJobs) {
  // Eight copies of one source: the whole fleet computes each pass once.
  std::vector<BatchJob> Jobs;
  for (int I = 0; I < 8; ++I)
    Jobs.push_back({"copy" + std::to_string(I), Biquad});
  BatchOutcome O = runWith(4, Jobs);
  EXPECT_EQ(O.ExitCode, 0);
  for (const BatchResult &R : O.Results)
    EXPECT_EQ(R.Out, O.Results[0].Out);
  // One insert per distinct key; hits cover all the duplicate work.
  EXPECT_EQ(O.Cache.Inserts, O.Cache.Entries);
  EXPECT_GT(O.Cache.Hits, 0u);
}

TEST(BatchCompilerTest, FailingJobDoesNotAbortSiblings) {
  std::vector<BatchJob> Jobs{{"good", Biquad}, {"bad", Bad}, {"good2", Doall}};
  BatchOutcome O = runWith(4, Jobs);
  ASSERT_EQ(O.Results.size(), 3u);

  EXPECT_EQ(O.Results[0].ExitCode, 0) << O.Results[0].Err;
  EXPECT_EQ(O.Results[2].ExitCode, 0) << O.Results[2].Err;

  EXPECT_EQ(O.Results[1].ExitCode, 1); // Input diagnostics.
  EXPECT_TRUE(O.Results[1].TaskStatus); // The task itself ran fine.
  EXPECT_NE(O.Results[1].Err.find("error:"), std::string::npos);
  EXPECT_TRUE(O.Results[1].Out.empty());

  EXPECT_EQ(O.ExitCode, 1); // max over per-job codes.
}

TEST(BatchCompilerTest, FailuresNeverPoisonTheSharedCacheAcrossRuns) {
  BatchOptions BO;
  BO.Threads = 4;
  BO.EnableCache = true;
  PipelineOptions PO;
  PO.Verify = true;
  BatchCompiler BC(BO);

  std::vector<BatchJob> Jobs{{"bad", Bad}, {"good", Biquad}};
  BatchOutcome First = BC.run(Jobs, BatchCompiler::compileOnly(PO));
  EXPECT_EQ(First.Results[0].ExitCode, 1);
  EXPECT_EQ(First.Results[1].ExitCode, 0) << First.Results[1].Err;

  // Second run on the warm cache: the failure recomputes (it was never
  // published) and still fails identically; the good job replays from
  // cache with identical output.
  BatchOutcome Second = BC.run(Jobs, BatchCompiler::compileOnly(PO));
  EXPECT_EQ(Second.Results[0].ExitCode, 1);
  EXPECT_EQ(Second.Results[0].Err, First.Results[0].Err);
  EXPECT_EQ(Second.Results[1].ExitCode, 0);
  EXPECT_EQ(Second.Results[1].Out, First.Results[1].Out);
  EXPECT_EQ(Second.Cache.Entries, First.Cache.Entries);
  EXPECT_GT(Second.Cache.Hits, First.Cache.Hits);
}

TEST(BatchCompilerTest, TinyCacheBudgetStaysCorrect) {
  // A 1 KiB budget forces constant eviction; outputs must not change.
  std::vector<BatchJob> Jobs = kernelJobs();
  BatchOutcome Unbounded = runWith(4, Jobs);
  BatchOutcome Tiny = runWith(4, Jobs, /*ShareCache=*/true,
                              /*MaxCacheBytes=*/1024);
  for (size_t I = 0; I < Jobs.size(); ++I) {
    EXPECT_EQ(Tiny.Results[I].Out, Unbounded.Results[I].Out);
    EXPECT_EQ(Tiny.Results[I].ExitCode, 0) << Tiny.Results[I].Err;
  }
}

TEST(BatchCompilerTest, ZeroThreadsClampsAndEmptyBatchSucceeds) {
  BatchOutcome Empty = runWith(0, {});
  EXPECT_TRUE(Empty.Results.empty());
  EXPECT_EQ(Empty.ExitCode, 0);
  EXPECT_EQ(Empty.MergedTrace.Passes.size(), NumPassKinds);
}

//===----------------------------------------------------------------------===//
// Cancellation and retry (docs/ROBUSTNESS.md).  The chaos suite
// (ChaosTest.cpp) fuzzes these paths; here the deterministic anchors.
//===----------------------------------------------------------------------===//

TEST(BatchCompilerTest, PreCancelledBatchTokenCancelsEveryJob) {
  std::vector<BatchJob> Jobs = kernelJobs();
  BatchOptions BO;
  BO.Threads = 4;
  CancelSource Src;
  Src.cancel();
  BO.Cancel = Src.token();
  BatchCompiler BC(BO);
  BatchOutcome O = BC.run(Jobs, BatchCompiler::compileOnly(PipelineOptions{}));
  EXPECT_EQ(O.ExitCode, 2);
  EXPECT_EQ(O.CancelledJobs, Jobs.size());
  for (const BatchResult &R : O.Results) {
    EXPECT_EQ(R.ExitCode, 2) << R.Name;
    EXPECT_EQ(R.Error, ErrorCode::Cancelled) << R.Name;
    EXPECT_EQ(R.Attempts, 0u) << R.Name; // Never dispatched.
  }
}

TEST(BatchCompilerTest, ExpiredBatchDeadlineReportsDeadlineExceeded) {
  // Job tokens chain under the batch token, so the batch-wide deadline
  // reason — not a generic Cancelled — reaches every result.
  std::vector<BatchJob> Jobs = kernelJobs();
  BatchOptions BO;
  BO.Threads = 2;
  BO.Cancel =
      CancelSource::withDeadline(std::chrono::milliseconds(0)).token();
  BatchCompiler BC(BO);
  BatchOutcome O = BC.run(Jobs, BatchCompiler::compileOnly(PipelineOptions{}));
  EXPECT_EQ(O.ExitCode, 2);
  EXPECT_EQ(O.CancelledJobs, Jobs.size());
  for (const BatchResult &R : O.Results)
    EXPECT_EQ(R.Error, ErrorCode::DeadlineExceeded) << R.Name;
}

TEST(BatchCompilerTest, RetriedJobMatchesTheFaultFreeOutput) {
  std::vector<BatchJob> Jobs = kernelJobs();
  BatchOptions BO;
  BO.Threads = 4;
  BO.RetryBackoffBaseMillis = 0;
  BO.RetryBackoffCapMillis = 0;
  BatchCompiler Plain(BO);
  BatchOutcome Want =
      Plain.run(Jobs, BatchCompiler::compileOnly(PipelineOptions{}));
  ASSERT_EQ(Want.ExitCode, 0);

  Expected<FaultSchedule> Sched =
      FaultSchedule::parse("pass:rate:fail@1~kernel:l2");
  ASSERT_TRUE(Sched);
  BO.Faults = &*Sched;
  BO.MaxRetries = 1;
  BatchCompiler BC(BO);
  BatchOutcome O = BC.run(Jobs, BatchCompiler::compileOnly(PipelineOptions{}));
  EXPECT_EQ(O.ExitCode, 0);
  EXPECT_EQ(O.Retries, 1u);
  ASSERT_EQ(O.Results.size(), Want.Results.size());
  for (size_t I = 0; I < O.Results.size(); ++I) {
    const BatchResult &R = O.Results[I];
    EXPECT_EQ(R.Out, Want.Results[I].Out) << R.Name;
    EXPECT_EQ(R.Attempts, R.Name == "kernel:l2" ? 2u : 1u) << R.Name;
  }
}

} // namespace
