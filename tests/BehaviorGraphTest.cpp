//===- tests/BehaviorGraphTest.cpp - Trace recording tests -----------------===//
//
// Part of the SDSP project: a reproduction of Gao, Wong & Ning,
// "A Timed Petri-Net Model for Fine-Grain Loop Scheduling", PLDI 1991.
//
//===----------------------------------------------------------------------===//

#include "petri/BehaviorGraph.h"

#include "TestUtil.h"
#include "gtest/gtest.h"

#include <sstream>

using namespace sdsp;
using namespace sdsp::testutil;

namespace {

TEST(BehaviorGraph, InitialTokensRecorded) {
  PetriNet Ring = buildRing(3, 2);
  BehaviorGraph BG(Ring);
  EXPECT_EQ(BG.tokens().size(), 2u);
  EXPECT_TRUE(BG.firings().empty());
  for (const BehaviorGraph::TokenNode &T : BG.tokens()) {
    EXPECT_EQ(T.Producer, BehaviorGraph::NoFiring);
    EXPECT_EQ(T.ProducedAt, 0u);
  }
}

TEST(BehaviorGraph, TokenFlowLinksProducersToConsumers) {
  PetriNet Ring = buildRing(2, 1);
  EarliestFiringEngine Engine(Ring);
  BehaviorGraph BG(Ring);
  for (int Step = 0; Step < 4; ++Step)
    BG.recordStep(Engine.fireAndAdvance());

  // The single token circulates: firings alternate t1, t0, t1, ...
  ASSERT_GE(BG.firings().size(), 3u);
  EXPECT_EQ(BG.firings()[0].T, TransitionId(1u));
  EXPECT_EQ(BG.firings()[1].T, TransitionId(0u));
  EXPECT_EQ(BG.firings()[2].T, TransitionId(1u));

  // Occurrence numbering increments per transition.
  EXPECT_EQ(BG.firings()[0].Occurrence, 0u);
  EXPECT_EQ(BG.firings()[2].Occurrence, 1u);

  // Every consumed token has its consumer recorded.
  for (const BehaviorGraph::FiringNode &F : BG.firings())
    for (uint32_t TokenId : F.Consumed)
      EXPECT_NE(BG.tokens()[TokenId].Consumer, BehaviorGraph::NoFiring);
}

TEST(BehaviorGraph, ConservationOfTokens) {
  Rng R(5);
  PetriNet Net = buildRandomMarkedGraph(R, 6, 3);
  EarliestFiringEngine Engine(Net);
  BehaviorGraph BG(Net);
  for (int Step = 0; Step < 20; ++Step)
    BG.recordStep(Engine.fireAndAdvance());

  // Tokens produced = initial + per-firing productions of completed
  // firings; consumed tokens = per-firing consumptions.
  size_t Consumed = 0;
  for (const BehaviorGraph::FiringNode &F : BG.firings())
    Consumed += F.Consumed.size();
  size_t MarkedConsumed = 0;
  for (const BehaviorGraph::TokenNode &T : BG.tokens())
    if (T.Consumer != BehaviorGraph::NoFiring)
      ++MarkedConsumed;
  EXPECT_EQ(Consumed, MarkedConsumed);

  // Live (unconsumed) tokens in the recorder equal the engine's current
  // marking exactly: both views lack the productions of in-flight
  // firings (don't prepare() here, that would apply completions the
  // recorder hasn't seen).
  size_t Live = BG.tokens().size() - MarkedConsumed;
  EXPECT_EQ(Live, Engine.marking().totalTokens());
}

TEST(BehaviorGraph, DotHighlightsFrustumWindow) {
  PetriNet Ring = buildRing(2, 1);
  EarliestFiringEngine Engine(Ring);
  BehaviorGraph BG(Ring);
  for (int Step = 0; Step < 4; ++Step)
    BG.recordStep(Engine.fireAndAdvance());
  std::ostringstream OS;
  BG.printDot(OS, "trace", 1, 3);
  std::string S = OS.str();
  EXPECT_NE(S.find("lightgrey"), std::string::npos);
  EXPECT_NE(S.find("t1#0@0"), std::string::npos);
}

} // namespace
