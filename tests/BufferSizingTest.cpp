//===- tests/BufferSizingTest.cpp - Buffer sizing tests --------------------===//
//
// Part of the SDSP project: a reproduction of Gao, Wong & Ning,
// "A Timed Petri-Net Model for Fine-Grain Loop Scheduling", PLDI 1991.
//
//===----------------------------------------------------------------------===//

#include "core/BufferSizing.h"

#include "TestUtil.h"
#include "core/Frustum.h"
#include "core/RateAnalysis.h"
#include "core/SdspPn.h"
#include "gtest/gtest.h"

using namespace sdsp;
using namespace sdsp::testutil;

namespace {

TEST(BufferSizing, DataOnlyBoundL1AndL2) {
  EXPECT_EQ(dataOnlyCycleTime(buildL1()), Rational(1))
      << "DOALL: only the unit self-loops remain";
  EXPECT_EQ(dataOnlyCycleTime(buildL2Direct()), Rational(3))
      << "the C-D-E recurrence is immune to buffering";
}

TEST(BufferSizing, L1ReachesRateOneWithCapacityTwo) {
  BufferSizingResult R = sizeBuffers(buildL1());
  EXPECT_TRUE(R.Feasible);
  EXPECT_EQ(R.AchievedCycleTime, Rational(1));
  EXPECT_EQ(R.Storage, 10u) << "every pair cycle needs two slots";
  SdspPn Pn = buildSdspPn(R.Sized);
  auto F = detectFrustum(Pn.Net);
  ASSERT_TRUE(F.has_value());
  for (TransitionId T : Pn.Net.transitionIds())
    EXPECT_EQ(F->computationRate(T), Rational(1));
}

TEST(BufferSizing, NonUniformCapacitiesWithMixedTimes) {
  // a(3) -> b(1) -> c(1): only the a-b buffer needs two slots to hit
  // the self-loop bound of 3; uniform capacity-2 would waste a slot.
  DataflowGraph G;
  NodeId In = G.addNode(OpKind::Input, "x");
  NodeId A = G.addNode(OpKind::Identity, "a");
  G.setExecTime(A, 3);
  NodeId B = G.addNode(OpKind::Identity, "b");
  NodeId C = G.addNode(OpKind::Identity, "c");
  G.connect(In, 0, A, 0);
  G.connect(A, 0, B, 0);
  G.connect(B, 0, C, 0);
  NodeId Out = G.addNode(OpKind::Output, "y");
  G.connect(C, 0, Out, 0);

  EXPECT_EQ(dataOnlyCycleTime(G), Rational(3));
  BufferSizingResult R = sizeBuffers(G);
  EXPECT_TRUE(R.Feasible);
  EXPECT_EQ(R.AchievedCycleTime, Rational(3));
  EXPECT_EQ(R.Storage, 3u) << "2 slots for a->b, 1 for b->c";
}

TEST(BufferSizing, InfeasibleTargetReported) {
  BufferSizingResult R =
      sizeBuffers(buildL2Direct(), Rational(2));
  EXPECT_FALSE(R.Feasible) << "nothing beats the C-D-E bound of 3";
  EXPECT_GT(R.AchievedCycleTime, Rational(2));
}

TEST(BufferSizing, ExplicitRelaxedTargetUsesLessStorage) {
  // Asking only for cycle time 2 on L1 keeps the capacity-1 buffers.
  BufferSizingResult R = sizeBuffers(buildL1(), Rational(2));
  EXPECT_TRUE(R.Feasible);
  EXPECT_EQ(R.Storage, 5u);
}

TEST(BufferSizing, RandomGraphsAlwaysReachTheirBound) {
  Rng Rand(9090);
  for (int Trial = 0; Trial < 12; ++Trial) {
    DataflowGraph G = buildRandomLoopGraph(Rand, 3 + Trial % 6, 25);
    Rational Bound = dataOnlyCycleTime(G);
    BufferSizingResult R = sizeBuffers(G);
    EXPECT_TRUE(R.Feasible) << "trial " << Trial;
    EXPECT_EQ(R.AchievedCycleTime, Bound) << "trial " << Trial;
    // And the earliest-firing execution really runs at the bound.
    SdspPn Pn = buildSdspPn(R.Sized);
    auto F = detectFrustum(Pn.Net);
    ASSERT_TRUE(F.has_value()) << "trial " << Trial;
    for (TransitionId T : Pn.Net.transitionIds())
      EXPECT_EQ(F->computationRate(T), Bound.reciprocal())
          << "trial " << Trial;
  }
}

TEST(BufferSizing, SizedNeverExceedsUniformAmpleStorage) {
  Rng Rand(9091);
  for (int Trial = 0; Trial < 8; ++Trial) {
    DataflowGraph G = buildRandomLoopGraph(Rand, 4 + Trial % 4, 20);
    BufferSizingResult R = sizeBuffers(G);
    ASSERT_TRUE(R.Feasible);
    // A uniform capacity equal to the largest sized capacity would use
    // at least as much storage.
    uint64_t MaxCap = 1;
    for (const Sdsp::Ack &A : R.Sized.acks())
      MaxCap = std::max<uint64_t>(
          MaxCap, A.Slots + R.Sized.graph().arc(A.Path.front()).Distance);
    Sdsp Uniform = Sdsp::standard(G, static_cast<uint32_t>(MaxCap));
    EXPECT_LE(R.Storage, Uniform.storageLocations()) << "trial " << Trial;
  }
}

} // namespace
