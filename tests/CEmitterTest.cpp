//===- tests/CEmitterTest.cpp - C emission tests ---------------------------===//
//
// Part of the SDSP project: a reproduction of Gao, Wong & Ning,
// "A Timed Petri-Net Model for Fine-Grain Loop Scheduling", PLDI 1991.
//
//===----------------------------------------------------------------------===//
//
// Structural tests always run; the end-to-end tests compile the
// emitted C with the host compiler and execute it against the
// reference implementations (skipped if no C compiler is available).
//
//===----------------------------------------------------------------------===//

#include "codegen/CEmitter.h"

#include "TestUtil.h"
#include "codegen/Codegen.h"
#include "core/Frustum.h"
#include "core/ScheduleDerivation.h"
#include "core/StorageOptimizer.h"
#include "livermore/Livermore.h"
#include "loopir/Lowering.h"
#include "gtest/gtest.h"

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <iomanip>
#include <sstream>

using namespace sdsp;
using namespace sdsp::testutil;

namespace {

CEmission emitFor(const Sdsp &S, const std::string &Fn) {
  SdspPn Pn = buildSdspPn(S);
  auto F = detectFrustum(Pn.Net);
  EXPECT_TRUE(F.has_value());
  SoftwarePipelineSchedule Sched = deriveSchedule(Pn, *F);
  LoopProgram Program = generateLoopProgram(S, Pn, Sched);
  return emitC(Program, Fn);
}

TEST(CEmitter, StructureOfEmittedSource) {
  CEmission E = emitFor(Sdsp::standard(buildL2Direct()), "l2_kernel");
  EXPECT_NE(E.Source.find("void l2_kernel(size_t n"), std::string::npos);
  EXPECT_NE(E.Source.find("steady kernel"), std::string::npos);
  EXPECT_NE(E.Source.find("start-up transient"), std::string::npos);
  EXPECT_NE(E.Source.find("out_E[m]"), std::string::npos);
  EXPECT_EQ(E.Outputs, (std::vector<std::string>{"E"}));
  EXPECT_EQ(E.Inputs, (std::vector<std::string>{"W", "X", "Y"}));
}

TEST(CEmitter, SanitizesStreamNames) {
  DiagnosticEngine Diags;
  auto G = compileLoop("doall k { x = z[k+10] - z[k-1]; out x; }", Diags);
  ASSERT_TRUE(G.has_value());
  CEmission E = emitFor(Sdsp::standard(*G), "offsets");
  EXPECT_NE(E.Source.find("in_z_10"), std::string::npos);
  // The two z streams must map to distinct identifiers.
  size_t First = E.Source.find("const double *in_z");
  ASSERT_NE(First, std::string::npos);
  size_t Second = E.Source.find("const double *in_z", First + 1);
  EXPECT_NE(Second, std::string::npos);
}

//===----------------------------------------------------------------------===//
// Compile-and-run harness
//===----------------------------------------------------------------------===//

/// Returns the host C compiler, or empty if none works.
std::string hostCompiler() {
  for (const char *CC : {"cc", "gcc", "clang"}) {
    std::string Cmd = std::string("command -v ") + CC + " > /dev/null 2>&1";
    if (std::system(Cmd.c_str()) == 0)
      return CC;
  }
  return "";
}

/// Emits, compiles, and runs \p S for \p N iterations; returns the
/// outputs parsed from the generated driver's stdout.
StreamMap compileAndRun(const Sdsp &S, const StreamMap &Inputs, size_t N,
                        const std::string &Tag, bool &Skipped) {
  std::string CC = hostCompiler();
  if (CC.empty()) {
    Skipped = true;
    return {};
  }
  Skipped = false;

  CEmission E = emitFor(S, "kernel_fn");
  std::string Dir = ::testing::TempDir();
  std::string CPath = Dir + "/sdsp_" + Tag + ".c";
  std::string BinPath = Dir + "/sdsp_" + Tag + ".bin";
  std::string OutPath = Dir + "/sdsp_" + Tag + ".out";

  std::ofstream File(CPath);
  File << E.Source << "\n#include <stdio.h>\n";
  // Input arrays as static data (hex floats: exact round trip).
  for (size_t Idx = 0; Idx < E.Inputs.size(); ++Idx) {
    File << "static const double data_" << Idx << "[] = {";
    const std::vector<double> &V = Inputs.at(E.Inputs[Idx]);
    for (size_t I = 0; I < N; ++I)
      File << (I ? "," : "") << std::hexfloat << V[I]
           << std::defaultfloat;
    File << "};\n";
  }
  File << "int main(void) {\n  size_t n = " << N << ";\n";
  for (size_t I = 0; I < E.Outputs.size(); ++I)
    File << "  static double out" << I << "[" << N << "];\n";
  File << "  kernel_fn(n";
  for (size_t I = 0; I < E.Inputs.size(); ++I)
    File << ", data_" << I;
  for (size_t I = 0; I < E.Outputs.size(); ++I)
    File << ", out" << I;
  File << ");\n";
  for (size_t I = 0; I < E.Outputs.size(); ++I) {
    File << "  printf(\"" << E.Outputs[I] << "\");\n"
         << "  for (size_t j = 0; j < n; ++j) printf(\" %.17g\", out" << I
         << "[j]);\n  printf(\"\\n\");\n";
  }
  File << "  return 0;\n}\n";
  File.close();

  std::string Build = CC + " -O1 -o " + BinPath + " " + CPath + " -lm";
  EXPECT_EQ(std::system(Build.c_str()), 0) << "compiling " << CPath;
  EXPECT_EQ(std::system((BinPath + " > " + OutPath).c_str()), 0);

  StreamMap Result;
  std::ifstream OutFile(OutPath);
  std::string Line;
  while (std::getline(OutFile, Line)) {
    std::istringstream SS(Line);
    std::string Name;
    SS >> Name;
    double V;
    while (SS >> V)
      Result[Name].push_back(V);
  }
  return Result;
}

class CEmitterKernelTest
    : public ::testing::TestWithParam<LivermoreKernel> {};

TEST_P(CEmitterKernelTest, CompiledCodeMatchesReference) {
  const LivermoreKernel &K = GetParam();
  DiagnosticEngine Diags;
  auto G = compileLoop(K.Source, Diags);
  ASSERT_TRUE(G.has_value());
  Sdsp S = Sdsp::standard(*G);

  const size_t N = 40;
  StreamMap In = K.MakeInputs(N, 31415);
  bool Skipped = false;
  StreamMap Got = compileAndRun(S, In, N, K.Id, Skipped);
  if (Skipped)
    GTEST_SKIP() << "no host C compiler";
  StreamMap Want = K.Reference(In, N);
  for (const auto &[Name, Values] : Want) {
    ASSERT_EQ(Got.count(Name), 1u) << K.Name << " " << Name;
    ASSERT_EQ(Got.at(Name).size(), Values.size()) << K.Name;
    for (size_t I = 0; I < Values.size(); ++I)
      EXPECT_NEAR(Got.at(Name)[I], Values[I],
                  1e-12 * (1.0 + std::fabs(Values[I])))
          << K.Name << " " << Name << "[" << I << "]";
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllKernels, CEmitterKernelTest,
    ::testing::ValuesIn(livermoreKernels()),
    [](const ::testing::TestParamInfo<LivermoreKernel> &Info) {
      return Info.param.Id;
    });

TEST(CEmitter, OptimizedStorageCompilesAndRuns) {
  DiagnosticEngine Diags;
  auto G = compileLoop(findKernel("l2")->Source, Diags);
  ASSERT_TRUE(G.has_value());
  StorageOptResult R = minimizeStorage(Sdsp::standard(*G));
  ASSERT_LT(R.StorageAfter, R.StorageBefore);

  const size_t N = 40;
  StreamMap In = findKernel("l2")->MakeInputs(N, 151);
  bool Skipped = false;
  StreamMap Got = compileAndRun(R.Optimized, In, N, "l2opt", Skipped);
  if (Skipped)
    GTEST_SKIP() << "no host C compiler";
  StreamMap Want = findKernel("l2")->Reference(In, N);
  for (size_t I = 0; I < N; ++I)
    EXPECT_NEAR(Got.at("E")[I], Want.at("E")[I], 1e-12);
}

TEST(CEmitter, MixedExecutionTimesCompileAndRun) {
  // A biquad with 2-cycle multipliers: multi-cycle writes cross period
  // boundaries, exercising the in-flight temporaries of the emitted C.
  DiagnosticEngine Diags;
  auto G = compileLoop(R"(do i {
    init y = 0, 0;
    y = b0 * x[i] - a1 * y[i-1] - a2 * y[i-2];
    out y;
  })",
                       Diags);
  ASSERT_TRUE(G.has_value());
  for (NodeId N : G->nodeIds())
    if (G->node(N).Kind == OpKind::Mul)
      G->setExecTime(N, 2);
  Sdsp S = Sdsp::standard(*G);

  const size_t N = 32;
  StreamMap In;
  Rng R(404);
  for (const char *Name : {"x", "b0", "a1", "a2"}) {
    std::vector<double> V(N);
    for (double &X : V)
      X = R.uniform() - 0.5;
    In[Name] = V;
  }
  bool Skipped = false;
  StreamMap Got = compileAndRun(S, In, N, "biquad", Skipped);
  if (Skipped)
    GTEST_SKIP() << "no host C compiler";

  double Y1 = 0.0, Y2 = 0.0;
  for (size_t I = 0; I < N; ++I) {
    double Y = In["b0"][I] * In["x"][I] - In["a1"][I] * Y1 -
               In["a2"][I] * Y2;
    EXPECT_NEAR(Got.at("y")[I], Y, 1e-12) << I;
    Y2 = Y1;
    Y1 = Y;
  }
}

TEST(CEmitter, ShortTripCountsWork) {
  // n smaller than the prologue: every statement is guarded.
  DiagnosticEngine Diags;
  auto G = compileLoop(findKernel("loop7")->Source, Diags);
  ASSERT_TRUE(G.has_value());
  Sdsp S = Sdsp::standard(*G);
  const size_t N = 2;
  StreamMap In = findKernel("loop7")->MakeInputs(N, 99);
  bool Skipped = false;
  StreamMap Got = compileAndRun(S, In, N, "short", Skipped);
  if (Skipped)
    GTEST_SKIP() << "no host C compiler";
  StreamMap Want = findKernel("loop7")->Reference(In, N);
  ASSERT_EQ(Got.at("x").size(), N);
  for (size_t I = 0; I < N; ++I)
    EXPECT_NEAR(Got.at("x")[I], Want.at("x")[I], 1e-12);
}

} // namespace
