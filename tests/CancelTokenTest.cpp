//===- tests/CancelTokenTest.cpp - Cooperative cancellation tests -----------===//
//
// Part of the SDSP project: a reproduction of Gao, Wong & Ning,
// "A Timed Petri-Net Model for Fine-Grain Loop Scheduling", PLDI 1991.
//
//===----------------------------------------------------------------------===//
//
// The CancelToken/CancelSource contract (support/CancelToken.h): inert
// default tokens, manual cancellation vs deadline expiry as distinct
// reasons, parent chaining, and state lifetime past the source.  All
// deadline tests use pre-expired (0 ms) or far-future deadlines so
// nothing here races the wall clock.
//
//===----------------------------------------------------------------------===//

#include "support/CancelToken.h"

#include "gtest/gtest.h"

using namespace sdsp;
using namespace std::chrono_literals;

namespace {

TEST(CancelTokenTest, DefaultTokenNeverCancels) {
  CancelToken T;
  EXPECT_FALSE(T.valid());
  EXPECT_FALSE(T.cancelled());
  EXPECT_EQ(T.reason(), ErrorCode::Ok);
}

TEST(CancelTokenTest, ManualCancelReportsCancelled) {
  CancelSource Src;
  CancelToken T = Src.token();
  EXPECT_TRUE(T.valid());
  EXPECT_FALSE(T.cancelled());
  Src.cancel();
  EXPECT_TRUE(T.cancelled());
  EXPECT_EQ(T.reason(), ErrorCode::Cancelled);

  Status S = T.status("frustum", "mid-search");
  EXPECT_FALSE(S);
  EXPECT_EQ(S.code(), ErrorCode::Cancelled);
  EXPECT_EQ(S.stage(), "frustum");
  EXPECT_NE(S.str().find("cancelled mid-search"), std::string::npos);
}

TEST(CancelTokenTest, ExpiredDeadlineReportsDeadlineExceeded) {
  CancelSource Src = CancelSource::withDeadline(0ms);
  CancelToken T = Src.token();
  EXPECT_TRUE(T.cancelled());
  EXPECT_EQ(T.reason(), ErrorCode::DeadlineExceeded);

  Status S = T.status("session", "before pass 'lower'");
  EXPECT_EQ(S.code(), ErrorCode::DeadlineExceeded);
  EXPECT_NE(S.str().find("deadline exceeded before pass 'lower'"),
            std::string::npos);
}

TEST(CancelTokenTest, FutureDeadlineStaysLive) {
  CancelSource Src = CancelSource::withDeadline(1h);
  EXPECT_FALSE(Src.token().cancelled());
  // cancel() still wins over an unexpired deadline.
  Src.cancel();
  EXPECT_EQ(Src.token().reason(), ErrorCode::Cancelled);
}

TEST(CancelTokenTest, CancelIsIdempotentAndLatched) {
  CancelSource Src;
  Src.cancel();
  Src.cancel();
  EXPECT_EQ(Src.token().reason(), ErrorCode::Cancelled);
}

TEST(CancelTokenTest, CancellingParentCancelsChild) {
  CancelSource Parent;
  CancelSource Child(Parent.token());
  CancelToken T = Child.token();
  EXPECT_FALSE(T.cancelled());
  Parent.cancel();
  EXPECT_TRUE(T.cancelled());
  EXPECT_EQ(T.reason(), ErrorCode::Cancelled);
  // The parent's own token sees it too; an unrelated source does not.
  EXPECT_TRUE(Parent.token().cancelled());
  EXPECT_FALSE(CancelSource().token().cancelled());
}

TEST(CancelTokenTest, CancellingChildLeavesParentLive) {
  CancelSource Parent;
  CancelSource Child(Parent.token());
  Child.cancel();
  EXPECT_TRUE(Child.token().cancelled());
  EXPECT_FALSE(Parent.token().cancelled());
}

TEST(CancelTokenTest, ChildDeadlineChainsUnderManualParent) {
  // The per-attempt batch shape: a fresh deadline source under the
  // batch-wide token.  The child reports whichever fired.
  CancelSource Parent;
  CancelToken Expired =
      CancelSource::withDeadline(0ms, Parent.token()).token();
  EXPECT_EQ(Expired.reason(), ErrorCode::DeadlineExceeded);

  CancelToken Live =
      CancelSource::withDeadline(1h, Parent.token()).token();
  EXPECT_FALSE(Live.cancelled());
  Parent.cancel();
  EXPECT_EQ(Live.reason(), ErrorCode::Cancelled);
}

TEST(CancelTokenTest, TokenOutlivesItsSource) {
  CancelToken T;
  {
    CancelSource Src = CancelSource::withDeadline(0ms);
    T = Src.token();
  }
  // The shared state lives on through the token.
  EXPECT_EQ(T.reason(), ErrorCode::DeadlineExceeded);
}

} // namespace
