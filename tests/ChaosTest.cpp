//===- tests/ChaosTest.cpp - Fault-schedule fuzzing over the batch ----------===//
//
// Part of the SDSP project: a reproduction of Gao, Wong & Ning,
// "A Timed Petri-Net Model for Fine-Grain Loop Scheduling", PLDI 1991.
//
//===----------------------------------------------------------------------===//
//
// The graceful-degradation payoff (docs/ROBUSTNESS.md): seeded random
// fault schedules injected over the Livermore batch must leave
// surviving jobs byte-identical to a fault-free run, keep attempt
// counts bounded and deterministic across thread counts, and isolate
// permanent failures to their job.  Only thread-count-deterministic
// sites (pass:*, frustum:step, executor:dispatch) are fuzzed — cache:*
// firing depends on cross-job races by design.
//
// SDSP_CHAOS_ITERATIONS scales the fuzz loop (default 8; CI's chaos
// job raises it).  Run under ThreadSanitizer in CI.
//
//===----------------------------------------------------------------------===//

#include "core/BatchCompiler.h"

#include "livermore/Livermore.h"
#include "support/FaultInjection.h"

#include "gtest/gtest.h"

#include <cstdlib>
#include <random>

using namespace sdsp;

namespace {

std::vector<BatchJob> kernelJobs() {
  std::vector<BatchJob> Jobs;
  for (const LivermoreKernel &K : livermoreKernels())
    Jobs.push_back({std::string("kernel:") + K.Id, K.Source});
  return Jobs;
}

BatchOutcome runBatch(unsigned Threads, const std::vector<BatchJob> &Jobs,
                      const FaultSchedule *Faults, unsigned MaxRetries,
                      bool KeepGoing = true) {
  BatchOptions BO;
  BO.Threads = Threads;
  BO.EnableCache = true;
  BO.Faults = Faults;
  BO.MaxRetries = MaxRetries;
  BO.KeepGoing = KeepGoing;
  // Keep the fuzz loop fast: backoff sleeps of 0ms, jitter of 0.
  BO.RetryBackoffBaseMillis = 0;
  BO.RetryBackoffCapMillis = 0;
  PipelineOptions PO;
  PO.Verify = true;
  BatchCompiler BC(BO);
  return BC.run(Jobs, BatchCompiler::compileOnly(PO));
}

unsigned chaosIterations() {
  if (const char *Env = std::getenv("SDSP_CHAOS_ITERATIONS"))
    if (unsigned N = static_cast<unsigned>(std::atoi(Env)))
      return N;
  return 8;
}

/// Builds a random spec of transient faults over thread-count
/// deterministic sites, one trigger per selected job, with occurrences
/// small enough to actually arrive during a compile.
std::string randomTransientSpec(std::mt19937_64 &Rng,
                                const std::vector<BatchJob> &Jobs,
                                unsigned &MaxTriggersPerJob) {
  const char *Sites[] = {"pass:lower",    "pass:sdsp",  "pass:sdsp-pn",
                         "pass:rate",     "pass:frustum", "pass:schedule",
                         "pass:verify",   "frustum:step",
                         "executor:dispatch"};
  std::uniform_int_distribution<size_t> SiteDist(0, std::size(Sites) - 1);
  std::uniform_int_distribution<uint64_t> OccDist(1, 3);
  std::uniform_int_distribution<int> CoinDist(0, 2);
  std::vector<unsigned> PerJob(Jobs.size(), 0);
  std::string Spec;
  for (size_t J = 0; J < Jobs.size(); ++J) {
    if (CoinDist(Rng) == 0)
      continue; // ~1/3 of jobs stay fault-free.
    if (!Spec.empty())
      Spec += ',';
    Spec += std::string(Sites[SiteDist(Rng)]) + ":fail@" +
            std::to_string(OccDist(Rng)) + "~" + Jobs[J].Name;
    ++PerJob[J];
  }
  MaxTriggersPerJob = 0;
  for (unsigned N : PerJob)
    MaxTriggersPerJob = std::max(MaxTriggersPerJob, N);
  return Spec;
}

TEST(ChaosTest, TransientFaultsAlwaysRecoverByteIdentically) {
  std::vector<BatchJob> Jobs = kernelJobs();
  BatchOutcome Baseline = runBatch(1, Jobs, nullptr, 0);
  ASSERT_EQ(Baseline.ExitCode, 0);

  std::mt19937_64 Rng(0x5d5f1991);
  unsigned Iters = chaosIterations();
  for (unsigned It = 0; It < Iters; ++It) {
    unsigned MaxPerJob = 0;
    std::string Spec = randomTransientSpec(Rng, Jobs, MaxPerJob);
    if (Spec.empty())
      continue;
    SCOPED_TRACE("spec: " + Spec);
    Expected<FaultSchedule> Sched = FaultSchedule::parse(Spec);
    ASSERT_TRUE(Sched) << Sched.status().str();

    // Enough retries that every occurrence-counted transient is
    // outlived; each trigger fires exactly once per job.
    unsigned Retries = MaxPerJob + 1;
    BatchOutcome O = runBatch(1, Jobs, &*Sched, Retries);
    EXPECT_EQ(O.ExitCode, 0);
    ASSERT_EQ(O.Results.size(), Baseline.Results.size());
    for (size_t I = 0; I < O.Results.size(); ++I) {
      const BatchResult &R = O.Results[I];
      EXPECT_EQ(R.ExitCode, 0) << R.Name << ": " << R.Err;
      EXPECT_EQ(R.Out, Baseline.Results[I].Out) << R.Name;
      EXPECT_GE(R.Attempts, 1u);
      EXPECT_LE(R.Attempts, Retries + 1) << R.Name;
    }

    // Replay the same schedule at -j4: exit codes, outputs, and
    // attempt counts are thread-count invariant for these sites.
    BatchOutcome Par = runBatch(4, Jobs, &*Sched, Retries);
    ASSERT_EQ(Par.Results.size(), O.Results.size());
    for (size_t I = 0; I < O.Results.size(); ++I) {
      EXPECT_EQ(Par.Results[I].Out, O.Results[I].Out) << Jobs[I].Name;
      EXPECT_EQ(Par.Results[I].Err, O.Results[I].Err) << Jobs[I].Name;
      EXPECT_EQ(Par.Results[I].ExitCode, O.Results[I].ExitCode);
      EXPECT_EQ(Par.Results[I].Attempts, O.Results[I].Attempts)
          << Jobs[I].Name;
    }
    EXPECT_EQ(Par.Retries, O.Retries);
  }
}

TEST(ChaosTest, RetriesExhaustedReportsTransientFault) {
  std::vector<BatchJob> Jobs = kernelJobs();
  // Fires on the first three dispatches of l2: more lives than the two
  // retries granted, so the job must fail as TransientFault.
  Expected<FaultSchedule> Sched = FaultSchedule::parse(
      "executor:dispatch:fail@1~kernel:l2,"
      "executor:dispatch:fail@2~kernel:l2,"
      "executor:dispatch:fail@3~kernel:l2");
  ASSERT_TRUE(Sched);
  BatchOutcome O = runBatch(2, Jobs, &*Sched, /*MaxRetries=*/2);
  EXPECT_EQ(O.ExitCode, 2);
  for (const BatchResult &R : O.Results) {
    if (R.Name == "kernel:l2") {
      EXPECT_EQ(R.ExitCode, 2);
      EXPECT_EQ(R.Error, ErrorCode::TransientFault);
      EXPECT_EQ(R.Attempts, 3u);
    } else {
      EXPECT_EQ(R.ExitCode, 0) << R.Name << ": " << R.Err;
    }
  }
  EXPECT_EQ(O.Retries, 2u);
}

TEST(ChaosTest, PermanentFaultIsolatesToItsJob) {
  std::vector<BatchJob> Jobs = kernelJobs();
  Expected<FaultSchedule> Sched =
      FaultSchedule::parse("pass:frustum:fail-hard@1~kernel:loop7");
  ASSERT_TRUE(Sched);
  BatchOutcome Baseline = runBatch(4, Jobs, nullptr, 0);
  BatchOutcome O = runBatch(4, Jobs, &*Sched, /*MaxRetries=*/2);
  EXPECT_EQ(O.ExitCode, 3);
  ASSERT_EQ(O.Results.size(), Baseline.Results.size());
  for (size_t I = 0; I < O.Results.size(); ++I) {
    const BatchResult &R = O.Results[I];
    if (R.Name == "kernel:loop7") {
      EXPECT_EQ(R.ExitCode, 3);
      EXPECT_EQ(R.Error, ErrorCode::InternalInvariant);
      EXPECT_EQ(R.Attempts, 1u); // fail-hard is never retried.
    } else {
      EXPECT_EQ(R.ExitCode, 0) << R.Name << ": " << R.Err;
      EXPECT_EQ(R.Out, Baseline.Results[I].Out) << R.Name;
    }
  }
}

TEST(ChaosTest, FailFastCancelsTheRestOfTheBatch) {
  // One worker makes the reaping deterministic: job 0 fails hard, every
  // later job is cancelled before it starts.
  std::vector<BatchJob> Jobs = kernelJobs();
  std::string Spec = "pass:lower:fail-hard@1~" + Jobs[0].Name;
  Expected<FaultSchedule> Sched = FaultSchedule::parse(Spec);
  ASSERT_TRUE(Sched);
  BatchOutcome O = runBatch(1, Jobs, &*Sched, /*MaxRetries=*/0,
                            /*KeepGoing=*/false);
  ASSERT_GE(O.Results.size(), 2u);
  EXPECT_EQ(O.Results[0].ExitCode, 3);
  EXPECT_EQ(O.Results[0].Error, ErrorCode::InternalInvariant);
  for (size_t I = 1; I < O.Results.size(); ++I) {
    const BatchResult &R = O.Results[I];
    EXPECT_EQ(R.ExitCode, 2) << R.Name;
    EXPECT_EQ(R.Error, ErrorCode::Cancelled) << R.Name;
  }
  EXPECT_EQ(O.CancelledJobs, O.Results.size() - 1);
}

TEST(ChaosTest, DelayFaultsNeverChangeOutput) {
  std::vector<BatchJob> Jobs = kernelJobs();
  BatchOutcome Baseline = runBatch(4, Jobs, nullptr, 0);
  Expected<FaultSchedule> Sched = FaultSchedule::parse(
      "cache:lookup:delay=1ms@1,pass:frustum:delay=2ms@1~kernel:l1");
  ASSERT_TRUE(Sched);
  BatchOutcome O = runBatch(4, Jobs, &*Sched, /*MaxRetries=*/0);
  EXPECT_EQ(O.ExitCode, 0);
  for (size_t I = 0; I < O.Results.size(); ++I) {
    EXPECT_EQ(O.Results[I].Out, Baseline.Results[I].Out)
        << O.Results[I].Name;
    EXPECT_EQ(O.Results[I].Attempts, 1u);
  }
}

} // namespace
