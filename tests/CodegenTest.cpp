//===- tests/CodegenTest.cpp - Loop codegen and VM tests -------------------===//
//
// Part of the SDSP project: a reproduction of Gao, Wong & Ning,
// "A Timed Petri-Net Model for Fine-Grain Loop Scheduling", PLDI 1991.
//
//===----------------------------------------------------------------------===//

#include "codegen/Codegen.h"
#include "codegen/Vm.h"

#include "TestUtil.h"
#include "core/Frustum.h"
#include "core/ScheduleDerivation.h"
#include "core/StorageOptimizer.h"
#include "dataflow/Interpreter.h"
#include "livermore/Livermore.h"
#include "loopir/Lowering.h"
#include "gtest/gtest.h"

#include <cmath>
#include <sstream>

using namespace sdsp;
using namespace sdsp::testutil;

namespace {

/// Full pipeline: graph -> schedule -> program.
LoopProgram compileToProgram(const Sdsp &S) {
  SdspPn Pn = buildSdspPn(S);
  auto F = detectFrustum(Pn.Net);
  EXPECT_TRUE(F.has_value());
  SoftwarePipelineSchedule Sched = deriveSchedule(Pn, *F);
  return generateLoopProgram(S, Pn, Sched);
}

void expectMatchesInterpreter(const DataflowGraph &G, const Sdsp &S,
                              const StreamMap &Inputs, size_t N) {
  LoopProgram Program = compileToProgram(S);
  VmResult Got = executeLoopProgram(Program, Inputs, N);
  InterpResult Want = interpret(G, Inputs, N);
  ASSERT_EQ(Got.Outputs.size(), Want.Outputs.size());
  for (const auto &[Name, Values] : Want.Outputs) {
    ASSERT_EQ(Got.Outputs.count(Name), 1u) << Name;
    ASSERT_EQ(Got.Outputs.at(Name).size(), Values.size()) << Name;
    for (size_t I = 0; I < Values.size(); ++I) {
      EXPECT_EQ(Got.DummyMask.at(Name)[I], Want.DummyMask.at(Name)[I])
          << Name << "[" << I << "]";
      EXPECT_NEAR(Got.Outputs.at(Name)[I], Values[I], 1e-12)
          << Name << "[" << I << "]";
    }
  }
}

TEST(Codegen, RegisterCountEqualsStorageLocations) {
  for (bool UseL2 : {false, true}) {
    Sdsp S = Sdsp::standard(UseL2 ? buildL2Direct() : buildL1());
    LoopProgram P = compileToProgram(S);
    EXPECT_EQ(P.numRegisters(), S.storageLocations());
    EXPECT_EQ(P.ops().size(), S.loopBodySize());
  }
}

TEST(Codegen, L2VmMatchesInterpreter) {
  DataflowGraph G = buildL2Direct();
  Sdsp S = Sdsp::standard(G);
  StreamMap In;
  Rng R(17);
  for (const char *Name : {"X", "Y", "W"}) {
    std::vector<double> V(32);
    for (double &X : V)
      X = R.uniform();
    In[Name] = V;
  }
  expectMatchesInterpreter(G, S, In, 32);
}

TEST(Codegen, OptimizedStorageStillComputesCorrectly) {
  // The heart of Section 6: after chain-merging the acks, the shared
  // registers still never clobber a live value.
  DataflowGraph G = buildL2Direct();
  StorageOptResult R = minimizeStorage(Sdsp::standard(G));
  ASSERT_LT(R.StorageAfter, R.StorageBefore);
  LoopProgram P = compileToProgram(R.Optimized);
  EXPECT_EQ(P.numRegisters(), R.StorageAfter);

  StreamMap In;
  Rng Rand(18);
  for (const char *Name : {"X", "Y", "W"}) {
    std::vector<double> V(32);
    for (double &X : V)
      X = Rand.uniform();
    In[Name] = V;
  }
  expectMatchesInterpreter(G, R.Optimized, In, 32);
}

TEST(Codegen, EveryKernelExecutesCorrectly) {
  for (const LivermoreKernel &K : livermoreKernels()) {
    DiagnosticEngine Diags;
    auto G = compileLoop(K.Source, Diags);
    ASSERT_TRUE(G.has_value()) << K.Name;
    Sdsp S = Sdsp::standard(*G);
    const size_t N = 24;
    StreamMap In = K.MakeInputs(N, 777);

    LoopProgram Program = compileToProgram(S);
    VmResult Got = executeLoopProgram(Program, In, N);
    StreamMap Want = K.Reference(In, N);
    for (const auto &[Name, Values] : Want) {
      ASSERT_EQ(Got.Outputs.at(Name).size(), Values.size())
          << K.Name << " " << Name;
      for (size_t I = 0; I < Values.size(); ++I)
        EXPECT_NEAR(Got.Outputs.at(Name)[I], Values[I],
                    1e-9 * (1.0 + std::fabs(Values[I])))
            << K.Name << " " << Name << "[" << I << "]";
    }
  }
}

TEST(Codegen, OptimizedKernelsExecuteCorrectly) {
  for (const LivermoreKernel &K : livermoreKernels()) {
    DiagnosticEngine Diags;
    auto G = compileLoop(K.Source, Diags);
    ASSERT_TRUE(G.has_value()) << K.Name;
    StorageOptResult R = minimizeStorage(Sdsp::standard(*G));
    const size_t N = 24;
    StreamMap In = K.MakeInputs(N, 778);
    LoopProgram Program = compileToProgram(R.Optimized);
    EXPECT_EQ(Program.numRegisters(), R.StorageAfter) << K.Name;
    VmResult Got = executeLoopProgram(Program, In, N);
    StreamMap Want = K.Reference(In, N);
    for (const auto &[Name, Values] : Want)
      for (size_t I = 0; I < Values.size(); ++I)
        EXPECT_NEAR(Got.Outputs.at(Name)[I], Values[I],
                    1e-9 * (1.0 + std::fabs(Values[I])))
            << K.Name << " " << Name << "[" << I << "]";
  }
}

TEST(Codegen, ConditionalLoopWithDummies) {
  DiagnosticEngine Diags;
  auto G = compileLoop(
      "do i { A = if X[i] < 0 then 0 - X[i] else X[i]; out A; }", Diags);
  ASSERT_TRUE(G.has_value());
  Sdsp S = Sdsp::standard(*G);
  StreamMap In;
  In["X"] = {-2, 3, -4, 5, 0, -6};
  expectMatchesInterpreter(*G, S, In, 6);
}

TEST(Codegen, DeepFeedbackRings) {
  // y = x + y[i-3]: a 3-deep window ring.
  DataflowGraph G;
  NodeId In = G.addNode(OpKind::Input, "x");
  NodeId A = G.addNode(OpKind::Add, "y");
  G.connect(In, 0, A, 0);
  G.connectFeedback(A, 0, A, 1, {10.0, 20.0, 30.0});
  NodeId Out = G.addNode(OpKind::Output, "y");
  G.connect(A, 0, Out, 0);

  Sdsp S = Sdsp::standard(G);
  EXPECT_EQ(S.storageLocations(), 3u);
  StreamMap Inputs;
  Inputs["x"] = {1, 2, 3, 4, 5, 6, 7};
  expectMatchesInterpreter(G, S, Inputs, 7);
}

TEST(Codegen, FractionalRateKernelExecutesCorrectly) {
  // alpha* = 5/2: the kernel interleaves two iterations; the VM must
  // still produce the exact recurrence x_i = x_{i-2} + in_i.
  GraphBuilder B;
  NodeId A0 = B.graph().addNode(OpKind::Add, "a0");
  GraphBuilder::Value X = B.input("x");
  B.graph().connect(X.N, X.Port, A0, 0);
  GraphBuilder::Value V{A0, 0};
  for (int I = 1; I < 5; ++I)
    V = B.add(V, B.constant(0.0), "a" + std::to_string(I));
  B.graph().connectFeedback(V.N, V.Port, A0, 1, {100.0, 200.0});
  B.outputValue("y", V);
  DataflowGraph G = B.take();

  Sdsp S = Sdsp::standard(G);
  StreamMap In;
  In["x"] = {1, 2, 3, 4, 5, 6, 7, 8};
  expectMatchesInterpreter(G, S, In, 8);

  // Spot-check absolute values: y0 = 100+1, y2 = y0+3, ...
  LoopProgram P = compileToProgram(S);
  VmResult R = executeLoopProgram(P, In, 8);
  EXPECT_DOUBLE_EQ(R.Outputs.at("y")[0], 101.0);
  EXPECT_DOUBLE_EQ(R.Outputs.at("y")[1], 202.0);
  EXPECT_DOUBLE_EQ(R.Outputs.at("y")[2], 104.0);
  EXPECT_DOUBLE_EQ(R.Outputs.at("y")[3], 206.0);
}

TEST(Codegen, RandomGraphsExecuteCorrectly) {
  Rng R(909);
  for (int Trial = 0; Trial < 10; ++Trial) {
    DataflowGraph G = buildRandomLoopGraph(R, 3 + Trial % 6, 25);
    Sdsp S = Sdsp::standard(G);
    const size_t N = 20;
    StreamMap In;
    for (NodeId Node : G.nodeIds()) {
      if (G.node(Node).Kind != OpKind::Input)
        continue;
      std::vector<double> V(N);
      for (double &X : V)
        X = R.uniform();
      In[G.node(Node).Name] = V;
    }
    expectMatchesInterpreter(G, S, In, N);
  }
}

TEST(Codegen, MixedExecTimesOnRandomGraphs) {
  Rng R(911);
  for (int Trial = 0; Trial < 8; ++Trial) {
    DataflowGraph G =
        buildRandomLoopGraph(R, 3 + Trial % 5, 25, /*MaxExecTime=*/3);
    Sdsp S = Sdsp::standard(G);
    const size_t N = 16;
    StreamMap In;
    for (NodeId Node : G.nodeIds()) {
      if (G.node(Node).Kind != OpKind::Input)
        continue;
      std::vector<double> V(N);
      for (double &X : V)
        X = R.uniform();
      In[G.node(Node).Name] = V;
    }
    expectMatchesInterpreter(G, S, In, N);
  }
}

TEST(Codegen, ListingMentionsRegistersAndSlots) {
  Sdsp S = Sdsp::standard(buildL2Direct());
  LoopProgram P = compileToProgram(S);
  std::ostringstream OS;
  P.print(OS);
  std::string Out = OS.str();
  EXPECT_NE(Out.find("registers"), std::string::npos);
  EXPECT_NE(Out.find("r0"), std::string::npos);
  EXPECT_NE(Out.find("out(E)"), std::string::npos);
}

} // namespace
