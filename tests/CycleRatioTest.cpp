//===- tests/CycleRatioTest.cpp - Critical-cycle analysis tests ------------===//
//
// Part of the SDSP project: a reproduction of Gao, Wong & Ning,
// "A Timed Petri-Net Model for Fine-Grain Loop Scheduling", PLDI 1991.
//
//===----------------------------------------------------------------------===//

#include "petri/CycleRatio.h"

#include "TestUtil.h"
#include "gtest/gtest.h"

#include <set>

using namespace sdsp;
using namespace sdsp::testutil;

namespace {

TEST(CycleRatio, RingCycleTime) {
  // Ring of 6 unit transitions with 2 tokens: alpha* = 6/2 = 3.
  PetriNet Ring = buildRing(6, 2);
  MarkedGraphView View(Ring);
  auto Info = criticalCycleByEnumeration(View);
  ASSERT_TRUE(Info.has_value());
  EXPECT_EQ(Info->CycleTime, Rational(3));
  EXPECT_EQ(Info->ComputationRate, Rational(1, 3));
  EXPECT_EQ(Info->NumCriticalCycles, 1u);
  EXPECT_EQ(Info->CriticalTransitions.size(), 6u);
}

TEST(CycleRatio, AcyclicReturnsNothing) {
  PetriNet Net;
  TransitionId A = Net.addTransition("a");
  TransitionId B = Net.addTransition("b");
  PlaceId P = Net.addPlace("p", 1);
  Net.addArc(A, P);
  Net.addArc(P, B);
  MarkedGraphView View(Net);
  EXPECT_FALSE(criticalCycleByEnumeration(View).has_value());
  EXPECT_FALSE(criticalCycleByParametricSearch(View).has_value());
}

TEST(CycleRatio, PicksTheWorstCycle) {
  // Two cycles sharing t0: fast (2 transitions / 1 token -> 2) and slow
  // (3 transitions / 1 token -> 3).
  PetriNet Net;
  TransitionId T0 = Net.addTransition("t0");
  TransitionId T1 = Net.addTransition("t1");
  TransitionId T2 = Net.addTransition("t2");
  TransitionId T3 = Net.addTransition("t3");
  auto Place = [&](TransitionId A, TransitionId B, uint32_t Tok) {
    PlaceId P = Net.addPlace("p", Tok);
    Net.addArc(A, P);
    Net.addArc(P, B);
  };
  Place(T0, T1, 1);
  Place(T1, T0, 0);
  Place(T0, T2, 1);
  Place(T2, T3, 0);
  Place(T3, T0, 0);
  MarkedGraphView View(Net);
  auto Info = criticalCycleByEnumeration(View);
  ASSERT_TRUE(Info.has_value());
  EXPECT_EQ(Info->CycleTime, Rational(3));
  // Critical transitions: t0, t2, t3 (the slow cycle).
  std::set<uint32_t> Critical;
  for (TransitionId T : Info->CriticalTransitions)
    Critical.insert(T.index());
  EXPECT_EQ(Critical, (std::set<uint32_t>{T0.index(), T2.index(),
                                          T3.index()}));
}

TEST(CycleRatio, RespectsExecutionTimes) {
  // 2-transition ring, times 3 and 4, one token: alpha* = 7.
  PetriNet Net;
  TransitionId A = Net.addTransition("a", 3);
  TransitionId B = Net.addTransition("b", 4);
  PlaceId P1 = Net.addPlace("p1", 1);
  PlaceId P2 = Net.addPlace("p2", 0);
  Net.addArc(A, P1);
  Net.addArc(P1, B);
  Net.addArc(B, P2);
  Net.addArc(P2, A);
  MarkedGraphView View(Net);
  auto Info = criticalCycleByParametricSearch(View);
  ASSERT_TRUE(Info.has_value());
  EXPECT_EQ(Info->CycleTime, Rational(7));
}

TEST(CycleRatio, FractionalRatio) {
  // Ring of 5 with 2 tokens: 5/2, a non-integer cycle time.
  PetriNet Ring = buildRing(5, 2);
  MarkedGraphView View(Ring);
  auto Info = criticalCycleByParametricSearch(View);
  ASSERT_TRUE(Info.has_value());
  EXPECT_EQ(Info->CycleTime, Rational(5, 2));
}

TEST(CycleRatio, ParametricMatchesEnumerationOnRandomGraphs) {
  Rng R(2024);
  for (int Trial = 0; Trial < 30; ++Trial) {
    PetriNet Net = buildRandomMarkedGraph(R, 3 + Trial % 10, Trial % 7);
    MarkedGraphView View(Net);
    auto ByEnum = criticalCycleByEnumeration(View);
    auto ByParam = criticalCycleByParametricSearch(View);
    ASSERT_EQ(ByEnum.has_value(), ByParam.has_value());
    if (!ByEnum)
      continue;
    EXPECT_EQ(ByEnum->CycleTime, ByParam->CycleTime) << "trial " << Trial;
    // The tight-subgraph SCC computation must agree with enumeration on
    // which transitions are critical.
    std::set<uint32_t> A, B;
    for (TransitionId T : ByEnum->CriticalTransitions)
      A.insert(T.index());
    for (TransitionId T : ByParam->CriticalTransitions)
      B.insert(T.index());
    EXPECT_EQ(A, B) << "trial " << Trial;
  }
}

TEST(CycleRatio, DispatcherUsesEnumerationForSmallGraphs) {
  PetriNet Ring = buildRing(4, 1);
  MarkedGraphView View(Ring);
  auto Info = criticalCycle(View);
  ASSERT_TRUE(Info.has_value());
  EXPECT_EQ(Info->NumCriticalCycles, 1u) << "enumeration fills the count";
}

} // namespace
