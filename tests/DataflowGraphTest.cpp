//===- tests/DataflowGraphTest.cpp - Dataflow IR tests ---------------------===//
//
// Part of the SDSP project: a reproduction of Gao, Wong & Ning,
// "A Timed Petri-Net Model for Fine-Grain Loop Scheduling", PLDI 1991.
//
//===----------------------------------------------------------------------===//

#include "dataflow/DataflowGraph.h"

#include "TestUtil.h"
#include "dataflow/Validate.h"
#include "gtest/gtest.h"

#include <sstream>

using namespace sdsp;
using namespace sdsp::testutil;

namespace {

TEST(Ops, ArityAndResults) {
  EXPECT_EQ(opArity(OpKind::Const), 0u);
  EXPECT_EQ(opArity(OpKind::Add), 2u);
  EXPECT_EQ(opArity(OpKind::Merge), 3u);
  EXPECT_EQ(opResults(OpKind::Switch), 2u);
  EXPECT_EQ(opResults(OpKind::Output), 0u);
  EXPECT_EQ(opResults(OpKind::Add), 1u);
}

TEST(Ops, DummyPropagation) {
  TokenValue Ops[2] = {TokenValue::real(2), TokenValue::dummy()};
  EXPECT_TRUE(evalSimpleOp(OpKind::Add, Ops).IsDummy);
  TokenValue Real[2] = {TokenValue::real(2), TokenValue::real(3)};
  EXPECT_EQ(evalSimpleOp(OpKind::Add, Real).Num, 5.0);
  EXPECT_EQ(evalSimpleOp(OpKind::Mul, Real).Num, 6.0);
  EXPECT_EQ(evalSimpleOp(OpKind::Sub, Real).Num, -1.0);
  EXPECT_EQ(evalSimpleOp(OpKind::Min, Real).Num, 2.0);
  EXPECT_EQ(evalSimpleOp(OpKind::CmpLt, Real).Num, 1.0);
}

TEST(DataflowGraph, L1Shape) {
  DataflowGraph G = buildL1();
  // 5 compute + 4 inputs + 1 const + 1 output = 11 nodes.
  EXPECT_EQ(G.numNodes(), 11u);
  EXPECT_FALSE(G.hasLoopCarriedDependence());
  EXPECT_TRUE(isWellFormed(G));
}

TEST(DataflowGraph, L2HasFeedback) {
  DataflowGraph G = buildL2Direct();
  EXPECT_TRUE(G.hasLoopCarriedDependence());
  EXPECT_TRUE(isWellFormed(G));
  // Exactly one feedback arc, E -> C, with one initial value.
  int Feedback = 0;
  for (ArcId A : G.arcIds())
    if (G.arc(A).isFeedback()) {
      ++Feedback;
      EXPECT_EQ(G.arc(A).InitialValues.size(), 1u);
      EXPECT_EQ(G.node(G.arc(A).From).Name, "E");
      EXPECT_EQ(G.node(G.arc(A).To).Name, "C");
    }
  EXPECT_EQ(Feedback, 1);
}

TEST(DataflowGraph, TopoOrderRespectsForwardArcs) {
  DataflowGraph G = buildL2Direct();
  std::vector<NodeId> Order = G.forwardTopoOrder();
  std::vector<size_t> Position(G.numNodes());
  for (size_t I = 0; I < Order.size(); ++I)
    Position[Order[I].index()] = I;
  for (ArcId A : G.arcIds()) {
    if (G.arc(A).isFeedback())
      continue;
    EXPECT_LT(Position[G.arc(A).From.index()],
              Position[G.arc(A).To.index()]);
  }
}

TEST(Validate, CatchesUnconnectedOperand) {
  DataflowGraph G;
  G.addNode(OpKind::Add, "orphan");
  std::vector<ValidationError> Errors = validate(G);
  ASSERT_GE(Errors.size(), 2u); // two unconnected ports
  EXPECT_NE(Errors[0].Message.find("unconnected"), std::string::npos);
}

TEST(Validate, CatchesForwardCycle) {
  DataflowGraph G;
  NodeId A = G.addNode(OpKind::Identity, "a");
  NodeId B = G.addNode(OpKind::Identity, "b");
  G.connect(A, 0, B, 0);
  G.connect(B, 0, A, 0);
  std::vector<ValidationError> Errors = validate(G);
  bool FoundCycle = false;
  for (const ValidationError &E : Errors)
    if (E.Message.find("cycle") != std::string::npos)
      FoundCycle = true;
  EXPECT_TRUE(FoundCycle);
}

TEST(Validate, FeedbackCycleIsFine) {
  DataflowGraph G;
  NodeId In = G.addNode(OpKind::Input, "x");
  NodeId A = G.addNode(OpKind::Add, "a");
  G.connect(In, 0, A, 0);
  G.connectFeedback(A, 0, A, 1, {0.0}); // a = x + a[i-1]
  NodeId Out = G.addNode(OpKind::Output, "a");
  G.connect(A, 0, Out, 0);
  EXPECT_TRUE(isWellFormed(G));
}

TEST(DataflowGraph, BuilderConditional) {
  GraphBuilder B;
  auto X = B.input("x");
  auto C = B.lt(X, B.constant(0), "isneg");
  auto [T, F] = B.switchOn(C, X, "sw");
  auto M = B.merge(C, B.neg(T), F, "abs");
  B.outputValue("abs", M);
  DataflowGraph G = B.take();
  EXPECT_TRUE(isWellFormed(G));
}

TEST(DataflowGraph, DotIncludesFeedbackStyling) {
  DataflowGraph G = buildL2Direct();
  std::ostringstream OS;
  G.printDot(OS, "l2");
  EXPECT_NE(OS.str().find("style=dashed"), std::string::npos);
}

TEST(DataflowGraph, RandomGraphsAreWellFormed) {
  Rng R(11);
  for (int Trial = 0; Trial < 25; ++Trial) {
    DataflowGraph G = buildRandomLoopGraph(R, 3 + Trial % 10, 20);
    EXPECT_TRUE(isWellFormed(G)) << "trial " << Trial;
  }
}

} // namespace
