//===- tests/DependenceGraphTest.cpp - Dep graph builder tests -------------===//
//
// Part of the SDSP project: a reproduction of Gao, Wong & Ning,
// "A Timed Petri-Net Model for Fine-Grain Loop Scheduling", PLDI 1991.
//
//===----------------------------------------------------------------------===//

#include "sched/DependenceGraph.h"

#include "TestUtil.h"
#include "core/RateAnalysis.h"
#include "core/SdspPn.h"
#include "gtest/gtest.h"

#include <map>

using namespace sdsp;
using namespace sdsp::testutil;

namespace {

TEST(DepGraph, L1DataOnly) {
  DepGraph D = depGraphFromSdsp(Sdsp::standard(buildL1()));
  EXPECT_EQ(D.size(), 5u);
  EXPECT_EQ(D.Deps.size(), 5u);
  EXPECT_EQ(D.maxDistance(), 0u);
  EXPECT_EQ(D.recurrenceMii(), Rational(0)) << "acyclic without acks";
}

TEST(DepGraph, L2RecurrenceMii) {
  DepGraph D = depGraphFromSdsp(Sdsp::standard(buildL2Direct()));
  EXPECT_EQ(D.maxDistance(), 1u);
  EXPECT_EQ(D.recurrenceMii(), Rational(3)) << "C-D-E recurrence";
}

TEST(DepGraph, AcksReproduceThePnCycleTime) {
  // With acknowledgement anti-deps, the classical RecMII equals the
  // SDSP-PN cycle time exactly.
  for (bool UseL2 : {false, true}) {
    Sdsp S = Sdsp::standard(UseL2 ? buildL2Direct() : buildL1());
    DepGraph D = depGraphFromSdspWithAcks(S);
    SdspPn Pn = buildSdspPn(S);
    EXPECT_EQ(D.recurrenceMii(), analyzeRate(Pn).CycleTime);
  }
}

TEST(DepGraph, HeightsAreLongestPaths) {
  DepGraph D = depGraphFromSdsp(Sdsp::standard(buildL1()));
  std::vector<uint64_t> H = criticalPathHeights(D);
  // A -> {B, C} -> D -> E: heights A=4, B=C=3, D=2, E=1.
  std::map<std::string, uint64_t> ByName;
  for (size_t I = 0; I < D.size(); ++I)
    ByName[D.Ops[I].Name] = H[I];
  EXPECT_EQ(ByName["A"], 4u);
  EXPECT_EQ(ByName["B"], 3u);
  EXPECT_EQ(ByName["C"], 3u);
  EXPECT_EQ(ByName["D"], 2u);
  EXPECT_EQ(ByName["E"], 1u);
}

TEST(DepGraph, LatenciesCarryOver) {
  DataflowGraph G = buildL1();
  for (NodeId N : G.nodeIds())
    if (G.node(N).Name == "D")
      G.setExecTime(N, 7);
  DepGraph D = depGraphFromSdsp(Sdsp::standard(G));
  bool Found = false;
  for (const DepGraph::Op &Op : D.Ops)
    if (Op.Name == "D") {
      EXPECT_EQ(Op.Latency, 7u);
      Found = true;
    }
  EXPECT_TRUE(Found);
}

} // namespace
