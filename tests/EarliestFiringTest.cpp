//===- tests/EarliestFiringTest.cpp - Engine semantics tests ---------------===//
//
// Part of the SDSP project: a reproduction of Gao, Wong & Ning,
// "A Timed Petri-Net Model for Fine-Grain Loop Scheduling", PLDI 1991.
//
//===----------------------------------------------------------------------===//

#include "petri/EarliestFiring.h"

#include "TestUtil.h"
#include "gtest/gtest.h"

using namespace sdsp;
using namespace sdsp::testutil;

namespace {

TEST(EarliestFiring, RingTokenCirculates) {
  PetriNet Ring = buildRing(3, 1);
  EarliestFiringEngine Engine(Ring);
  // Token starts on p0 (t0 -> t1), so t1 fires first.
  Engine.prepare();
  ASSERT_EQ(Engine.candidates().size(), 1u);
  EXPECT_EQ(Engine.candidates()[0], TransitionId(1u));
  StepRecord R0 = Engine.fireAndAdvance();
  ASSERT_EQ(R0.Fired.size(), 1u);

  Engine.prepare();
  ASSERT_EQ(Engine.candidates().size(), 1u);
  EXPECT_EQ(Engine.candidates()[0], TransitionId(2u));
}

TEST(EarliestFiring, CompletionTimingRespectsExecTime) {
  // a(time 3) feeds b; b can fire only after a finishes at t=3.
  PetriNet Net;
  TransitionId A = Net.addTransition("a", 3);
  TransitionId B = Net.addTransition("b", 1);
  PlaceId P = Net.addPlace("p", 0);
  PlaceId Back = Net.addPlace("back", 1);
  Net.addArc(A, P);
  Net.addArc(P, B);
  Net.addArc(B, Back);
  Net.addArc(Back, A);

  EarliestFiringEngine Engine(Net);
  StepRecord R0 = Engine.fireAndAdvance(); // t=0: a fires
  ASSERT_EQ(R0.Fired.size(), 1u);
  EXPECT_EQ(R0.Fired[0], A);

  StepRecord R1 = Engine.fireAndAdvance(); // t=1: nothing
  EXPECT_TRUE(R1.Fired.empty());
  StepRecord R2 = Engine.fireAndAdvance(); // t=2: nothing
  EXPECT_TRUE(R2.Fired.empty());
  StepRecord R3 = Engine.fireAndAdvance(); // t=3: a completes, b fires
  ASSERT_EQ(R3.Completed.size(), 1u);
  EXPECT_EQ(R3.Completed[0], A);
  ASSERT_EQ(R3.Fired.size(), 1u);
  EXPECT_EQ(R3.Fired[0], B);
}

TEST(EarliestFiring, ResidualVectorTracksBusyTransitions) {
  PetriNet Net;
  TransitionId A = Net.addTransition("a", 4);
  PlaceId P = Net.addPlace("p", 1);
  Net.addArc(P, A);
  Net.addArc(A, P);

  EarliestFiringEngine Engine(Net);
  Engine.prepare();
  InstantaneousState S0 = Engine.state();
  EXPECT_EQ(S0.Residual[A.index()], 0u);
  Engine.fireAndAdvance(); // fires at 0, completes at 4
  Engine.prepare();
  InstantaneousState S1 = Engine.state();
  EXPECT_EQ(S1.Residual[A.index()], 3u) << "3 units left at t=1";
  EXPECT_EQ(S1.M.tokens(P), 0u);
}

TEST(EarliestFiring, MaximalStepFiresAllEnabled) {
  // Two independent self-recycling transitions fire simultaneously.
  PetriNet Net;
  for (int I = 0; I < 2; ++I) {
    TransitionId T = Net.addTransition("t" + std::to_string(I));
    PlaceId P = Net.addPlace("p" + std::to_string(I), 1);
    Net.addArc(P, T);
    Net.addArc(T, P);
  }
  EarliestFiringEngine Engine(Net);
  StepRecord R = Engine.fireAndAdvance();
  EXPECT_EQ(R.Fired.size(), 2u);
}

TEST(EarliestFiring, NonReentrancyAssumptionA61) {
  // A source transition with exec time 2 and no inputs: it must not
  // start a second firing while busy -> fires at t=0,2,4,...
  PetriNet Net;
  TransitionId T = Net.addTransition("src", 2);
  (void)T;
  EarliestFiringEngine Engine(Net);
  std::vector<size_t> FiringTimes;
  for (int Step = 0; Step < 6; ++Step) {
    StepRecord R = Engine.fireAndAdvance();
    if (!R.Fired.empty())
      FiringTimes.push_back(static_cast<size_t>(R.Time));
  }
  EXPECT_EQ(FiringTimes, (std::vector<size_t>{0, 2, 4}));
}

TEST(EarliestFiring, QuiescenceDetection) {
  // One token, consumer with no recycling: after one firing the net is
  // dead.
  PetriNet Net;
  TransitionId A = Net.addTransition("a");
  PlaceId P = Net.addPlace("p", 1);
  PlaceId Sink = Net.addPlace("sink", 0);
  Net.addArc(P, A);
  Net.addArc(A, Sink);

  EarliestFiringEngine Engine(Net);
  EXPECT_FALSE(Engine.isQuiescent());
  Engine.fireAndAdvance();
  Engine.prepare();
  Engine.fireAndAdvance(); // completion deposits into sink
  Engine.prepare();
  EXPECT_TRUE(Engine.isQuiescent());
}

TEST(EarliestFiring, StructuralConflictWithDefaultPolicy) {
  // One token, two competing consumers: index order wins, one fires.
  PetriNet Net;
  TransitionId A = Net.addTransition("a");
  TransitionId B = Net.addTransition("b");
  PlaceId P = Net.addPlace("p", 1);
  Net.addArc(P, A);
  Net.addArc(P, B);
  Net.addArc(A, P);
  Net.addArc(B, P);

  EarliestFiringEngine Engine(Net);
  StepRecord R = Engine.fireAndAdvance();
  ASSERT_EQ(R.Fired.size(), 1u);
  EXPECT_EQ(R.Fired[0], A) << "index order breaks the tie";
}

TEST(FifoPolicy, HeadOfQueueWins) {
  // Shared resource place; b becomes data-ready before a, so b fires
  // first even though a has the smaller index.
  PetriNet Net;
  TransitionId A = Net.addTransition("a");
  TransitionId B = Net.addTransition("b");
  TransitionId Feeder = Net.addTransition("feeder");
  PlaceId Res = Net.addPlace("res", 1);
  PlaceId DataA = Net.addPlace("da", 0);
  PlaceId DataB = Net.addPlace("db", 1);
  PlaceId FeederIn = Net.addPlace("fi", 1);
  Net.addArc(Res, A);
  Net.addArc(A, Res);
  Net.addArc(Res, B);
  Net.addArc(B, Res);
  Net.addArc(DataA, A);
  Net.addArc(DataB, B);
  Net.addArc(FeederIn, Feeder);
  Net.addArc(Feeder, DataA);

  std::vector<bool> Conflicting(Net.numTransitions(), false);
  Conflicting[A.index()] = true;
  Conflicting[B.index()] = true;
  FifoPolicy Policy(Conflicting, {Res});
  EarliestFiringEngine Engine(Net, &Policy);

  // t=0: b data-ready (enqueued), feeder fires; b takes the resource.
  StepRecord R0 = Engine.fireAndAdvance();
  ASSERT_EQ(R0.Fired.size(), 2u);
  EXPECT_EQ(R0.Fired[0], Feeder);
  EXPECT_EQ(R0.Fired[1], B);
  // t=1: feeder completes, a becomes ready; resource back at t=1.
  StepRecord R1 = Engine.fireAndAdvance();
  ASSERT_EQ(R1.Fired.size(), 1u);
  EXPECT_EQ(R1.Fired[0], A);
}

TEST(FifoPolicy, StateFingerprintReflectsQueue) {
  PetriNet Net;
  TransitionId A = Net.addTransition("a");
  PlaceId Res = Net.addPlace("res", 0); // never available
  PlaceId Data = Net.addPlace("d", 1);
  Net.addArc(Res, A);
  Net.addArc(A, Res);
  Net.addArc(Data, A);

  std::vector<bool> Conflicting{true};
  FifoPolicy Policy(Conflicting, {Res});
  EarliestFiringEngine Engine(Net, &Policy);
  Engine.prepare();
  InstantaneousState S = Engine.state();
  ASSERT_EQ(S.PolicyFingerprint.size(), 1u);
  EXPECT_EQ(S.PolicyFingerprint[0], A.index());
}

TEST(InstantaneousState, EqualityIncludesAllComponents) {
  InstantaneousState A, B;
  A.M = Marking(2);
  B.M = Marking(2);
  A.Residual = {0, 1};
  B.Residual = {0, 1};
  EXPECT_EQ(A, B);
  EXPECT_EQ(A.hashValue(), B.hashValue());
  B.PolicyFingerprint = {3};
  EXPECT_FALSE(A == B);
  B.PolicyFingerprint.clear();
  B.Residual = {1, 0};
  EXPECT_FALSE(A == B);
}

} // namespace
