//===- tests/EdgeCaseTest.cpp - Boundary-condition sweep -------------------===//
//
// Part of the SDSP project: a reproduction of Gao, Wong & Ning,
// "A Timed Petri-Net Model for Fine-Grain Loop Scheduling", PLDI 1991.
//
//===----------------------------------------------------------------------===//

#include "TestUtil.h"
#include "codegen/Codegen.h"
#include "codegen/Vm.h"
#include "core/BufferSizing.h"
#include "core/Frustum.h"
#include "core/ScheduleDerivation.h"
#include "core/SdspPn.h"
#include "dataflow/Interpreter.h"
#include "loopir/Lowering.h"
#include "support/TextTable.h"
#include "gtest/gtest.h"

#include <sstream>

using namespace sdsp;
using namespace sdsp::testutil;

namespace {

TEST(EdgeCase, VmZeroIterations) {
  Sdsp S = Sdsp::standard(buildL2Direct());
  SdspPn Pn = buildSdspPn(S);
  auto F = detectFrustum(Pn.Net);
  ASSERT_TRUE(F.has_value());
  LoopProgram P =
      generateLoopProgram(S, Pn, deriveSchedule(Pn, *F));
  StreamMap In; // No streams needed for zero iterations.
  VmResult R = executeLoopProgram(P, In, 0);
  EXPECT_TRUE(R.Outputs.empty());
  EXPECT_EQ(R.Cycles, 0u);
}

TEST(EdgeCase, InterpreterZeroIterations) {
  DataflowGraph G = buildL1();
  StreamMap In;
  for (const char *Name : {"X", "Y", "Z", "W"})
    In[Name] = {};
  InterpResult R = interpret(G, In, 0);
  EXPECT_TRUE(R.Outputs.empty() || R.Outputs.at("E").empty());
}

TEST(EdgeCase, TextTablePrintsNothingWhenEmpty) {
  TextTable T;
  std::ostringstream OS;
  T.print(OS);
  EXPECT_TRUE(OS.str().empty());
}

TEST(EdgeCase, InstantaneousStateStringShowsResidualAndQueue) {
  InstantaneousState S;
  S.M = Marking(3);
  S.M.produce(PlaceId(1u));
  S.Residual = {0, 2, 0};
  S.PolicyFingerprint = {4, 2};
  std::string Out = S.str();
  EXPECT_NE(Out.find("p1"), std::string::npos);
  EXPECT_NE(Out.find("R=(0,2,0)"), std::string::npos);
  EXPECT_NE(Out.find("Q=(4,2)"), std::string::npos);
}

TEST(EdgeCase, SingleIterationScheduleStartTimes) {
  // startTime must be exact for the very first iterations, prologue
  // included, on a kernel whose prologue is nonempty.
  Sdsp S = Sdsp::standard(buildL2Direct());
  SdspPn Pn = buildSdspPn(S);
  auto F = detectFrustum(Pn.Net);
  ASSERT_TRUE(F.has_value());
  SoftwarePipelineSchedule Sched = deriveSchedule(Pn, *F);
  // Replay the trace and compare against startTime for every firing.
  std::vector<uint64_t> Seen(Pn.Net.numTransitions(), 0);
  for (const StepRecord &Rec : F->Trace)
    for (TransitionId T : Rec.Fired)
      EXPECT_EQ(Sched.startTime(T, Seen[T.index()]++), Rec.Time);
}

TEST(EdgeCase, BufferSizingOnSingleOpLoop) {
  // Loop12's shape: nothing to size; already at its bound.
  DataflowGraph G;
  NodeId In = G.addNode(OpKind::Input, "y");
  NodeId Sub = G.addNode(OpKind::Neg, "x");
  G.connect(In, 0, Sub, 0);
  NodeId Out = G.addNode(OpKind::Output, "x");
  G.connect(Sub, 0, Out, 0);
  BufferSizingResult R = sizeBuffers(G);
  EXPECT_TRUE(R.Feasible);
  EXPECT_EQ(R.Storage, 0u);
  EXPECT_EQ(R.AchievedCycleTime, Rational(1));
}

TEST(EdgeCase, FrustumOnTwoIndependentRecurrences) {
  // Two self-recurrences of different latencies in one body: the net
  // is connected through nothing (two components); per-transition
  // rates legitimately differ, and hasUniformCount reports it.
  DataflowGraph G;
  for (int I = 0; I < 2; ++I) {
    NodeId In = G.addNode(OpKind::Input, "x" + std::to_string(I));
    NodeId Acc = G.addNode(OpKind::Add, "s" + std::to_string(I));
    G.setExecTime(Acc, I == 0 ? 1 : 3);
    G.connect(In, 0, Acc, 0);
    G.connectFeedback(Acc, 0, Acc, 1, {0.0});
    NodeId Out = G.addNode(OpKind::Output, "s" + std::to_string(I));
    G.connect(Acc, 0, Out, 0);
  }
  SdspPn Pn = buildSdspPn(Sdsp::standard(G));
  auto F = detectFrustum(Pn.Net);
  ASSERT_TRUE(F.has_value());
  EXPECT_FALSE(F->hasUniformCount(Pn.Net.transitionIds()))
      << "disconnected components run at their own rates";
  // Fast accumulator: once per cycle; slow one: once per 3.
  Rational Fast = F->computationRate(TransitionId(0u));
  Rational Slow = F->computationRate(TransitionId(1u));
  EXPECT_EQ(Fast, Rational(1));
  EXPECT_EQ(Slow, Rational(1, 3));
}

TEST(EdgeCase, DeepInitWindowThroughTheWholeStack) {
  // Distance-4 recurrence: parser init list, ring of 4 registers, VM.
  DiagnosticEngine Diags;
  auto G = compileLoop(
      "do i { init s = 1, 2, 3, 4; s = s[i-4] + x[i]; out s; }", Diags);
  ASSERT_TRUE(G.has_value());
  Sdsp S = Sdsp::standard(*G);
  EXPECT_EQ(S.storageLocations(), 4u);
  SdspPn Pn = buildSdspPn(S);
  auto F = detectFrustum(Pn.Net);
  ASSERT_TRUE(F.has_value());
  LoopProgram P =
      generateLoopProgram(S, Pn, deriveSchedule(Pn, *F));
  StreamMap In;
  In["x"] = {10, 10, 10, 10, 10, 10, 10, 10};
  VmResult R = executeLoopProgram(P, In, 8);
  EXPECT_DOUBLE_EQ(R.Outputs.at("s")[0], 11.0);
  EXPECT_DOUBLE_EQ(R.Outputs.at("s")[3], 14.0);
  EXPECT_DOUBLE_EQ(R.Outputs.at("s")[4], 21.0);
  EXPECT_DOUBLE_EQ(R.Outputs.at("s")[7], 24.0);
}

TEST(EdgeCase, RationalExtremes) {
  Rational Big(1000000, 3);
  Rational Small(1, 1000000);
  EXPECT_LT(Small, Big);
  EXPECT_EQ((Big * Small), Rational(1, 3));
  EXPECT_EQ(Rational(-0.0 == 0.0 ? 0 : 1), Rational(0));
}

} // namespace
