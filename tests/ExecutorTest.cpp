//===- tests/ExecutorTest.cpp - Thread-pool lifecycle tests -----------------===//
//
// Part of the SDSP project: a reproduction of Gao, Wong & Ning,
// "A Timed Petri-Net Model for Fine-Grain Loop Scheduling", PLDI 1991.
//
//===----------------------------------------------------------------------===//
//
// The Executor contract (core/Executor.h): per-task Status propagation,
// destructor drains, shutdown-with-pending-work cancels cleanly, and
// submissions after shutdown resolve instead of hanging.  Run under
// ThreadSanitizer in CI.
//
//===----------------------------------------------------------------------===//

#include "core/Executor.h"

#include "gtest/gtest.h"

#include <atomic>
#include <chrono>
#include <memory>
#include <thread>

using namespace sdsp;

namespace {

TEST(ExecutorTest, RunsEveryTask) {
  Executor Ex(4);
  std::atomic<int> Count{0};
  std::vector<std::future<Status>> Futures;
  for (int I = 0; I < 100; ++I)
    Futures.push_back(Ex.submit([&] {
      ++Count;
      return Status::ok();
    }));
  for (auto &F : Futures)
    EXPECT_TRUE(F.get());
  EXPECT_EQ(Count.load(), 100);
}

TEST(ExecutorTest, ClampsZeroThreadsToOne) {
  Executor Ex(0);
  EXPECT_EQ(Ex.threadCount(), 1u);
  EXPECT_TRUE(Ex.submit([] { return Status::ok(); }).get());
}

TEST(ExecutorTest, PropagatesPerTaskStatus) {
  // One failing task must not affect its siblings or the pool.
  Executor Ex(2);
  auto Ok = Ex.submit([] { return Status::ok(); });
  auto Bad = Ex.submit([] {
    return Status::error(ErrorCode::InvalidInput, "test", "broken task");
  });
  auto AfterBad = Ex.submit([] { return Status::ok(); });
  EXPECT_TRUE(Ok.get());
  Status S = Bad.get();
  EXPECT_FALSE(S);
  EXPECT_EQ(S.code(), ErrorCode::InvalidInput);
  EXPECT_EQ(S.stage(), "test");
  EXPECT_TRUE(AfterBad.get());
}

TEST(ExecutorTest, CapturesThrowingTasks) {
  Executor Ex(1);
  Status S = Ex.submit([]() -> Status {
                 throw std::runtime_error("boom");
               }).get();
  EXPECT_FALSE(S);
  EXPECT_EQ(S.code(), ErrorCode::InternalInvariant);
  // The worker survived the exception.
  EXPECT_TRUE(Ex.submit([] { return Status::ok(); }).get());
}

TEST(ExecutorTest, WaitIsABarrierNotAShutdown) {
  Executor Ex(2);
  std::atomic<int> Count{0};
  for (int I = 0; I < 10; ++I)
    Ex.submit([&] {
      ++Count;
      return Status::ok();
    });
  Ex.wait();
  EXPECT_EQ(Count.load(), 10);
  // Still accepting work afterwards.
  EXPECT_TRUE(Ex.submit([] { return Status::ok(); }).get());
}

TEST(ExecutorTest, DestructorDrainsPendingWork) {
  std::atomic<int> Count{0};
  {
    Executor Ex(2);
    for (int I = 0; I < 32; ++I)
      Ex.submit([&] {
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
        ++Count;
        return Status::ok();
      });
    // Scope exit: the pool must run all 32, not drop the queue.
  }
  EXPECT_EQ(Count.load(), 32);
}

TEST(ExecutorTest, ShutdownCancelsPendingWork) {
  Executor Ex(1);
  std::promise<void> Gate;
  std::shared_future<void> GateF = Gate.get_future().share();
  std::atomic<bool> BlockerStarted{false};
  std::atomic<int> PendingRan{0};

  auto Blocker = Ex.submit([&] {
    BlockerStarted = true;
    GateF.wait();
    return Status::ok();
  });
  while (!BlockerStarted)
    std::this_thread::yield();

  // The single worker is parked on the gate; these can only be queued.
  std::vector<std::future<Status>> Pending;
  for (int I = 0; I < 8; ++I)
    Pending.push_back(Ex.submit([&] {
      ++PendingRan;
      return Status::ok();
    }));

  // shutdown(CancelPending) resolves the queued futures *before*
  // joining, so callers blocked on them wake even while a task is
  // still running.
  std::thread Stopper([&] { Ex.shutdown(/*CancelPending=*/true); });
  for (auto &F : Pending) {
    Status S = F.get(); // Must not hang.
    EXPECT_FALSE(S);
    EXPECT_EQ(S.code(), ErrorCode::ResourceConflict);
    EXPECT_EQ(S.stage(), "executor");
  }
  EXPECT_EQ(PendingRan.load(), 0);

  Gate.set_value(); // Release the running task; join completes.
  Stopper.join();
  EXPECT_TRUE(Blocker.get()); // Running tasks finish, never cancelled.
}

TEST(ExecutorTest, SubmitAfterShutdownResolvesCancelled) {
  Executor Ex(1);
  Ex.shutdown();
  std::atomic<bool> Ran{false};
  Status S = Ex.submit([&] {
                 Ran = true;
                 return Status::ok();
               }).get();
  EXPECT_FALSE(S);
  EXPECT_EQ(S.code(), ErrorCode::ResourceConflict);
  EXPECT_FALSE(Ran.load());
}

TEST(ExecutorTest, ShutdownIsIdempotent) {
  Executor Ex(2);
  Ex.submit([] { return Status::ok(); });
  Ex.shutdown();
  Ex.shutdown(/*CancelPending=*/true);
  // Destructor runs a third shutdown; must not crash or hang.
}

/// Parks the single worker of \p Ex on a task until the returned gate
/// promise is fulfilled, so everything submitted next can only queue.
std::future<Status> parkWorker(Executor &Ex, std::promise<void> &Gate) {
  std::shared_future<void> GateF = Gate.get_future().share();
  auto Started = std::make_shared<std::atomic<bool>>(false);
  auto Blocker = Ex.submit([GateF, Started] {
    *Started = true;
    GateF.wait();
    return Status::ok();
  });
  while (!Started->load())
    std::this_thread::yield();
  return Blocker;
}

TEST(ExecutorTest, TokenCancelledMidQueueResolvesCancelledNotConflict) {
  // The satellite distinction: a deliberate token cancellation while
  // the task waits in the queue is ErrorCode::Cancelled; the
  // pool-lifecycle discard (ShutdownCancelsPendingWork above) stays
  // ResourceConflict.  Run both channels through one pool.
  Executor Ex(1);
  std::promise<void> Gate;
  auto Blocker = parkWorker(Ex, Gate);

  CancelSource Src;
  std::atomic<bool> Ran{false};
  auto Queued = Ex.submit(
      [&] {
        Ran = true;
        return Status::ok();
      },
      Src.token());
  Src.cancel();
  Gate.set_value(); // Worker wakes, polls the token, skips the task.

  Status S = Queued.get();
  EXPECT_FALSE(S);
  EXPECT_EQ(S.code(), ErrorCode::Cancelled);
  EXPECT_EQ(S.stage(), "executor");
  EXPECT_NE(S.str().find("cancel token"), std::string::npos);
  EXPECT_FALSE(Ran.load());
  EXPECT_TRUE(Blocker.get());

  Executor::Counters C = Ex.counters();
  EXPECT_EQ(C.Cancelled, 1u);
  EXPECT_EQ(C.Completed, 1u); // Only the blocker actually ran.
}

TEST(ExecutorTest, ExpiredDeadlineTokenResolvesDeadlineExceeded) {
  Executor Ex(1);
  CancelToken Expired =
      CancelSource::withDeadline(std::chrono::milliseconds(0)).token();
  std::atomic<bool> Ran{false};
  Status S = Ex.submit(
                  [&] {
                    Ran = true;
                    return Status::ok();
                  },
                  Expired)
                 .get();
  EXPECT_FALSE(S);
  EXPECT_EQ(S.code(), ErrorCode::DeadlineExceeded);
  EXPECT_FALSE(Ran.load());
}

TEST(ExecutorTest, ShutdownDiscardKeepsTokenReason) {
  // shutdown(CancelPending) discards two queued tasks: the one with a
  // cancelled token reports the token's reason, its tokenless sibling
  // the lifecycle ResourceConflict.
  Executor Ex(1);
  std::promise<void> Gate;
  auto Blocker = parkWorker(Ex, Gate);

  CancelSource Src;
  auto WithToken = Ex.submit([] { return Status::ok(); }, Src.token());
  auto Plain = Ex.submit([] { return Status::ok(); });
  Src.cancel();

  std::thread Stopper([&] { Ex.shutdown(/*CancelPending=*/true); });
  EXPECT_EQ(WithToken.get().code(), ErrorCode::Cancelled);
  EXPECT_EQ(Plain.get().code(), ErrorCode::ResourceConflict);
  Gate.set_value();
  Stopper.join();
  EXPECT_TRUE(Blocker.get());
}

TEST(ExecutorTest, LiveTokenDoesNotStopTheTask) {
  Executor Ex(2);
  CancelSource Src;
  std::atomic<bool> Ran{false};
  Status S = Ex.submit(
                  [&] {
                    Ran = true;
                    return Status::ok();
                  },
                  Src.token())
                 .get();
  EXPECT_TRUE(S);
  EXPECT_TRUE(Ran.load());
}

} // namespace
