//===- tests/FaultInjectionTest.cpp - Fault-injection framework tests -------===//
//
// Part of the SDSP project: a reproduction of Gao, Wong & Ning,
// "A Timed Petri-Net Model for Fine-Grain Loop Scheduling", PLDI 1991.
//
//===----------------------------------------------------------------------===//
//
// The FaultSchedule/FaultContext contract (support/FaultInjection.h):
// spec parsing against the site catalog, per-context Nth-arrival
// firing, scope filters, action-to-error mapping, and the process-wide
// schedule used by SDSP_FAULT_SPEC / sdspc --fault-spec.
//
//===----------------------------------------------------------------------===//

#include "support/FaultInjection.h"

#include "core/Session.h"
#include "support/Metrics.h"
#include "support/Trace.h"

#include "gtest/gtest.h"

#include <cstdlib>
#include <sstream>

using namespace sdsp;

namespace {

TEST(FaultInjectionTest, ParsesASingleTrigger) {
  Expected<FaultSchedule> S = FaultSchedule::parse("pass:frustum:fail@2");
  ASSERT_TRUE(S) << S.status().str();
  ASSERT_EQ(S->triggers().size(), 1u);
  const FaultTrigger &T = S->triggers()[0];
  EXPECT_EQ(T.Site, "pass:frustum");
  EXPECT_EQ(T.Action, FaultAction::Fail);
  EXPECT_EQ(T.Occurrence, 2u);
  EXPECT_TRUE(T.JobFilter.empty());
}

TEST(FaultInjectionTest, ParsesEveryActionAndFilter) {
  Expected<FaultSchedule> S = FaultSchedule::parse(
      "pass:lower:fail-hard,cache:publish:delay=50ms@3,"
      "executor:dispatch:fail@1~kernel:l2");
  ASSERT_TRUE(S) << S.status().str();
  ASSERT_EQ(S->triggers().size(), 3u);
  EXPECT_EQ(S->triggers()[0].Action, FaultAction::FailHard);
  EXPECT_EQ(S->triggers()[1].Action, FaultAction::Delay);
  EXPECT_EQ(S->triggers()[1].DelayMillis, 50u);
  EXPECT_EQ(S->triggers()[1].Occurrence, 3u);
  EXPECT_EQ(S->triggers()[2].JobFilter, "kernel:l2");
}

TEST(FaultInjectionTest, EmptySpecIsAnEmptySchedule) {
  Expected<FaultSchedule> S = FaultSchedule::parse("");
  ASSERT_TRUE(S) << S.status().str();
  EXPECT_TRUE(S->empty());
}

TEST(FaultInjectionTest, RejectsMalformedSpecs) {
  const char *Bad[] = {
      "pass:frustum",              // no action
      "nosuch:site:fail",          // unknown site
      "pass:frustum:explode",      // unknown action
      "pass:frustum:fail@0",       // zero occurrence
      "pass:frustum:fail@x",       // non-numeric occurrence
      "pass:frustum:delay=5s",     // bad delay unit
      "pass:frustum:delay=99999999ms", // over the delay cap
      "pass:frustum:fail,,",       // empty trigger
  };
  for (const char *Spec : Bad) {
    Expected<FaultSchedule> S = FaultSchedule::parse(Spec);
    EXPECT_FALSE(S) << "accepted: " << Spec;
    if (!S)
      EXPECT_EQ(S.status().code(), ErrorCode::InvalidInput) << Spec;
  }
}

TEST(FaultInjectionTest, SiteCatalogCoversEveryPass) {
  // Every registered pass has an armable site, and the non-pass sites
  // the code is instrumented with are in the catalog.
  for (size_t P = 0; P < NumPassKinds; ++P) {
    std::string Site =
        std::string("pass:") + passInfo(static_cast<PassKind>(P)).Id;
    EXPECT_TRUE(FaultSchedule::isKnownSite(Site)) << Site;
  }
  EXPECT_TRUE(FaultSchedule::isKnownSite("cache:lookup"));
  EXPECT_TRUE(FaultSchedule::isKnownSite("cache:publish"));
  EXPECT_TRUE(FaultSchedule::isKnownSite("executor:dispatch"));
  EXPECT_TRUE(FaultSchedule::isKnownSite("frustum:step"));
  EXPECT_FALSE(FaultSchedule::isKnownSite("pass:nosuch"));
}

TEST(FaultInjectionTest, FiresAtTheNthArrivalExactlyOnce) {
  Expected<FaultSchedule> S = FaultSchedule::parse("frustum:step:fail@3");
  ASSERT_TRUE(S);
  FaultContext Ctx(&*S, "job");
  EXPECT_TRUE(Ctx.checkpoint("frustum:step"));
  EXPECT_TRUE(Ctx.checkpoint("frustum:step"));
  Status Third = Ctx.checkpoint("frustum:step");
  EXPECT_FALSE(Third);
  EXPECT_EQ(Third.code(), ErrorCode::TransientFault);
  EXPECT_NE(Third.str().find("frustum:step (arrival 3)"),
            std::string::npos);
  // Arrivals keep counting; the trigger does not re-fire.  This is what
  // lets a retry sail past a fail@N site.
  EXPECT_TRUE(Ctx.checkpoint("frustum:step"));
  EXPECT_EQ(Ctx.arrivals("frustum:step"), 4u);
  EXPECT_EQ(Ctx.fired(), 1u);
}

TEST(FaultInjectionTest, FailHardMapsToInternalInvariant) {
  Expected<FaultSchedule> S = FaultSchedule::parse("pass:lower:fail-hard");
  ASSERT_TRUE(S);
  FaultContext Ctx(&*S, "job");
  Status St = Ctx.checkpoint("pass:lower");
  EXPECT_FALSE(St);
  EXPECT_EQ(St.code(), ErrorCode::InternalInvariant);
}

TEST(FaultInjectionTest, DelaySucceedsAndCounts) {
  Expected<FaultSchedule> S = FaultSchedule::parse("cache:publish:delay=1ms");
  ASSERT_TRUE(S);
  FaultContext Ctx(&*S, "job");
  EXPECT_TRUE(Ctx.checkpoint("cache:publish"));
  EXPECT_EQ(Ctx.fired(), 1u);
}

TEST(FaultInjectionTest, ScopeFilterRestrictsFiring) {
  Expected<FaultSchedule> S =
      FaultSchedule::parse("pass:frustum:fail~kernel:l2");
  ASSERT_TRUE(S);
  FaultContext Other(&*S, "kernel:l1");
  EXPECT_TRUE(Other.checkpoint("pass:frustum"));
  FaultContext Match(&*S, "kernel:l2");
  EXPECT_FALSE(Match.checkpoint("pass:frustum"));
  // Substring match, like the grammar says.
  FaultContext Super(&*S, "dir/kernel:l2.loop");
  EXPECT_FALSE(Super.checkpoint("pass:frustum"));
}

TEST(FaultInjectionTest, InertContextsNeverFire) {
  FaultContext Default;
  EXPECT_FALSE(Default.enabled());
  EXPECT_TRUE(Default.checkpoint("pass:frustum"));
  FaultSchedule Empty;
  FaultContext OverEmpty(&Empty, "job");
  EXPECT_FALSE(OverEmpty.enabled());
  EXPECT_TRUE(OverEmpty.checkpoint("pass:frustum"));
}

uint64_t counter(const MetricsRegistry::Snapshot &S, const std::string &N) {
  for (const auto &[Name, Value] : S.Counters)
    if (Name == N)
      return Value;
  return 0;
}

TEST(FaultInjectionTest, FiringEmitsTraceInstantAndCounters) {
  Expected<FaultSchedule> S = FaultSchedule::parse("pass:frustum:fail");
  ASSERT_TRUE(S);
  TraceCollector Collector;
  FaultContext Ctx(&*S, "job", &Collector.track("job"));
  MetricsRegistry::Snapshot Before = MetricsRegistry::global().snapshot();
  EXPECT_FALSE(Ctx.checkpoint("pass:frustum"));
  MetricsRegistry::Snapshot After = MetricsRegistry::global().snapshot();
  EXPECT_EQ(counter(After, "fault.injected"),
            counter(Before, "fault.injected") + 1);
  EXPECT_EQ(counter(After, "fault.injected.pass.frustum"),
            counter(Before, "fault.injected.pass.frustum") + 1);
  std::ostringstream OS;
  Collector.writeJson(OS);
  EXPECT_NE(OS.str().find("fault-injected"), std::string::npos);
}

TEST(FaultInjectionTest, ProcessScheduleInstallAndReset) {
  FaultSchedule::resetProcessForTesting();
  Status Bad = FaultSchedule::setProcess("nosuch:site:fail");
  EXPECT_FALSE(Bad);
  EXPECT_EQ(Bad.code(), ErrorCode::InvalidInput);

  ASSERT_TRUE(FaultSchedule::setProcess("pass:frustum:fail@2"));
  Expected<const FaultSchedule *> P = FaultSchedule::process();
  ASSERT_TRUE(P);
  ASSERT_NE(*P, nullptr);
  EXPECT_EQ((*P)->triggers().size(), 1u);

  // Reset forgets the installed schedule; with no SDSP_FAULT_SPEC in
  // the test environment, process() resolves to "none".
  FaultSchedule::resetProcessForTesting();
  if (!std::getenv("SDSP_FAULT_SPEC")) {
    Expected<const FaultSchedule *> None = FaultSchedule::process();
    ASSERT_TRUE(None);
    EXPECT_EQ(*None, nullptr);
  }
  FaultSchedule::resetProcessForTesting();
}

} // namespace
