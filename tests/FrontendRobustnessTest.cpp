//===- tests/FrontendRobustnessTest.cpp - Parser robustness ----------------===//
//
// Part of the SDSP project: a reproduction of Gao, Wong & Ning,
// "A Timed Petri-Net Model for Fine-Grain Loop Scheduling", PLDI 1991.
//
//===----------------------------------------------------------------------===//
//
// The frontend must never crash or hang on malformed input: it either
// produces a graph or diagnostics.  Deterministic fuzz-lite sweeps over
// random token soups and mutated kernels.
//
//===----------------------------------------------------------------------===//

#include "livermore/Livermore.h"
#include "loopir/Lowering.h"
#include "support/Random.h"

#include "gtest/gtest.h"

using namespace sdsp;

namespace {

TEST(FrontendRobustness, EmptyAndTrivialInputs) {
  for (const char *Src : {"", " ", "\n\n", "do", "doall", "do i",
                          "do i {", "do i { }", "doall i {}", "{", "}"}) {
    DiagnosticEngine Diags;
    std::optional<DataflowGraph> G = compileLoop(Src, Diags);
    // "do i { }" is structurally fine but empty; anything else errors.
    if (G)
      EXPECT_EQ(G->numNodes(), 0u) << Src;
    else
      EXPECT_TRUE(Diags.hasErrors()) << Src;
  }
}

TEST(FrontendRobustness, RandomTokenSoup) {
  const char *Pieces[] = {"do",  "doall", "init", "out", "if",  "then",
                          "else", "min",  "max",  "i",   "x",   "y",
                          "42",  "3.5",  "=",    "+",   "-",   "*",
                          "/",   "(",    ")",    "[",   "]",   "{",
                          "}",   ";",    ",",    "<",   "<=",  "=="};
  Rng R(20260706);
  for (int Trial = 0; Trial < 300; ++Trial) {
    std::string Src;
    size_t Len = static_cast<size_t>(R.range(1, 40));
    for (size_t I = 0; I < Len; ++I) {
      Src += Pieces[R.range(0, static_cast<int64_t>(std::size(Pieces)) - 1)];
      Src += " ";
    }
    DiagnosticEngine Diags;
    std::optional<DataflowGraph> G = compileLoop(Src, Diags);
    // No crash, and failure always comes with diagnostics.
    if (!G) {
      EXPECT_TRUE(Diags.hasErrors()) << Src;
    }
  }
}

TEST(FrontendRobustness, MutatedKernelsNeverCrash) {
  Rng R(77007);
  for (const LivermoreKernel &K : livermoreKernels()) {
    for (int Trial = 0; Trial < 40; ++Trial) {
      std::string Src = K.Source;
      // Flip, delete, or duplicate a few characters.
      for (int Edit = 0; Edit < 3; ++Edit) {
        if (Src.empty())
          break;
        size_t Pos = static_cast<size_t>(
            R.range(0, static_cast<int64_t>(Src.size()) - 1));
        switch (R.range(0, 2)) {
        case 0:
          Src[Pos] = static_cast<char>('!' + R.range(0, 90));
          break;
        case 1:
          Src.erase(Pos, 1);
          break;
        default:
          Src.insert(Pos, 1, Src[Pos]);
          break;
        }
      }
      DiagnosticEngine Diags;
      std::optional<DataflowGraph> G = compileLoop(Src, Diags);
      if (!G) {
        EXPECT_TRUE(Diags.hasErrors());
      }
    }
  }
}

TEST(FrontendRobustness, DeepExpressionNesting) {
  std::string Expr = "X[i]";
  for (int I = 0; I < 200; ++I)
    Expr = "(" + Expr + " + 1)";
  DiagnosticEngine Diags;
  std::optional<DataflowGraph> G =
      compileLoop("doall i { A = " + Expr + "; out A; }", Diags);
  ASSERT_TRUE(G.has_value());
  EXPECT_GT(G->numNodes(), 200u);
}

TEST(FrontendRobustness, DiagnosticsCarryLocations) {
  DiagnosticEngine Diags;
  compileLoop("do i {\n  A = ;\n}", Diags);
  ASSERT_TRUE(Diags.hasErrors());
  EXPECT_EQ(Diags.diagnostics()[0].Loc.Line, 2u);
}

TEST(FrontendRobustness, LongIdentifiersAndNumbers) {
  std::string Long(2000, 'a');
  DiagnosticEngine Diags;
  std::optional<DataflowGraph> G = compileLoop(
      "doall i { " + Long + " = X[i] + 1e308; out " + Long + "; }",
      Diags);
  ASSERT_TRUE(G.has_value());
}

} // namespace
