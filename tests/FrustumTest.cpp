//===- tests/FrustumTest.cpp - Cyclic frustum detection tests --------------===//
//
// Part of the SDSP project: a reproduction of Gao, Wong & Ning,
// "A Timed Petri-Net Model for Fine-Grain Loop Scheduling", PLDI 1991.
//
//===----------------------------------------------------------------------===//

#include "core/Frustum.h"

#include "TestUtil.h"
#include "core/RateAnalysis.h"
#include "core/SdspPn.h"
#include "gtest/gtest.h"

using namespace sdsp;
using namespace sdsp::testutil;

namespace {

TEST(Frustum, RingReachesSteadyStateImmediately) {
  // A 1-token ring is periodic from the start: frustum length n, each
  // transition once.
  PetriNet Ring = buildRing(4, 1);
  auto F = detectFrustum(Ring);
  ASSERT_TRUE(F.has_value());
  EXPECT_EQ(F->length(), 4u);
  for (TransitionId T : Ring.transitionIds())
    EXPECT_EQ(F->transitionCount(T), 1u);
  EXPECT_EQ(F->computationRate(TransitionId(0u)), Rational(1, 4));
}

TEST(Frustum, L1MatchesOptimalRate) {
  // L1 under one-token-per-arc static dataflow runs at the pair-cycle
  // rate 1/2 (Figure 1's schedule repeats every 2 cycles).
  SdspPn Pn = buildSdspPn(Sdsp::standard(buildL1()));
  auto F = detectFrustum(Pn.Net);
  ASSERT_TRUE(F.has_value());
  RateReport Rate = analyzeRate(Pn);
  EXPECT_EQ(Rate.OptimalRate, Rational(1, 2));
  for (TransitionId T : Pn.Net.transitionIds())
    EXPECT_EQ(F->computationRate(T), Rate.OptimalRate);
  EXPECT_TRUE(F->hasUniformCount(Pn.Net.transitionIds()));
  // Paper Table 1 claim: the repeated state appears within 2n steps.
  EXPECT_LE(F->RepeatTime, boundBdSdspPn(Pn.Net.numTransitions()));
}

TEST(Frustum, L2MatchesCriticalCycleRate) {
  // Figure 2 / Section 6: L2's critical cycle is C-D-E-C with rate 1/3.
  SdspPn Pn = buildSdspPn(Sdsp::standard(buildL2Direct()));
  RateReport Rate = analyzeRate(Pn);
  EXPECT_EQ(Rate.OptimalRate, Rational(1, 3));
  auto F = detectFrustum(Pn.Net);
  ASSERT_TRUE(F.has_value());
  for (TransitionId T : Pn.Net.transitionIds())
    EXPECT_EQ(F->computationRate(T), Rational(1, 3));
  EXPECT_LE(F->RepeatTime, boundBdSdspPn(Pn.Net.numTransitions()));
}

TEST(Frustum, TraceCoversPrefixAndCounts) {
  SdspPn Pn = buildSdspPn(Sdsp::standard(buildL2Direct()));
  auto F = detectFrustum(Pn.Net);
  ASSERT_TRUE(F.has_value());
  EXPECT_EQ(F->Trace.size(), F->RepeatTime);
  // Counts only cover [StartTime, RepeatTime).
  std::vector<uint32_t> Recount(Pn.Net.numTransitions(), 0);
  for (const StepRecord &Rec : F->Trace)
    if (Rec.Time >= F->StartTime)
      for (TransitionId T : Rec.Fired)
        ++Recount[T.index()];
  EXPECT_EQ(Recount, F->FiringCounts);
}

TEST(Frustum, DeadNetReturnsNothing) {
  PetriNet Net;
  TransitionId A = Net.addTransition("a");
  PlaceId P = Net.addPlace("p", 0);
  Net.addArc(P, A);
  Net.addArc(A, P);
  EXPECT_FALSE(detectFrustum(Net).has_value());
}

TEST(Frustum, SingleTransitionNoPlaces) {
  // Livermore loop 12's shape: one operation, no interior arcs; the
  // non-reentrancy self-loop caps the rate at 1.
  PetriNet Net;
  Net.addTransition("sub");
  auto F = detectFrustum(Net);
  ASSERT_TRUE(F.has_value());
  EXPECT_EQ(F->computationRate(TransitionId(0u)), Rational(1));
}

TEST(Frustum, ExecTimesStretchThePeriod) {
  // 2-ring with times 3 and 4: cycle time 7 with one token.
  PetriNet Net;
  TransitionId A = Net.addTransition("a", 3);
  TransitionId B = Net.addTransition("b", 4);
  PlaceId P1 = Net.addPlace("p1", 1);
  PlaceId P2 = Net.addPlace("p2", 0);
  Net.addArc(A, P1);
  Net.addArc(P1, B);
  Net.addArc(B, P2);
  Net.addArc(P2, A);
  auto F = detectFrustum(Net);
  ASSERT_TRUE(F.has_value());
  EXPECT_EQ(F->computationRate(A), Rational(1, 7));
  EXPECT_EQ(F->computationRate(B), Rational(1, 7));
}

TEST(Frustum, TimeoutReturnsNothing) {
  SdspPn Pn = buildSdspPn(Sdsp::standard(buildL2Direct()));
  EXPECT_FALSE(detectFrustum(Pn.Net, nullptr, /*MaxSteps=*/1).has_value());
}

TEST(Frustum, BudgetResolveBoundaries) {
  // Defaulted budget: max(1024, n^3), saturating at Cap so the search
  // loop's step arithmetic can never overflow.
  EXPECT_EQ(FrustumBudget{}.resolve(0), 1024u);
  EXPECT_EQ(FrustumBudget{}.resolve(1), 1024u);
  EXPECT_EQ(FrustumBudget{}.resolve(10), 1024u);
  EXPECT_EQ(FrustumBudget{}.resolve(11), 1331u);
  EXPECT_EQ(FrustumBudget{}.resolve(2048), 2048ull * 2048 * 2048);
  // n = 2^22: n^3 = 2^66 overflows 64 bits; must saturate at Cap, not
  // wrap around to a tiny budget.
  EXPECT_EQ(FrustumBudget{}.resolve(size_t(1) << 22), FrustumBudget::Cap);
  // Explicit budgets pass through unclamped below Cap (no 1024 floor)
  // and clamp to Cap above it.
  EXPECT_EQ(FrustumBudget::steps(1).resolve(1 << 22), 1u);
  EXPECT_EQ(FrustumBudget::steps(FrustumBudget::Cap - 1).resolve(3),
            FrustumBudget::Cap - 1);
  EXPECT_EQ(FrustumBudget::steps(~TimeStep(0)).resolve(3),
            FrustumBudget::Cap);
}

TEST(Frustum, EarliestFiringAchievesOptimalRateOnRandomNets) {
  // Theorem 4.1.1's payoff, checked empirically: the frustum rate
  // equals 1/alpha* on random SDSP-PNs.
  Rng R(99);
  for (int Trial = 0; Trial < 15; ++Trial) {
    DataflowGraph G = buildRandomLoopGraph(R, 3 + Trial % 7, 20);
    SdspPn Pn = buildSdspPn(Sdsp::standard(G));
    RateReport Rate = analyzeRate(Pn);
    auto F = detectFrustum(Pn.Net);
    ASSERT_TRUE(F.has_value()) << "trial " << Trial;
    for (TransitionId T : Pn.Net.transitionIds())
      EXPECT_EQ(F->computationRate(T), Rate.OptimalRate)
          << "trial " << Trial;
  }
}

} // namespace
