//===- tests/FrustumTest.cpp - Cyclic frustum detection tests --------------===//
//
// Part of the SDSP project: a reproduction of Gao, Wong & Ning,
// "A Timed Petri-Net Model for Fine-Grain Loop Scheduling", PLDI 1991.
//
//===----------------------------------------------------------------------===//

#include "core/Frustum.h"

#include "TestUtil.h"
#include "core/RateAnalysis.h"
#include "core/SdspPn.h"
#include "support/FaultInjection.h"
#include "gtest/gtest.h"

#include <chrono>

using namespace sdsp;
using namespace sdsp::testutil;

namespace {

TEST(Frustum, RingReachesSteadyStateImmediately) {
  // A 1-token ring is periodic from the start: frustum length n, each
  // transition once.
  PetriNet Ring = buildRing(4, 1);
  auto F = detectFrustum(Ring);
  ASSERT_TRUE(F.has_value());
  EXPECT_EQ(F->length(), 4u);
  for (TransitionId T : Ring.transitionIds())
    EXPECT_EQ(F->transitionCount(T), 1u);
  EXPECT_EQ(F->computationRate(TransitionId(0u)), Rational(1, 4));
}

TEST(Frustum, L1MatchesOptimalRate) {
  // L1 under one-token-per-arc static dataflow runs at the pair-cycle
  // rate 1/2 (Figure 1's schedule repeats every 2 cycles).
  SdspPn Pn = buildSdspPn(Sdsp::standard(buildL1()));
  auto F = detectFrustum(Pn.Net);
  ASSERT_TRUE(F.has_value());
  RateReport Rate = analyzeRate(Pn);
  EXPECT_EQ(Rate.OptimalRate, Rational(1, 2));
  for (TransitionId T : Pn.Net.transitionIds())
    EXPECT_EQ(F->computationRate(T), Rate.OptimalRate);
  EXPECT_TRUE(F->hasUniformCount(Pn.Net.transitionIds()));
  // Paper Table 1 claim: the repeated state appears within 2n steps.
  EXPECT_LE(F->RepeatTime, boundBdSdspPn(Pn.Net.numTransitions()));
}

TEST(Frustum, L2MatchesCriticalCycleRate) {
  // Figure 2 / Section 6: L2's critical cycle is C-D-E-C with rate 1/3.
  SdspPn Pn = buildSdspPn(Sdsp::standard(buildL2Direct()));
  RateReport Rate = analyzeRate(Pn);
  EXPECT_EQ(Rate.OptimalRate, Rational(1, 3));
  auto F = detectFrustum(Pn.Net);
  ASSERT_TRUE(F.has_value());
  for (TransitionId T : Pn.Net.transitionIds())
    EXPECT_EQ(F->computationRate(T), Rational(1, 3));
  EXPECT_LE(F->RepeatTime, boundBdSdspPn(Pn.Net.numTransitions()));
}

TEST(Frustum, TraceCoversPrefixAndCounts) {
  SdspPn Pn = buildSdspPn(Sdsp::standard(buildL2Direct()));
  auto F = detectFrustum(Pn.Net);
  ASSERT_TRUE(F.has_value());
  EXPECT_EQ(F->Trace.size(), F->RepeatTime);
  // Counts only cover [StartTime, RepeatTime).
  std::vector<uint32_t> Recount(Pn.Net.numTransitions(), 0);
  for (const StepRecord &Rec : F->Trace)
    if (Rec.Time >= F->StartTime)
      for (TransitionId T : Rec.Fired)
        ++Recount[T.index()];
  EXPECT_EQ(Recount, F->FiringCounts);
}

TEST(Frustum, DeadNetReturnsNothing) {
  PetriNet Net;
  TransitionId A = Net.addTransition("a");
  PlaceId P = Net.addPlace("p", 0);
  Net.addArc(P, A);
  Net.addArc(A, P);
  EXPECT_FALSE(detectFrustum(Net).has_value());
}

TEST(Frustum, SingleTransitionNoPlaces) {
  // Livermore loop 12's shape: one operation, no interior arcs; the
  // non-reentrancy self-loop caps the rate at 1.
  PetriNet Net;
  Net.addTransition("sub");
  auto F = detectFrustum(Net);
  ASSERT_TRUE(F.has_value());
  EXPECT_EQ(F->computationRate(TransitionId(0u)), Rational(1));
}

TEST(Frustum, ExecTimesStretchThePeriod) {
  // 2-ring with times 3 and 4: cycle time 7 with one token.
  PetriNet Net;
  TransitionId A = Net.addTransition("a", 3);
  TransitionId B = Net.addTransition("b", 4);
  PlaceId P1 = Net.addPlace("p1", 1);
  PlaceId P2 = Net.addPlace("p2", 0);
  Net.addArc(A, P1);
  Net.addArc(P1, B);
  Net.addArc(B, P2);
  Net.addArc(P2, A);
  auto F = detectFrustum(Net);
  ASSERT_TRUE(F.has_value());
  EXPECT_EQ(F->computationRate(A), Rational(1, 7));
  EXPECT_EQ(F->computationRate(B), Rational(1, 7));
}

TEST(Frustum, TimeoutReturnsNothing) {
  SdspPn Pn = buildSdspPn(Sdsp::standard(buildL2Direct()));
  EXPECT_FALSE(detectFrustum(Pn.Net, nullptr, /*MaxSteps=*/1).has_value());
}

TEST(Frustum, BudgetResolveBoundaries) {
  // Defaulted budget: max(1024, n^3), saturating at Cap so the search
  // loop's step arithmetic can never overflow.
  EXPECT_EQ(FrustumBudget{}.resolve(0), 1024u);
  EXPECT_EQ(FrustumBudget{}.resolve(1), 1024u);
  EXPECT_EQ(FrustumBudget{}.resolve(10), 1024u);
  EXPECT_EQ(FrustumBudget{}.resolve(11), 1331u);
  EXPECT_EQ(FrustumBudget{}.resolve(2048), 2048ull * 2048 * 2048);
  // n = 2^22: n^3 = 2^66 overflows 64 bits; must saturate at Cap, not
  // wrap around to a tiny budget.
  EXPECT_EQ(FrustumBudget{}.resolve(size_t(1) << 22), FrustumBudget::Cap);
  // Explicit budgets pass through unclamped below Cap (no 1024 floor)
  // and clamp to Cap above it.
  EXPECT_EQ(FrustumBudget::steps(1).resolve(1 << 22), 1u);
  EXPECT_EQ(FrustumBudget::steps(FrustumBudget::Cap - 1).resolve(3),
            FrustumBudget::Cap - 1);
  EXPECT_EQ(FrustumBudget::steps(~TimeStep(0)).resolve(3),
            FrustumBudget::Cap);
}

//===----------------------------------------------------------------------===//
// Cancellation, deadlines, and fault sites (docs/ROBUSTNESS.md).  All
// deadline cases use pre-expired (0 ms) or manually-cancelled sources —
// nothing here races the wall clock.
//===----------------------------------------------------------------------===//

TEST(Frustum, CancelledTokenStopsTheSearchWithPartialTrace) {
  SdspPn Pn = buildSdspPn(Sdsp::standard(buildL2Direct()));
  CancelSource Src;
  Src.cancel();
  Expected<FrustumInfo> F =
      detectFrustumChecked(Pn.Net, nullptr, {}, Src.token());
  ASSERT_FALSE(F);
  EXPECT_EQ(F.status().code(), ErrorCode::Cancelled);
  EXPECT_EQ(F.status().stage(), "frustum");
  // The same partial-trace context BudgetExceeded carries.
  EXPECT_NE(F.status().str().find("simulated to t="), std::string::npos);
}

TEST(Frustum, ExpiredDeadlineReportsDeadlineExceeded) {
  SdspPn Pn = buildSdspPn(Sdsp::standard(buildL2Direct()));
  CancelToken Expired =
      CancelSource::withDeadline(std::chrono::milliseconds(0)).token();
  Expected<FrustumInfo> F =
      detectFrustumChecked(Pn.Net, nullptr, {}, Expired);
  ASSERT_FALSE(F);
  EXPECT_EQ(F.status().code(), ErrorCode::DeadlineExceeded);
  EXPECT_NE(F.status().str().find("deadline exceeded"), std::string::npos);
}

TEST(Frustum, LiveTokenDoesNotPerturbTheSearch) {
  SdspPn Pn = buildSdspPn(Sdsp::standard(buildL2Direct()));
  auto Plain = detectFrustumChecked(Pn.Net);
  CancelSource Src; // Never cancelled.
  auto Polled = detectFrustumChecked(Pn.Net, nullptr, {}, Src.token());
  ASSERT_TRUE(Plain);
  ASSERT_TRUE(Polled);
  EXPECT_EQ(Polled->StartTime, Plain->StartTime);
  EXPECT_EQ(Polled->RepeatTime, Plain->RepeatTime);
  EXPECT_EQ(Polled->FiringCounts, Plain->FiringCounts);
}

/// Cancels its CancelSource on the Nth prepare, giving the boundary
/// test a deterministic in-search cancellation instant (the wall clock
/// never decides).  Keeps index order and an empty fingerprint, so the
/// search itself is the default policy's.
class CancelOnNthPrepare : public FiringPolicy {
public:
  CancelOnNthPrepare(CancelSource &Src, unsigned N) : Src(Src), Left(N) {}
  void reset() override {}
  void orderCandidates(const PetriNet &, const Marking &,
                       std::vector<TransitionId> &) override {
    if (Left && --Left == 0)
      Src.cancel();
  }
  void noteFired(TransitionId) override {}
  std::vector<uint32_t> stateFingerprint() const override { return {}; }

private:
  CancelSource &Src;
  unsigned Left;
};

TEST(Frustum, BudgetWinsAtTheBudgetInstantEvenWhenCancelled) {
  // The ordering contract: within one sampled instant the budget check
  // precedes the cancellation poll.  The policy cancels during instant
  // 1, so instant 2 is the first that can report either failure: with
  // a budget of 1 exhausted there, BudgetExceeded wins; with one more
  // step of budget the poll reports the cancellation instead.
  PetriNet Ring = buildRing(4, 1);
  {
    CancelSource Src;
    CancelOnNthPrepare Policy(Src, 2);
    Expected<FrustumInfo> F = detectFrustumChecked(
        Ring, &Policy, FrustumBudget::steps(1), Src.token());
    ASSERT_FALSE(F);
    EXPECT_EQ(F.status().code(), ErrorCode::BudgetExceeded);
  }
  {
    CancelSource Src;
    CancelOnNthPrepare Policy(Src, 2);
    Expected<FrustumInfo> F = detectFrustumChecked(
        Ring, &Policy, FrustumBudget::steps(2), Src.token());
    ASSERT_FALSE(F);
    EXPECT_EQ(F.status().code(), ErrorCode::Cancelled);
  }
}

TEST(Frustum, DeadlineWinsWhileBudgetRemains) {
  // Budget far beyond the net's repeat horizon never trips; the expired
  // deadline is what stops the search.
  SdspPn Pn = buildSdspPn(Sdsp::standard(buildL2Direct()));
  CancelToken Expired =
      CancelSource::withDeadline(std::chrono::milliseconds(0)).token();
  Expected<FrustumInfo> F = detectFrustumChecked(
      Pn.Net, nullptr, FrustumBudget::steps(1u << 20), Expired);
  ASSERT_FALSE(F);
  EXPECT_EQ(F.status().code(), ErrorCode::DeadlineExceeded);
}

TEST(Frustum, ReferenceEngineFailsIdentically) {
  // Both engines share the per-instant cadence and ordering, so the
  // golden-equivalence property extends to cancellation failures.
  SdspPn Pn = buildSdspPn(Sdsp::standard(buildL2Direct()));
  CancelSource Src;
  Src.cancel();
  Expected<FrustumInfo> Fast =
      detectFrustumChecked(Pn.Net, nullptr, {}, Src.token());
  Expected<FrustumInfo> Ref =
      detectFrustumReference(Pn.Net, nullptr, {}, Src.token());
  ASSERT_FALSE(Fast);
  ASSERT_FALSE(Ref);
  EXPECT_EQ(Fast.status().code(), Ref.status().code());
  EXPECT_EQ(Fast.status().str(), Ref.status().str());
}

TEST(Frustum, StepFaultSiteFiresAtTheExactArrival) {
  SdspPn Pn = buildSdspPn(Sdsp::standard(buildL2Direct()));
  Expected<FaultSchedule> Sched = FaultSchedule::parse("frustum:step:fail@5");
  ASSERT_TRUE(Sched);
  FaultContext Ctx(&*Sched, "test");
  Expected<FrustumInfo> F =
      detectFrustumChecked(Pn.Net, nullptr, {}, {}, &Ctx);
  ASSERT_FALSE(F);
  EXPECT_EQ(F.status().code(), ErrorCode::TransientFault);
  EXPECT_EQ(Ctx.arrivals("frustum:step"), 5u);
  EXPECT_EQ(Ctx.fired(), 1u);

  // A context whose trigger already fired lets the search complete;
  // the fault-free result is unchanged.
  Expected<FrustumInfo> Retry =
      detectFrustumChecked(Pn.Net, nullptr, {}, {}, &Ctx);
  ASSERT_TRUE(Retry) << Retry.status().str();
  auto Plain = detectFrustumChecked(Pn.Net);
  ASSERT_TRUE(Plain);
  EXPECT_EQ(Retry->RepeatTime, Plain->RepeatTime);
  EXPECT_EQ(Ctx.fired(), 1u);
}

TEST(Frustum, EarliestFiringAchievesOptimalRateOnRandomNets) {
  // Theorem 4.1.1's payoff, checked empirically: the frustum rate
  // equals 1/alpha* on random SDSP-PNs.
  Rng R(99);
  for (int Trial = 0; Trial < 15; ++Trial) {
    DataflowGraph G = buildRandomLoopGraph(R, 3 + Trial % 7, 20);
    SdspPn Pn = buildSdspPn(Sdsp::standard(G));
    RateReport Rate = analyzeRate(Pn);
    auto F = detectFrustum(Pn.Net);
    ASSERT_TRUE(F.has_value()) << "trial " << Trial;
    for (TransitionId T : Pn.Net.transitionIds())
      EXPECT_EQ(F->computationRate(T), Rate.OptimalRate)
          << "trial " << Trial;
  }
}

} // namespace
