//===- tests/GoldenEquivalenceTest.cpp - Fast engine vs reference oracle ---===//
//
// Part of the SDSP project: a reproduction of Gao, Wong & Ning,
// "A Timed Petri-Net Model for Fine-Grain Loop Scheduling", PLDI 1991.
//
//===----------------------------------------------------------------------===//
//
// The fast-path simulation engine (incremental enabledness, bit-packed
// markings, event-driven leaping, packed-state tables) must be
// behaviorally invisible: detectFrustumChecked and the retained naive
// detectFrustumReference have to return byte-identical results — same
// frustum boundaries, same repeated state, same per-step trace, same
// firing counts, and the same diagnostics on failure.  This suite pins
// that equivalence on the six Livermore loops of Section 5 (plain
// SDSP-PN and SCP machine variants under FIFO and LIFO policies) and on
// a 200-net fuzz corpus covering unit and non-unit execution times,
// multi-token (non-safe) markings, and budget exhaustion.
//
//===----------------------------------------------------------------------===//

#include "core/Frustum.h"

#include "TestUtil.h"
#include "core/ScpModel.h"
#include "core/Sdsp.h"
#include "core/SdspPn.h"
#include "livermore/Livermore.h"
#include "loopir/Lowering.h"
#include "gtest/gtest.h"

using namespace sdsp;
using namespace sdsp::testutil;

namespace {

/// Asserts the optimized and reference detectors agree byte for byte on
/// \p Net: identical FrustumInfo on success, identical status code and
/// message on failure.  Policies are per-engine instances (a policy is
/// stateful), expected to be configured identically.
void expectGolden(const PetriNet &Net, FiringPolicy *OptPolicy,
                  FiringPolicy *RefPolicy, FrustumBudget Budget,
                  const std::string &Label) {
  Expected<FrustumInfo> Opt = detectFrustumChecked(Net, OptPolicy, Budget);
  Expected<FrustumInfo> Ref = detectFrustumReference(Net, RefPolicy, Budget);
  ASSERT_EQ(Opt.ok(), Ref.ok()) << Label;
  if (!Opt) {
    EXPECT_EQ(Opt.status().code(), Ref.status().code()) << Label;
    EXPECT_EQ(Opt.status().message(), Ref.status().message()) << Label;
    return;
  }
  EXPECT_EQ(Opt->StartTime, Ref->StartTime) << Label;
  EXPECT_EQ(Opt->RepeatTime, Ref->RepeatTime) << Label;
  EXPECT_TRUE(Opt->State == Ref->State) << Label;
  EXPECT_EQ(Opt->FiringCounts, Ref->FiringCounts) << Label;
  ASSERT_EQ(Opt->Trace.size(), Ref->Trace.size()) << Label;
  for (size_t I = 0; I < Opt->Trace.size(); ++I) {
    const StepRecord &A = Opt->Trace[I];
    const StepRecord &B = Ref->Trace[I];
    EXPECT_EQ(A.Time, B.Time) << Label << " step " << I;
    EXPECT_EQ(A.Completed, B.Completed) << Label << " step " << I;
    EXPECT_EQ(A.Fired, B.Fired) << Label << " step " << I;
  }
}

void expectGolden(const PetriNet &Net, const std::string &Label) {
  expectGolden(Net, nullptr, nullptr, FrustumBudget{}, Label);
}

/// The six kernels of Section 5, compiled to an SDSP-PN.
SdspPn compileLivermore(const std::string &Id) {
  const LivermoreKernel *K = findKernel(Id);
  EXPECT_NE(K, nullptr) << Id;
  DiagnosticEngine Diags;
  auto G = compileLoop(K->Source, Diags);
  EXPECT_TRUE(G.has_value()) << Id;
  return buildSdspPn(Sdsp::standard(std::move(*G)));
}

const char *LivermoreIds[] = {"loop1", "loop7",  "loop12",
                              "loop3", "loop5", "loop9lcd"};

TEST(GoldenEquivalence, LivermoreSdspPn) {
  for (const char *Id : LivermoreIds) {
    SdspPn Pn = compileLivermore(Id);
    expectGolden(Pn.Net, Id);
  }
}

TEST(GoldenEquivalence, LivermoreScpFifo) {
  for (const char *Id : LivermoreIds) {
    SdspPn Pn = compileLivermore(Id);
    ScpPn Scp = buildScpPn(Pn, /*PipelineDepth=*/2);
    auto OptPolicy = Scp.makeFifoPolicy();
    auto RefPolicy = Scp.makeFifoPolicy();
    expectGolden(Scp.Net, OptPolicy.get(), RefPolicy.get(), FrustumBudget{},
                 std::string(Id) + "/scp-fifo");
  }
}

TEST(GoldenEquivalence, LivermoreScpLifo) {
  for (const char *Id : LivermoreIds) {
    SdspPn Pn = compileLivermore(Id);
    ScpPn Scp = buildScpPn(Pn, /*PipelineDepth=*/2);
    auto OptPolicy = Scp.makeLifoPolicy();
    auto RefPolicy = Scp.makeLifoPolicy();
    expectGolden(Scp.Net, OptPolicy.get(), RefPolicy.get(), FrustumBudget{},
                 std::string(Id) + "/scp-lifo");
  }
}

TEST(GoldenEquivalence, FuzzMarkedGraphs) {
  // Mixed execution times (1-3) exercise the non-unit drain, the finish
  // ring, and event-driven leaping; chords add shared structure.
  Rng R(0x60'1d'e4'01ull);
  for (int Case = 0; Case < 120; ++Case) {
    size_t N = static_cast<size_t>(R.range(3, 12));
    size_t Chords = static_cast<size_t>(R.range(0, 4));
    PetriNet Net = buildRandomMarkedGraph(R, N, Chords);
    expectGolden(Net, "fuzz-mg-" + std::to_string(Case));
  }
}

TEST(GoldenEquivalence, FuzzUnitRings) {
  // Single-token unit rings run the bit-marking pure-marked-graph fast
  // path end to end.
  for (int Case = 0; Case < 40; ++Case) {
    PetriNet Net = buildRing(static_cast<size_t>(3 + Case % 9), 1);
    expectGolden(Net, "fuzz-ring1-" + std::to_string(Case));
  }
}

TEST(GoldenEquivalence, FuzzMultiTokenRings) {
  // Two or more tokens on one place break safeness: the engine must
  // abandon bit marking for exact counts and still match the oracle.
  Rng R(0xbeef'cafeull);
  for (int Case = 0; Case < 40; ++Case) {
    size_t N = static_cast<size_t>(R.range(2, 8));
    uint32_t Tokens = static_cast<uint32_t>(R.range(2, 4));
    PetriNet Net = buildRing(N, Tokens);
    expectGolden(Net, "fuzz-ringk-" + std::to_string(Case));
  }
}

TEST(GoldenEquivalence, BudgetDiagnosticsMatch) {
  // Exhausted budgets must produce the same BudgetExceeded message
  // (steps simulated, firings observed) from both detectors.
  Rng R(0x5eedull);
  for (int Case = 0; Case < 6; ++Case) {
    PetriNet Net = buildRandomMarkedGraph(R, 6, 2);
    expectGolden(Net, nullptr, nullptr, FrustumBudget::steps(3),
                 "budget-" + std::to_string(Case));
  }
}

} // namespace
