//===- tests/GoldenResultsTest.cpp - Pinned per-kernel results -------------===//
//
// Part of the SDSP project: a reproduction of Gao, Wong & Ning,
// "A Timed Petri-Net Model for Fine-Grain Loop Scheduling", PLDI 1991.
//
//===----------------------------------------------------------------------===//
//
// Regression pins for the headline numbers of every bundled kernel:
// loop body size n, storage locations, kernel length p, iterations per
// kernel k, and the computation rate.  These are the values
// EXPERIMENTS.md reports; a behavior change anywhere in the pipeline
// (frontend, SDSP construction, engine, frustum, schedule) shows up
// here first with a precise diff.
//
//===----------------------------------------------------------------------===//

#include "core/Frustum.h"
#include "core/ScheduleDerivation.h"
#include "core/SdspPn.h"
#include "livermore/Livermore.h"
#include "loopir/Lowering.h"
#include "gtest/gtest.h"

using namespace sdsp;

namespace {

struct Golden {
  const char *Id;
  size_t N;
  uint64_t Storage;
  TimeStep KernelLength;
  uint32_t IterationsPerKernel;
  const char *Rate;
};

/// The deterministic reference values (also quoted in EXPERIMENTS.md).
const Golden Pins[] = {
    {"l1", 5, 5, 2, 1, "1/2"},      {"l2", 5, 6, 3, 1, "1/3"},
    {"loop1", 5, 4, 2, 1, "1/2"},   {"loop7", 16, 15, 2, 1, "1/2"},
    {"loop12", 1, 0, 1, 1, "1"},    {"loop3", 2, 2, 2, 1, "1/2"},
    {"loop5", 2, 2, 2, 1, "1/2"},   {"loop9", 17, 16, 2, 1, "1/2"},
    {"loop9lcd", 17, 17, 2, 1, "1/2"},
};

class GoldenResults : public ::testing::TestWithParam<Golden> {};

TEST_P(GoldenResults, PipelineNumbersAreStable) {
  const Golden &Pin = GetParam();
  const LivermoreKernel *K = findKernel(Pin.Id);
  ASSERT_NE(K, nullptr) << Pin.Id;

  DiagnosticEngine Diags;
  auto G = compileLoop(K->Source, Diags);
  ASSERT_TRUE(G.has_value()) << Pin.Id;
  Sdsp S = Sdsp::standard(*G);
  SdspPn Pn = buildSdspPn(S);
  EXPECT_EQ(Pn.Net.numTransitions(), Pin.N) << Pin.Id;
  EXPECT_EQ(S.storageLocations(), Pin.Storage) << Pin.Id;

  auto F = detectFrustum(Pn.Net);
  ASSERT_TRUE(F.has_value()) << Pin.Id;
  SoftwarePipelineSchedule Sched = deriveSchedule(Pn, *F);
  EXPECT_EQ(Sched.kernelLength(), Pin.KernelLength) << Pin.Id;
  EXPECT_EQ(Sched.iterationsPerKernel(), Pin.IterationsPerKernel)
      << Pin.Id;
  EXPECT_EQ(Sched.rate().str(), Pin.Rate) << Pin.Id;
}

INSTANTIATE_TEST_SUITE_P(AllKernels, GoldenResults,
                         ::testing::ValuesIn(Pins),
                         [](const ::testing::TestParamInfo<Golden> &I) {
                           return std::string(I.param.Id);
                         });

} // namespace
