//===- tests/HowardFuzzTest.cpp - Howard vs enumeration golden fuzz --------===//
//
// Part of the SDSP project: a reproduction of Gao, Wong & Ning,
// "A Timed Petri-Net Model for Fine-Grain Loop Scheduling", PLDI 1991.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Golden fuzz suite for Howard's policy iteration: on hundreds of
/// random live safe marked graphs (non-unit execution times, random
/// chords, so multi-critical-cycle ties are common), the Howard result
/// must agree exactly — cycle time, rate, witness ratio, and the full
/// critical-transition set — with Johnson-cycle enumeration and with
/// the Lawler parametric search.  Enumeration is the ground-truth
/// oracle the `--rate-engine=enumerate` escape hatch exposes.
///
//===----------------------------------------------------------------------===//

#include "petri/CycleRatio.h"

#include "TestUtil.h"
#include "gtest/gtest.h"

#include <algorithm>
#include <vector>

using namespace sdsp;
using namespace sdsp::testutil;

namespace {

std::vector<TransitionId> sorted(std::vector<TransitionId> V) {
  std::sort(V.begin(), V.end(),
            [](TransitionId A, TransitionId B) { return A.index() < B.index(); });
  return V;
}

/// Checks one graph three ways and returns the enumeration's critical
/// cycle count (to assert suite-level coverage of the tie regime).
size_t checkOneGraph(const PetriNet &Net, uint64_t Seed) {
  SCOPED_TRACE("seed " + std::to_string(Seed));
  EXPECT_TRUE(isLiveMarkedGraph(Net));
  EXPECT_TRUE(isSafeMarkedGraph(Net));
  MarkedGraphView View(Net);

  std::optional<CriticalCycleInfo> Enum = criticalCycleByEnumeration(View);
  uint64_t Iterations = 0;
  std::optional<CriticalCycleInfo> How = maxCycleRatioHoward(View, &Iterations);
  std::optional<CriticalCycleInfo> Par = criticalCycleByParametricSearch(View);

  EXPECT_TRUE(Enum.has_value());
  EXPECT_TRUE(How.has_value());
  EXPECT_TRUE(Par.has_value());
  if (!Enum || !How || !Par)
    return 0;

  EXPECT_EQ(How->CycleTime, Enum->CycleTime);
  EXPECT_EQ(Par->CycleTime, Enum->CycleTime);
  EXPECT_EQ(How->ComputationRate, Enum->ComputationRate);

  // The witness must itself attain alpha*.
  EXPECT_GT(How->Witness.TokenSum, 0u);
  if (How->Witness.TokenSum == 0)
    return 0;
  EXPECT_EQ(Rational(static_cast<int64_t>(How->Witness.ValueSum),
                     static_cast<int64_t>(How->Witness.TokenSum)),
            Enum->CycleTime);

  // Critical-transition sets: Howard's tight-subgraph extraction must
  // reproduce the enumeration's exact set (the paper's Section 4.2
  // bound applies precisely to these transitions).
  EXPECT_EQ(sorted(How->CriticalTransitions),
            sorted(Enum->CriticalTransitions));

  // Howard leaves the cycle count unset; enumeration fills it.
  EXPECT_EQ(How->NumCriticalCycles, 0u);
  EXPECT_GE(Enum->NumCriticalCycles, 1u);
  EXPECT_GE(Iterations, 1u);
  return Enum->NumCriticalCycles;
}

TEST(HowardFuzz, AgreesWithEnumerationOnRandomMarkedGraphs) {
  // >= 200 random live safe strongly connected marked graphs with
  // execution times in [1,3] and random chords.  Sizes stay small
  // enough for the exponential oracle while spanning the interesting
  // shapes (short rings up to ~30 transitions, dense chord sets).
  size_t GraphsWithTies = 0;
  size_t Checked = 0;
  for (uint64_t Seed = 1; Seed <= 220; ++Seed) {
    Rng R(Seed * 0x9e3779b97f4a7c15ull);
    size_t N = static_cast<size_t>(R.range(3, 30));
    size_t Chords = static_cast<size_t>(R.range(0, 8));
    PetriNet Net = buildRandomMarkedGraph(R, N, Chords);
    size_t NumCritical = checkOneGraph(Net, Seed);
    if (NumCritical > 1)
      ++GraphsWithTies;
    ++Checked;
  }
  EXPECT_EQ(Checked, 220u);
  // The suite must actually exercise the multi-critical-cycle regime
  // (ack 2-cycles with equal tau sums tie constantly); if generation
  // drifts to unique-critical-cycle graphs only, this trips.
  EXPECT_GE(GraphsWithTies, 20u);
}

TEST(HowardFuzz, RingsAndKnownRatios) {
  // Deterministic spot checks with hand-computable alpha*.
  for (uint32_t Tokens = 1; Tokens <= 4; ++Tokens) {
    PetriNet Ring = buildRing(8, Tokens);
    MarkedGraphView View(Ring);
    auto Info = maxCycleRatioHoward(View);
    ASSERT_TRUE(Info.has_value());
    EXPECT_EQ(Info->CycleTime, Rational(8, Tokens));
    EXPECT_EQ(Info->CriticalTransitions.size(), 8u);
  }
}

TEST(HowardFuzz, AcyclicReturnsNothing) {
  PetriNet Net;
  TransitionId A = Net.addTransition("a");
  TransitionId B = Net.addTransition("b");
  PlaceId P = Net.addPlace("p", 1);
  Net.addArc(A, P);
  Net.addArc(P, B);
  MarkedGraphView View(Net);
  EXPECT_FALSE(maxCycleRatioHoward(View).has_value());
}

TEST(HowardFuzz, LargeGraphMatchesParametricSearch) {
  // Beyond the enumeration oracle's comfort zone, cross-validate the
  // two polynomial algorithms against each other on a bigger instance.
  Rng R(42);
  PetriNet Net = buildRandomMarkedGraph(R, 400, 120);
  MarkedGraphView View(Net);
  auto How = maxCycleRatioHoward(View);
  auto Par = criticalCycleByParametricSearch(View);
  ASSERT_TRUE(How.has_value());
  ASSERT_TRUE(Par.has_value());
  EXPECT_EQ(How->CycleTime, Par->CycleTime);
  EXPECT_EQ(sorted(How->CriticalTransitions),
            sorted(Par->CriticalTransitions));
}

} // namespace
