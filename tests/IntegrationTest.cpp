//===- tests/IntegrationTest.cpp - End-to-end pipeline tests ---------------===//
//
// Part of the SDSP project: a reproduction of Gao, Wong & Ning,
// "A Timed Petri-Net Model for Fine-Grain Loop Scheduling", PLDI 1991.
//
//===----------------------------------------------------------------------===//
//
// The full paper pipeline on every kernel: source -> dataflow graph ->
// SDSP -> SDSP-PN -> frustum -> schedule, validated at each stage, plus
// the SCP variant and the storage optimizer.
//
//===----------------------------------------------------------------------===//

#include "core/Frustum.h"
#include "core/RateAnalysis.h"
#include "core/ScheduleDerivation.h"
#include "core/ScpModel.h"
#include "core/SdspPn.h"
#include "core/StorageOptimizer.h"
#include "livermore/Livermore.h"
#include "loopir/Lowering.h"
#include "petri/MarkedGraph.h"
#include "gtest/gtest.h"

using namespace sdsp;

namespace {

class PipelineTest : public ::testing::TestWithParam<LivermoreKernel> {
protected:
  DataflowGraph compile() {
    DiagnosticEngine Diags;
    auto G = compileLoop(GetParam().Source, Diags);
    EXPECT_TRUE(G.has_value());
    return std::move(*G);
  }
};

TEST_P(PipelineTest, SdspPnPropertiesHold) {
  SdspPn Pn = buildSdspPn(Sdsp::standard(compile()));
  EXPECT_TRUE(isMarkedGraph(Pn.Net));
  EXPECT_TRUE(isLiveMarkedGraph(Pn.Net));
  EXPECT_TRUE(isSafeMarkedGraph(Pn.Net));
}

TEST_P(PipelineTest, FrustumWithinTwoN) {
  // The Table 1 observation, as a hard regression: the repeated
  // instantaneous state appears within 2n time steps.
  SdspPn Pn = buildSdspPn(Sdsp::standard(compile()));
  auto F = detectFrustum(Pn.Net);
  ASSERT_TRUE(F.has_value());
  EXPECT_LE(F->RepeatTime, boundBdSdspPn(Pn.Net.numTransitions()));
}

TEST_P(PipelineTest, ScheduleIsRateOptimalAndValid) {
  Sdsp S = Sdsp::standard(compile());
  SdspPn Pn = buildSdspPn(S);
  auto F = detectFrustum(Pn.Net);
  ASSERT_TRUE(F.has_value());
  SoftwarePipelineSchedule Sched = deriveSchedule(Pn, *F);
  EXPECT_EQ(Sched.rate(), analyzeRate(Pn).OptimalRate);
  std::string Error;
  EXPECT_TRUE(validateSchedule(S, Pn, Sched, 64, &Error)) << Error;
}

TEST_P(PipelineTest, ScpFrustumAndBounds) {
  SdspPn Pn = buildSdspPn(Sdsp::standard(compile()));
  ScpPn Scp = buildScpPn(Pn, /*PipelineDepth=*/8);
  auto Policy = Scp.makeFifoPolicy();
  auto F = detectFrustum(Scp.Net, Policy.get());
  ASSERT_TRUE(F.has_value());
  Rational IssueBound(1, static_cast<int64_t>(Scp.numSdspTransitions()));
  Rational Usage = processorUsage(Scp, *F);
  EXPECT_LE(Usage, Rational(1));
  for (TransitionId T : Scp.SdspTransitions)
    EXPECT_LE(F->computationRate(T), IssueBound) << "Thm 5.2.2";
}

TEST_P(PipelineTest, StorageOptimizerKeepsSemantics) {
  DataflowGraph G = compile();
  Sdsp S = Sdsp::standard(G);
  StorageOptResult R = minimizeStorage(S);
  EXPECT_LE(R.StorageAfter, R.StorageBefore);
  SdspPn Pn = buildSdspPn(R.Optimized);
  auto F = detectFrustum(Pn.Net);
  ASSERT_TRUE(F.has_value());
  SoftwarePipelineSchedule Sched = deriveSchedule(Pn, *F);
  std::string Error;
  EXPECT_TRUE(validateSchedule(R.Optimized, Pn, Sched, 48, &Error))
      << Error;
  EXPECT_EQ(Sched.rate(), R.OptimalRate);
}

INSTANTIATE_TEST_SUITE_P(
    AllKernels, PipelineTest, ::testing::ValuesIn(livermoreKernels()),
    [](const ::testing::TestParamInfo<LivermoreKernel> &Info) {
      return Info.param.Id;
    });

TEST(Integration, FrustumScheduleExecutionMatchesInterpreter) {
  // Execute L2's derived schedule operation by operation (in global
  // time order) against a scoreboard that mimics registers, then check
  // outputs equal the interpreter's.  This ties the timing world to
  // the value world.
  DiagnosticEngine Diags;
  auto G = compileLoop(findKernel("l2")->Source, Diags);
  ASSERT_TRUE(G.has_value());
  Sdsp S = Sdsp::standard(*G);
  SdspPn Pn = buildSdspPn(S);
  auto F = detectFrustum(Pn.Net);
  ASSERT_TRUE(F.has_value());
  SoftwarePipelineSchedule Sched = deriveSchedule(Pn, *F);

  // Collect (time, node, iteration) for the first N iterations and
  // sort by time; replaying through the interpreter iteration-wise must
  // respect every producer-before-consumer pair, which
  // validateSchedule already guarantees; here we additionally check
  // the interpreter outputs (value correctness is schedule-independent
  // by determinacy).
  const size_t N = 16;
  StreamMap In = findKernel("l2")->MakeInputs(N, 99);
  StreamMap Expected = findKernel("l2")->Reference(In, N);
  InterpResult Got = interpret(*G, In, N);
  for (size_t I = 0; I < N; ++I)
    EXPECT_NEAR(Got.Outputs.at("E")[I], Expected.at("E")[I], 1e-9);
  std::string Error;
  EXPECT_TRUE(validateSchedule(S, Pn, Sched, N, &Error)) << Error;
}

} // namespace
