//===- tests/InterpreterTest.cpp - Functional interpreter tests ------------===//
//
// Part of the SDSP project: a reproduction of Gao, Wong & Ning,
// "A Timed Petri-Net Model for Fine-Grain Loop Scheduling", PLDI 1991.
//
//===----------------------------------------------------------------------===//

#include "dataflow/Interpreter.h"

#include "TestUtil.h"
#include "gtest/gtest.h"

using namespace sdsp;
using namespace sdsp::testutil;

namespace {

TEST(Interpreter, L1ComputesTheFormula) {
  DataflowGraph G = buildL1();
  StreamMap In;
  In["X"] = {1, 2, 3};
  In["Y"] = {10, 20, 30};
  In["Z"] = {100, 200, 300};
  In["W"] = {1000, 2000, 3000};
  InterpResult R = interpret(G, In, 3);
  ASSERT_EQ(R.Outputs.at("E").size(), 3u);
  for (size_t I = 0; I < 3; ++I) {
    double A = In["X"][I] + 5;
    double Expected = In["W"][I] + (In["Y"][I] + A) + (A + In["Z"][I]);
    EXPECT_DOUBLE_EQ(R.Outputs.at("E")[I], Expected);
    EXPECT_FALSE(R.DummyMask.at("E")[I]);
  }
}

TEST(Interpreter, L2RecurrenceUsesInitialValue) {
  DataflowGraph G = buildL2Direct();
  StreamMap In;
  In["X"] = {0, 0};
  In["Y"] = {0, 0};
  In["W"] = {0, 0};
  InterpResult R = interpret(G, In, 2);
  // E[0] = W + B + C = 0 + (0 + 5) + (5 + E[-1]=0) = 10.
  EXPECT_DOUBLE_EQ(R.Outputs.at("E")[0], 10.0);
  // E[1] = 0 + 5 + (5 + 10) = 20.
  EXPECT_DOUBLE_EQ(R.Outputs.at("E")[1], 20.0);
}

TEST(Interpreter, DeepFeedbackDistance) {
  // y = x + y[i-2], inits y[-2]=100, y[-1]=200.
  DataflowGraph G;
  NodeId In = G.addNode(OpKind::Input, "x");
  NodeId A = G.addNode(OpKind::Add, "y");
  G.connect(In, 0, A, 0);
  G.connectFeedback(A, 0, A, 1, {100.0, 200.0});
  NodeId Out = G.addNode(OpKind::Output, "y");
  G.connect(A, 0, Out, 0);

  StreamMap Inputs;
  Inputs["x"] = {1, 2, 3, 4};
  InterpResult R = interpret(G, Inputs, 4);
  EXPECT_DOUBLE_EQ(R.Outputs.at("y")[0], 101.0);
  EXPECT_DOUBLE_EQ(R.Outputs.at("y")[1], 202.0);
  EXPECT_DOUBLE_EQ(R.Outputs.at("y")[2], 104.0);
  EXPECT_DOUBLE_EQ(R.Outputs.at("y")[3], 206.0);
}

TEST(Interpreter, SwitchMergeSelectsBranch) {
  // out = if x < 0 then -x else x  (absolute value via switch/merge).
  GraphBuilder B;
  auto X = B.input("x");
  auto C = B.lt(X, B.constant(0));
  auto [T1, F1] = B.switchOn(C, X);
  auto M = B.merge(C, B.neg(T1), F1, "abs");
  B.outputValue("abs", M);
  DataflowGraph G = B.take();

  StreamMap In;
  In["x"] = {-3, 4, -5, 0};
  InterpResult R = interpret(G, In, 4);
  EXPECT_DOUBLE_EQ(R.Outputs.at("abs")[0], 3.0);
  EXPECT_DOUBLE_EQ(R.Outputs.at("abs")[1], 4.0);
  EXPECT_DOUBLE_EQ(R.Outputs.at("abs")[2], 5.0);
  EXPECT_DOUBLE_EQ(R.Outputs.at("abs")[3], 0.0);
  for (size_t I = 0; I < 4; ++I)
    EXPECT_FALSE(R.DummyMask.at("abs")[I]);
}

TEST(Interpreter, UnselectedBranchYieldsDummy) {
  // Route only the true branch of a switch to an output: iterations
  // where the condition is false produce a dummy.
  GraphBuilder B;
  auto X = B.input("x");
  auto C = B.lt(X, B.constant(0));
  auto [T1, F1] = B.switchOn(C, X);
  (void)F1;
  B.outputValue("neg_only", B.neg(T1));
  DataflowGraph G = B.take();

  StreamMap In;
  In["x"] = {-1, 1};
  InterpResult R = interpret(G, In, 2);
  EXPECT_FALSE(R.DummyMask.at("neg_only")[0]);
  EXPECT_DOUBLE_EQ(R.Outputs.at("neg_only")[0], 1.0);
  EXPECT_TRUE(R.DummyMask.at("neg_only")[1]);
}

TEST(Interpreter, OutputNodeBug_SwitchFalsePortUnused) {
  // The false output of the then-switch is legitimately unconnected in
  // conditional lowering; make sure a graph using both ports of one
  // switch also interprets correctly.
  GraphBuilder B;
  auto X = B.input("x");
  auto C = B.le(B.constant(0), X, "nonneg");
  auto [T1, F1] = B.switchOn(C, X);
  B.outputValue("pos", T1);
  B.outputValue("neg", F1);
  DataflowGraph G = B.take();
  StreamMap In;
  In["x"] = {5, -7};
  InterpResult R = interpret(G, In, 2);
  EXPECT_FALSE(R.DummyMask.at("pos")[0]);
  EXPECT_TRUE(R.DummyMask.at("pos")[1]);
  EXPECT_TRUE(R.DummyMask.at("neg")[0]);
  EXPECT_FALSE(R.DummyMask.at("neg")[1]);
  EXPECT_DOUBLE_EQ(R.Outputs.at("neg")[1], -7.0);
}

} // namespace
