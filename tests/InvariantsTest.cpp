//===- tests/InvariantsTest.cpp - P/T-invariant tests ----------------------===//
//
// Part of the SDSP project: a reproduction of Gao, Wong & Ning,
// "A Timed Petri-Net Model for Fine-Grain Loop Scheduling", PLDI 1991.
//
//===----------------------------------------------------------------------===//

#include "petri/Invariants.h"

#include "TestUtil.h"
#include "gtest/gtest.h"

using namespace sdsp;
using namespace sdsp::testutil;

namespace {

TEST(Invariants, IncidenceMatrixShape) {
  PetriNet Ring = buildRing(3, 1);
  RationalMatrix C = incidenceMatrix(Ring);
  ASSERT_EQ(C.size(), 3u);
  ASSERT_EQ(C[0].size(), 3u);
  // Each transition produces into one place and consumes from another.
  for (size_t T = 0; T < 3; ++T) {
    Rational Sum(0);
    for (size_t P = 0; P < 3; ++P)
      Sum = Sum + C[T][P];
    EXPECT_EQ(Sum, Rational(0));
  }
}

TEST(Invariants, NullspaceOfIdentityIsEmpty) {
  RationalMatrix I = {{Rational(1), Rational(0)},
                      {Rational(0), Rational(1)}};
  EXPECT_TRUE(nullspaceBasis(I).empty());
}

TEST(Invariants, NullspaceSimpleKernel) {
  // x + y = 0 has a one-dimensional kernel.
  RationalMatrix A = {{Rational(1), Rational(1)}};
  RationalMatrix Basis = nullspaceBasis(A);
  ASSERT_EQ(Basis.size(), 1u);
  EXPECT_EQ(Basis[0][0] + Basis[0][1], Rational(0));
}

TEST(Invariants, RingHasUniformTInvariant) {
  // Thm A.5.3 in invariant form: firing every transition once
  // reproduces any marking of a marked graph.
  EXPECT_TRUE(hasUniformTInvariant(buildRing(5, 2)));
}

TEST(Invariants, NonMarkedGraphLacksUniformTInvariant) {
  // A fork: one producer, two consumers of different places; firing
  // everything once does not rebalance.
  PetriNet Net;
  TransitionId Src = Net.addTransition("src");
  TransitionId A = Net.addTransition("a");
  PlaceId P = Net.addPlace("p", 1);
  Net.addArc(Src, P);
  Net.addArc(P, A);
  PlaceId Q = Net.addPlace("q", 0);
  Net.addArc(A, Q); // q accumulates: no uniform T-invariant.
  EXPECT_FALSE(hasUniformTInvariant(Net));
}

TEST(Invariants, PairPlacePInvariant) {
  // A data/ack pair conserves data + ack tokens: the (1,1) weighting
  // over the two places is a P-invariant.
  PetriNet Net;
  TransitionId A = Net.addTransition("a");
  TransitionId B = Net.addTransition("b");
  PlaceId D = Net.addPlace("d", 0);
  PlaceId K = Net.addPlace("k", 1);
  Net.addArc(A, D);
  Net.addArc(D, B);
  Net.addArc(B, K);
  Net.addArc(K, A);
  RationalMatrix Basis = pInvariants(Net);
  ASSERT_FALSE(Basis.empty());
  // Verify some basis vector is proportional to (1, 1).
  bool Found = false;
  for (const auto &V : Basis)
    if (V[D.index()] == V[K.index()] && !V[D.index()].isZero())
      Found = true;
  EXPECT_TRUE(Found);
}

TEST(Invariants, TInvariantsVerify) {
  Rng R(3);
  PetriNet Net = buildRandomMarkedGraph(R, 6, 4);
  RationalMatrix Basis = tInvariants(Net);
  for (const auto &X : Basis)
    EXPECT_TRUE(isTInvariant(Net, X));
  EXPECT_TRUE(hasUniformTInvariant(Net)) << "marked graph consistency";
}

} // namespace
