//===- tests/LexerTest.cpp - Loop-language lexer tests ---------------------===//
//
// Part of the SDSP project: a reproduction of Gao, Wong & Ning,
// "A Timed Petri-Net Model for Fine-Grain Loop Scheduling", PLDI 1991.
//
//===----------------------------------------------------------------------===//

#include "loopir/Lexer.h"

#include "gtest/gtest.h"

using namespace sdsp;

namespace {

std::vector<TokenKind> kindsOf(const std::string &Src) {
  DiagnosticEngine Diags;
  std::vector<Token> Toks = tokenize(Src, Diags);
  EXPECT_FALSE(Diags.hasErrors());
  std::vector<TokenKind> Kinds;
  for (const Token &T : Toks)
    Kinds.push_back(T.Kind);
  return Kinds;
}

TEST(Lexer, KeywordsAndIdentifiers) {
  auto K = kindsOf("doall do init out if then else min max foo");
  EXPECT_EQ(K, (std::vector<TokenKind>{
                   TokenKind::KwDoall, TokenKind::KwDo, TokenKind::KwInit,
                   TokenKind::KwOut, TokenKind::KwIf, TokenKind::KwThen,
                   TokenKind::KwElse, TokenKind::KwMin, TokenKind::KwMax,
                   TokenKind::Identifier, TokenKind::Eof}));
}

TEST(Lexer, NumbersIncludingFloats) {
  DiagnosticEngine Diags;
  std::vector<Token> T = tokenize("5 2.5 1e3 1.5e-2", Diags);
  ASSERT_EQ(T.size(), 5u);
  EXPECT_DOUBLE_EQ(T[0].Value, 5.0);
  EXPECT_DOUBLE_EQ(T[1].Value, 2.5);
  EXPECT_DOUBLE_EQ(T[2].Value, 1000.0);
  EXPECT_DOUBLE_EQ(T[3].Value, 0.015);
}

TEST(Lexer, OperatorsAndPunctuation) {
  auto K = kindsOf("= == != < <= > >= + - * / ( ) [ ] { } ; ,");
  EXPECT_EQ(K.size(), 20u);
  EXPECT_EQ(K[0], TokenKind::Equal);
  EXPECT_EQ(K[1], TokenKind::EqualEqual);
  EXPECT_EQ(K[2], TokenKind::BangEqual);
  EXPECT_EQ(K[3], TokenKind::Less);
  EXPECT_EQ(K[4], TokenKind::LessEqual);
  EXPECT_EQ(K[5], TokenKind::Greater);
  EXPECT_EQ(K[6], TokenKind::GreaterEqual);
}

TEST(Lexer, CommentsAreSkipped) {
  auto K = kindsOf("a # everything here is ignored = + \n b");
  EXPECT_EQ(K, (std::vector<TokenKind>{TokenKind::Identifier,
                                       TokenKind::Identifier,
                                       TokenKind::Eof}));
}

TEST(Lexer, TracksLineAndColumn) {
  DiagnosticEngine Diags;
  std::vector<Token> T = tokenize("a\n  b", Diags);
  EXPECT_EQ(T[0].Loc.Line, 1u);
  EXPECT_EQ(T[0].Loc.Col, 1u);
  EXPECT_EQ(T[1].Loc.Line, 2u);
  EXPECT_EQ(T[1].Loc.Col, 3u);
}

TEST(Lexer, ReportsUnknownCharacters) {
  DiagnosticEngine Diags;
  tokenize("a $ b", Diags);
  ASSERT_TRUE(Diags.hasErrors());
  EXPECT_NE(Diags.diagnostics()[0].Message.find("'$'"), std::string::npos);
}

} // namespace
