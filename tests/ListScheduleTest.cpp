//===- tests/ListScheduleTest.cpp - List scheduler tests -------------------===//
//
// Part of the SDSP project: a reproduction of Gao, Wong & Ning,
// "A Timed Petri-Net Model for Fine-Grain Loop Scheduling", PLDI 1991.
//
//===----------------------------------------------------------------------===//

#include "sched/ListSchedule.h"

#include "TestUtil.h"
#include "gtest/gtest.h"

#include <map>

using namespace sdsp;
using namespace sdsp::testutil;

namespace {

TEST(ListSchedule, SingleIssueSerializesEverything) {
  DepGraph D = depGraphFromSdsp(Sdsp::standard(buildL1()));
  ListMachine M{1, 0};
  ListScheduleResult R = listSchedule(D, M, 10);
  // 5 ops x 10 iterations, one per cycle: at least 50 cycles.
  EXPECT_GE(R.Makespan, 50u);
  EXPECT_LE(R.achievedRate(), 1.0 / 5 + 1e-9);
}

TEST(ListSchedule, WideMachineExploitsParallelism) {
  DepGraph D = depGraphFromSdsp(Sdsp::standard(buildL1()));
  ListMachine Wide{8, 0};
  ListScheduleResult R = listSchedule(D, Wide, 10);
  ListMachine Narrow{1, 0};
  ListScheduleResult R1 = listSchedule(D, Narrow, 10);
  EXPECT_LT(R.Makespan, R1.Makespan);
}

TEST(ListSchedule, RespectsDependences) {
  DepGraph D = depGraphFromSdsp(Sdsp::standard(buildL2Direct()));
  ListMachine M{1, 0};
  ListScheduleResult R = listSchedule(D, M, 8);
  for (size_t Iter = 0; Iter < 8; ++Iter)
    for (const DepGraph::Dep &Dep : D.Deps) {
      if (Dep.Distance > Iter)
        continue;
      uint64_t Src = R.StartTimes[Iter - Dep.Distance][Dep.From];
      EXPECT_GE(R.StartTimes[Iter][Dep.To],
                Src + D.Ops[Dep.From].Latency);
    }
}

TEST(ListSchedule, RespectsIssueWidth) {
  DepGraph D = depGraphFromSdsp(Sdsp::standard(buildL1()));
  ListMachine M{2, 0};
  ListScheduleResult R = listSchedule(D, M, 6);
  std::map<uint64_t, int> PerCycle;
  for (const auto &Iter : R.StartTimes)
    for (uint64_t T : Iter)
      ++PerCycle[T];
  for (auto [Cycle, Count] : PerCycle)
    EXPECT_LE(Count, 2) << "cycle " << Cycle;
}

TEST(ListSchedule, UniformLatencyOverride) {
  DepGraph D = depGraphFromSdsp(Sdsp::standard(buildL2Direct()));
  ListMachine M{1, 8}; // the SCP's l = 8
  ListScheduleResult R = listSchedule(D, M, 4);
  // The recurrence C-D-E now costs 3*8 per iteration in the limit;
  // just sanity-check the makespan reflects the big latency.
  EXPECT_GE(R.Makespan, 3u * 8u * 3u);
}

} // namespace
