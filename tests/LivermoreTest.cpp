//===- tests/LivermoreTest.cpp - Benchmark kernel tests --------------------===//
//
// Part of the SDSP project: a reproduction of Gao, Wong & Ning,
// "A Timed Petri-Net Model for Fine-Grain Loop Scheduling", PLDI 1991.
//
//===----------------------------------------------------------------------===//

#include "livermore/Livermore.h"

#include "dataflow/Validate.h"
#include "loopir/Lowering.h"
#include "gtest/gtest.h"

#include <cmath>

using namespace sdsp;

namespace {

class LivermoreKernelTest
    : public ::testing::TestWithParam<LivermoreKernel> {};

TEST_P(LivermoreKernelTest, CompilesToWellFormedGraph) {
  const LivermoreKernel &K = GetParam();
  DiagnosticEngine Diags;
  auto G = compileLoop(K.Source, Diags);
  ASSERT_TRUE(G.has_value()) << K.Name;
  EXPECT_TRUE(isWellFormed(*G));
  EXPECT_EQ(G->hasLoopCarriedDependence(), K.HasLcd) << K.Name;
}

TEST_P(LivermoreKernelTest, InterpreterMatchesReference) {
  const LivermoreKernel &K = GetParam();
  DiagnosticEngine Diags;
  auto G = compileLoop(K.Source, Diags);
  ASSERT_TRUE(G.has_value());
  const size_t N = 64;
  StreamMap In = K.MakeInputs(N, /*Seed=*/12345);
  StreamMap Expected = K.Reference(In, N);
  InterpResult Got = interpret(*G, In, N);
  for (const auto &[Name, Values] : Expected) {
    ASSERT_EQ(Got.Outputs.count(Name), 1u) << K.Name << " " << Name;
    ASSERT_EQ(Got.Outputs.at(Name).size(), Values.size());
    for (size_t I = 0; I < Values.size(); ++I) {
      EXPECT_FALSE(Got.DummyMask.at(Name)[I]);
      EXPECT_NEAR(Got.Outputs.at(Name)[I], Values[I],
                  1e-9 * (1.0 + std::fabs(Values[I])))
          << K.Name << " " << Name << "[" << I << "]";
    }
  }
}

TEST_P(LivermoreKernelTest, InputsAreSeedDeterministic) {
  const LivermoreKernel &K = GetParam();
  StreamMap A = K.MakeInputs(16, 7);
  StreamMap B = K.MakeInputs(16, 7);
  EXPECT_EQ(A, B);
  StreamMap C = K.MakeInputs(16, 8);
  EXPECT_NE(A, C);
}

INSTANTIATE_TEST_SUITE_P(
    AllKernels, LivermoreKernelTest,
    ::testing::ValuesIn(livermoreKernels()),
    [](const ::testing::TestParamInfo<LivermoreKernel> &Info) {
      return Info.param.Id;
    });

TEST(Livermore, FindKernel) {
  EXPECT_NE(findKernel("loop3"), nullptr);
  EXPECT_EQ(findKernel("loop3")->HasLcd, true);
  EXPECT_EQ(findKernel("nope"), nullptr);
}

TEST(Livermore, KernelListMatchesThePaper) {
  // 2 paper examples + 3 no-LCD + 3 LCD + the second loop9 variant.
  const auto &Ks = livermoreKernels();
  EXPECT_EQ(Ks.size(), 9u);
  size_t Lcd = 0;
  for (const auto &K : Ks)
    Lcd += K.HasLcd;
  EXPECT_EQ(Lcd, 4u) << "l2, loop3, loop5, loop9lcd";
}

} // namespace
