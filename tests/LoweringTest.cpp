//===- tests/LoweringTest.cpp - AST lowering tests -------------------------===//
//
// Part of the SDSP project: a reproduction of Gao, Wong & Ning,
// "A Timed Petri-Net Model for Fine-Grain Loop Scheduling", PLDI 1991.
//
//===----------------------------------------------------------------------===//

#include "loopir/Lowering.h"

#include "dataflow/Interpreter.h"
#include "dataflow/Validate.h"
#include "gtest/gtest.h"

using namespace sdsp;

namespace {

/// The paper's L1 in the loop language.
const char *L1 = R"(doall i {
  A = X[i] + 5;
  B = Y[i] + A;
  C = A + Z[i];
  D = B + C;
  E = W[i] + D;
  out E;
})";

TEST(Lowering, L1ProducesFiveComputeNodes) {
  DiagnosticEngine Diags;
  auto G = compileLoop(L1, Diags);
  ASSERT_TRUE(G.has_value()) << "diagnostics present";
  size_t Compute = 0;
  for (NodeId N : G->nodeIds()) {
    OpKind K = G->node(N).Kind;
    if (K != OpKind::Input && K != OpKind::Const && K != OpKind::Output)
      ++Compute;
  }
  EXPECT_EQ(Compute, 5u);
  EXPECT_FALSE(G->hasLoopCarriedDependence());
}

TEST(Lowering, L2FeedbackWiredDirectly) {
  DiagnosticEngine Diags;
  auto G = compileLoop("do i { init E = 0; A = X[i] + 5; B = Y[i] + A; "
                       "C = A + E[i-1]; D = B + C; E = W[i] + D; out E; }",
                       Diags);
  ASSERT_TRUE(G.has_value());
  // Feedback arc goes straight from node E to node C (no extra
  // identity), keeping the paper's five-node body.
  int Feedback = 0;
  for (ArcId A : G->arcIds())
    if (G->arc(A).isFeedback()) {
      ++Feedback;
      EXPECT_EQ(G->node(G->arc(A).From).Name, "E");
      EXPECT_EQ(G->node(G->arc(A).To).Name, "C");
    }
  EXPECT_EQ(Feedback, 1);
}

TEST(Lowering, UseBeforeDefResolves) {
  DiagnosticEngine Diags;
  auto G = compileLoop("do i { B = A + 1; A = X[i]; out B; }", Diags);
  ASSERT_TRUE(G.has_value()) << "statement order is irrelevant";
  EXPECT_TRUE(isWellFormed(*G));
}

TEST(Lowering, SameIterationCycleRejected) {
  DiagnosticEngine Diags;
  auto G = compileLoop("do i { A = B + 1; B = A + 1; out A; }", Diags);
  EXPECT_FALSE(G.has_value());
  EXPECT_TRUE(Diags.hasErrors());
}

TEST(Lowering, ConstantsDeduplicated) {
  DiagnosticEngine Diags;
  auto G = compileLoop("doall i { A = X[i] + 5; B = Y[i] + 5; C = A + B; "
                       "out C; }",
                       Diags);
  ASSERT_TRUE(G.has_value());
  size_t Consts = 0;
  for (NodeId N : G->nodeIds())
    if (G->node(N).Kind == OpKind::Const)
      ++Consts;
  EXPECT_EQ(Consts, 1u);
}

TEST(Lowering, StreamsDeduplicated) {
  DiagnosticEngine Diags;
  auto G = compileLoop("doall i { A = X[i] + X[i]; out A; }", Diags);
  ASSERT_TRUE(G.has_value());
  size_t Inputs = 0;
  for (NodeId N : G->nodeIds())
    if (G->node(N).Kind == OpKind::Input)
      ++Inputs;
  EXPECT_EQ(Inputs, 1u);
}

TEST(Lowering, ConditionalUsesSwitchMerge) {
  DiagnosticEngine Diags;
  auto G = compileLoop(
      "do i { A = if X[i] < 0 then 0 - X[i] else X[i]; out A; }", Diags);
  ASSERT_TRUE(G.has_value());
  size_t Switches = 0, Merges = 0;
  for (NodeId N : G->nodeIds()) {
    if (G->node(N).Kind == OpKind::Switch)
      ++Switches;
    if (G->node(N).Kind == OpKind::Merge)
      ++Merges;
  }
  EXPECT_EQ(Switches, 2u);
  EXPECT_EQ(Merges, 1u);

  // And it computes |x| correctly end to end.
  StreamMap In;
  In["X"] = {-2, 3};
  InterpResult R = interpret(*G, In, 2);
  EXPECT_DOUBLE_EQ(R.Outputs.at("A")[0], 2.0);
  EXPECT_DOUBLE_EQ(R.Outputs.at("A")[1], 3.0);
}

TEST(Lowering, IfStatementComputesBothTargets) {
  DiagnosticEngine Diags;
  auto G = compileLoop(
      "do i { if (X[i] < 0) { A = 0 - X[i]; S = 0 - 1; } "
      "else { A = X[i]; S = 1; } out A; out S; }",
      Diags);
  ASSERT_TRUE(G.has_value());
  StreamMap In;
  In["X"] = {-4, 7};
  InterpResult R = interpret(*G, In, 2);
  EXPECT_DOUBLE_EQ(R.Outputs.at("A")[0], 4.0);
  EXPECT_DOUBLE_EQ(R.Outputs.at("S")[0], -1.0);
  EXPECT_DOUBLE_EQ(R.Outputs.at("A")[1], 7.0);
  EXPECT_DOUBLE_EQ(R.Outputs.at("S")[1], 1.0);
}

TEST(Lowering, IfStatementWithRecurrence) {
  // Conditional accumulator: only non-negative samples are summed.
  DiagnosticEngine Diags;
  auto G = compileLoop("do i { init s = 0;\n"
                       "  if (x[i] < 0) { s = s[i-1]; }\n"
                       "  else { s = s[i-1] + x[i]; }\n"
                       "  out s; }",
                       Diags);
  ASSERT_TRUE(G.has_value());
  StreamMap In;
  In["x"] = {1, -2, 3, -4, 5};
  InterpResult R = interpret(*G, In, 5);
  EXPECT_DOUBLE_EQ(R.Outputs.at("s")[4], 9.0);
}

TEST(Lowering, AliasCreatesIdentity) {
  DiagnosticEngine Diags;
  auto G = compileLoop("do i { A = X[i] + 1; B = A; out B; }", Diags);
  ASSERT_TRUE(G.has_value());
  bool HasIdentity = false;
  for (NodeId N : G->nodeIds())
    if (G->node(N).Kind == OpKind::Identity)
      HasIdentity = true;
  EXPECT_TRUE(HasIdentity);
}

TEST(Lowering, ScalarRecurrenceLoop3Style) {
  DiagnosticEngine Diags;
  auto G = compileLoop("do k { init q = 0; q = q[k-1] + z[k] * x[k]; "
                       "out q; }",
                       Diags);
  ASSERT_TRUE(G.has_value());
  StreamMap In;
  In["z"] = {1, 2, 3};
  In["x"] = {4, 5, 6};
  InterpResult R = interpret(*G, In, 3);
  EXPECT_DOUBLE_EQ(R.Outputs.at("q")[0], 4.0);
  EXPECT_DOUBLE_EQ(R.Outputs.at("q")[1], 14.0);
  EXPECT_DOUBLE_EQ(R.Outputs.at("q")[2], 32.0);
}

} // namespace
