//===- tests/MarkedGraphTest.cpp - Marked-graph theorem tests --------------===//
//
// Part of the SDSP project: a reproduction of Gao, Wong & Ning,
// "A Timed Petri-Net Model for Fine-Grain Loop Scheduling", PLDI 1991.
//
//===----------------------------------------------------------------------===//

#include "petri/MarkedGraph.h"

#include "TestUtil.h"
#include "gtest/gtest.h"

using namespace sdsp;
using namespace sdsp::testutil;

namespace {

TEST(MarkedGraph, RecognizesMarkedGraphs) {
  PetriNet Ring = buildRing(3, 1);
  EXPECT_TRUE(isMarkedGraph(Ring));

  // Add a second consumer to a place: no longer a marked graph.
  PetriNet Net = buildRing(3, 1);
  TransitionId Extra = Net.addTransition("extra");
  Net.addArc(PlaceId(0u), Extra);
  EXPECT_FALSE(isMarkedGraph(Net));
}

TEST(MarkedGraph, ViewEdgesMirrorPlaces) {
  PetriNet Ring = buildRing(4, 2);
  MarkedGraphView View(Ring);
  EXPECT_EQ(View.numVertices(), 4u);
  EXPECT_EQ(View.numEdges(), 4u);
  uint64_t Tokens = 0;
  for (const MarkedGraphView::Edge &E : View.edges())
    Tokens += E.Tokens;
  EXPECT_EQ(Tokens, 2u);
}

TEST(MarkedGraph, LivenessThmA51) {
  // Thm A.5.1: live iff every simple cycle carries a token.
  EXPECT_TRUE(isLiveMarkedGraph(buildRing(3, 1)));
  EXPECT_FALSE(isLiveMarkedGraph(buildRing(3, 0)));
}

TEST(MarkedGraph, SafetyThmA52) {
  // One token on a ring: safe.  Two tokens on a ring of 3: each edge
  // is only on the full cycle, which has 2 tokens -> unsafe.
  EXPECT_TRUE(isSafeMarkedGraph(buildRing(3, 1)));
  EXPECT_FALSE(isSafeMarkedGraph(buildRing(3, 2)));
}

TEST(MarkedGraph, SafetyWithParallelCycles) {
  // Two transitions joined by a data place (1 token) and an ack place
  // (0 tokens) in each direction: the 2-cycle has exactly 1 token.
  PetriNet Net;
  TransitionId A = Net.addTransition("a");
  TransitionId B = Net.addTransition("b");
  PlaceId D = Net.addPlace("d", 1);
  PlaceId K = Net.addPlace("k", 0);
  Net.addArc(A, D);
  Net.addArc(D, B);
  Net.addArc(B, K);
  Net.addArc(K, A);
  EXPECT_TRUE(isLiveMarkedGraph(Net));
  EXPECT_TRUE(isSafeMarkedGraph(Net));
}

TEST(MarkedGraph, StructuralPersistence) {
  EXPECT_TRUE(isStructurallyPersistent(buildRing(3, 1)));
  PetriNet Net = buildRing(3, 1);
  TransitionId Extra = Net.addTransition("extra");
  Net.addArc(PlaceId(0u), Extra);
  EXPECT_FALSE(isStructurallyPersistent(Net));
}

TEST(MarkedGraph, StrongConnectivity) {
  PetriNet Ring = buildRing(5, 1);
  MarkedGraphView View(Ring);
  EXPECT_TRUE(stronglyConnectedRoot(View).has_value());

  // Two disjoint rings: not strongly connected.
  PetriNet Two;
  for (int R = 0; R < 2; ++R) {
    TransitionId A = Two.addTransition("a");
    TransitionId B = Two.addTransition("b");
    PlaceId P1 = Two.addPlace("p", 1);
    PlaceId P2 = Two.addPlace("q", 0);
    Two.addArc(A, P1);
    Two.addArc(P1, B);
    Two.addArc(B, P2);
    Two.addArc(P2, A);
  }
  MarkedGraphView TwoView(Two);
  EXPECT_FALSE(stronglyConnectedRoot(TwoView).has_value());
}

TEST(MarkedGraph, RandomSdspStyleGraphsAreLiveAndSafe) {
  Rng R(42);
  for (int Trial = 0; Trial < 20; ++Trial) {
    PetriNet Net = buildRandomMarkedGraph(R, 4 + Trial % 8, Trial % 5);
    ASSERT_TRUE(isMarkedGraph(Net));
    EXPECT_TRUE(isLiveMarkedGraph(Net)) << "trial " << Trial;
    EXPECT_TRUE(isSafeMarkedGraph(Net)) << "trial " << Trial;
  }
}

} // namespace
