//===- tests/MaxPlusTest.cpp - Lemma 4.1.1 / Theorem 4.x tests -------------===//
//
// Part of the SDSP project: a reproduction of Gao, Wong & Ning,
// "A Timed Petri-Net Model for Fine-Grain Loop Scheduling", PLDI 1991.
//
//===----------------------------------------------------------------------===//

#include "core/MaxPlus.h"

#include "TestUtil.h"
#include "core/Frustum.h"
#include "core/RateAnalysis.h"
#include "core/ScheduleDerivation.h"
#include "core/SdspPn.h"
#include "core/TheoryBounds.h"
#include "petri/CycleRatio.h"
#include "gtest/gtest.h"

using namespace sdsp;
using namespace sdsp::testutil;

namespace {

/// Collects the engine's actual firing times, per transition in firing
/// order, over \p Steps time steps.
std::vector<std::vector<TimeStep>> engineFiringTimes(const PetriNet &Net,
                                                     TimeStep Steps) {
  EarliestFiringEngine Engine(Net);
  std::vector<std::vector<TimeStep>> Times(Net.numTransitions());
  while (Engine.now() < Steps) {
    StepRecord Rec = Engine.fireAndAdvance();
    for (TransitionId T : Rec.Fired)
      Times[T.index()].push_back(Rec.Time);
  }
  return Times;
}

void expectTableMatchesEngine(const PetriNet &Net, uint64_t Horizon,
                              TimeStep Steps) {
  FiringTimeTable Table = computeFiringTimes(Net, Horizon);
  std::vector<std::vector<TimeStep>> Engine =
      engineFiringTimes(Net, Steps);
  for (TransitionId T : Net.transitionIds()) {
    size_t Count = std::min<size_t>(Horizon, Engine[T.index()].size());
    ASSERT_GE(Count, 1u) << "transition never fired";
    for (size_t H = 0; H < Count; ++H)
      EXPECT_EQ(Table.at(H, T), Engine[T.index()][H])
          << "transition " << Net.transition(T).Name << " firing " << H;
  }
}

TEST(MaxPlus, MatchesEngineOnL1AndL2) {
  expectTableMatchesEngine(
      buildSdspPn(Sdsp::standard(buildL1())).Net, 20, 64);
  expectTableMatchesEngine(
      buildSdspPn(Sdsp::standard(buildL2Direct())).Net, 20, 96);
}

TEST(MaxPlus, MatchesEngineWithMixedExecTimes) {
  PetriNet Net;
  TransitionId A = Net.addTransition("a", 3);
  TransitionId B = Net.addTransition("b", 2);
  TransitionId C = Net.addTransition("c", 1);
  auto Place = [&](TransitionId X, TransitionId Y, uint32_t Tok) {
    PlaceId P = Net.addPlace("p", Tok);
    Net.addArc(X, P);
    Net.addArc(P, Y);
  };
  Place(A, B, 1);
  Place(B, C, 0);
  Place(C, A, 1);
  expectTableMatchesEngine(Net, 16, 128);
}

TEST(MaxPlus, MatchesEngineOnRandomGraphs) {
  Rng R(515);
  for (int Trial = 0; Trial < 10; ++Trial) {
    DataflowGraph G = buildRandomLoopGraph(R, 3 + Trial % 6, 25);
    SdspPn Pn = buildSdspPn(Sdsp::standard(G));
    expectTableMatchesEngine(Pn.Net, 12, 128);
  }
}

TEST(MaxPlus, Theorem411PeriodicityOnL2) {
  // X^{h+k} - X^h = p with k = M(C*), p = Omega(C*), for ALL
  // transitions, after at most O(n^3) firings (here: almost at once).
  SdspPn Pn = buildSdspPn(Sdsp::standard(buildL2Direct()));
  MarkedGraphView View(Pn.Net);
  auto Info = criticalCycleByEnumeration(View);
  ASSERT_TRUE(Info.has_value());
  uint64_t K = Info->Witness.TokenSum;
  TimeStep P = Info->Witness.ValueSum;
  EXPECT_EQ(K, 1u);
  EXPECT_EQ(P, 3u);

  FiringTimeTable Table = computeFiringTimes(Pn.Net, 64);
  auto B = computeBounds(Pn);
  ASSERT_TRUE(B.has_value());
  uint64_t Bound = std::min<uint64_t>(B->IterationBound, 32);
  EXPECT_TRUE(isPeriodicFrom(Table, Pn.Net.transitionIds(), Bound, K, P));
  // And in practice it is periodic from the very first firings:
  EXPECT_TRUE(isPeriodicFrom(Table, Pn.Net.transitionIds(), 2, K, P));
}

TEST(MaxPlus, Theorem421CriticalTransitionsOnly) {
  // Two cycles with the same ratio (multiple critical cycles) sharing
  // no transitions: Theorem 4.2.1 guarantees periodicity for
  // transitions ON critical cycles after O(n^2) iterations.
  PetriNet Net;
  std::vector<TransitionId> Ts;
  for (int I = 0; I < 6; ++I)
    Ts.push_back(Net.addTransition("t" + std::to_string(I)));
  auto Place = [&](int X, int Y, uint32_t Tok) {
    PlaceId P = Net.addPlace("p", Tok);
    Net.addArc(Ts[X], P);
    Net.addArc(P, Ts[Y]);
  };
  // Critical cycle 1: t0 -> t1 -> t2 -> t0, one token: ratio 3.
  Place(0, 1, 1);
  Place(1, 2, 0);
  Place(2, 0, 0);
  // Critical cycle 2: t3 -> t4 -> t5 -> t3, one token: ratio 3.
  Place(3, 4, 1);
  Place(4, 5, 0);
  Place(5, 3, 0);
  // Cross edges with slack so the graph is connected.
  Place(0, 3, 2);
  Place(3, 0, 2);

  MarkedGraphView View(Net);
  auto Info = criticalCycleByEnumeration(View);
  ASSERT_TRUE(Info.has_value());
  EXPECT_GE(Info->NumCriticalCycles, 2u);
  EXPECT_EQ(Info->CycleTime, Rational(3));

  FiringTimeTable Table = computeFiringTimes(Net, 96);
  // k = M(C*) = 1 for either critical cycle, p = 3.
  EXPECT_TRUE(
      isPeriodicFrom(Table, Info->CriticalTransitions, 36, 1, 3));
}

TEST(MaxPlus, PeriodicityCheckerRejectsWrongPeriod) {
  SdspPn Pn = buildSdspPn(Sdsp::standard(buildL2Direct()));
  FiringTimeTable Table = computeFiringTimes(Pn.Net, 32);
  EXPECT_FALSE(isPeriodicFrom(Table, Pn.Net.transitionIds(), 8, 1, 2));
  EXPECT_FALSE(isPeriodicFrom(Table, Pn.Net.transitionIds(), 8, 1, 4));
}

TEST(MaxPlus, TableMatchesScheduleClosedForm) {
  // Three independent implementations of the same semantics — the
  // token-flow engine (via the frustum's schedule), the closed-form
  // startTime(), and the max-plus recurrence — must agree everywhere.
  for (bool UseL2 : {false, true}) {
    SdspPn Pn = buildSdspPn(
        Sdsp::standard(UseL2 ? buildL2Direct() : buildL1()));
    auto F = detectFrustum(Pn.Net);
    ASSERT_TRUE(F.has_value());
    SoftwarePipelineSchedule Sched = deriveSchedule(Pn, *F);
    FiringTimeTable Table = computeFiringTimes(Pn.Net, 40);
    for (TransitionId T : Pn.Net.transitionIds())
      for (uint64_t H = 0; H < 40; ++H)
        EXPECT_EQ(Table.at(H, T), Sched.startTime(T, H))
            << "transition " << Pn.Net.transition(T).Name
            << " firing " << H;
  }
}

TEST(MaxPlus, RateFromTableMatchesAnalysis) {
  // Long-run average spacing of firings equals alpha*.
  SdspPn Pn = buildSdspPn(Sdsp::standard(buildL2Direct()));
  FiringTimeTable Table = computeFiringTimes(Pn.Net, 256);
  RateReport Rate = analyzeRate(Pn);
  for (TransitionId T : Pn.Net.transitionIds()) {
    TimeStep Span = Table.at(255, T) - Table.at(55, T);
    EXPECT_EQ(Rational(static_cast<int64_t>(Span), 200),
              Rate.CycleTime);
  }
}

} // namespace
