//===- tests/MetricsTest.cpp - Counter/gauge registry ----------------------===//
//
// Part of the SDSP project: a reproduction of Gao, Wong & Ning,
// "A Timed Petri-Net Model for Fine-Grain Loop Scheduling", PLDI 1991.
//
//===----------------------------------------------------------------------===//
//
// support/Metrics.h unit contracts (name-sorted snapshots, the
// counter/gauge split, the "sdsp-metrics-v1" JSON shape) plus the
// pipeline integration: compiling a kernel flushes the earliest-firing
// engine and state-table counters into the global registry via the
// frustum detector (docs/OBSERVABILITY.md).
//
//===----------------------------------------------------------------------===//

#include "support/Metrics.h"

#include "core/Session.h"
#include "livermore/Livermore.h"

#include "gtest/gtest.h"

#include <sstream>

using namespace sdsp;

namespace {

uint64_t counterOf(const MetricsRegistry::Snapshot &S,
                   const std::string &Name) {
  for (const auto &[N, V] : S.Counters)
    if (N == Name)
      return V;
  ADD_FAILURE() << "no counter named " << Name;
  return 0;
}

TEST(MetricsTest, CountersAccumulateAndSortByName) {
  MetricsRegistry R;
  R.add("zeta");
  R.add("alpha", 5);
  R.add("zeta", 2);
  MetricsRegistry::Snapshot S = R.snapshot();
  ASSERT_EQ(S.Counters.size(), 2u);
  EXPECT_EQ(S.Counters[0].first, "alpha");
  EXPECT_EQ(S.Counters[0].second, 5u);
  EXPECT_EQ(S.Counters[1].first, "zeta");
  EXPECT_EQ(S.Counters[1].second, 3u);
}

TEST(MetricsTest, GaugesAddAndMax) {
  MetricsRegistry R;
  R.gaugeAdd("wall", 0.5);
  R.gaugeAdd("wall", 0.25);
  R.gaugeMax("peak", 3.0);
  R.gaugeMax("peak", 2.0); // Lower value must not win.
  MetricsRegistry::Snapshot S = R.snapshot();
  ASSERT_EQ(S.Gauges.size(), 2u);
  EXPECT_EQ(S.Gauges[0].first, "peak");
  EXPECT_DOUBLE_EQ(S.Gauges[0].second, 3.0);
  EXPECT_EQ(S.Gauges[1].first, "wall");
  EXPECT_DOUBLE_EQ(S.Gauges[1].second, 0.75);
}

TEST(MetricsTest, ResetClearsBothSeriesKinds) {
  MetricsRegistry R;
  R.add("c");
  R.gaugeAdd("g", 1.0);
  R.reset();
  MetricsRegistry::Snapshot S = R.snapshot();
  EXPECT_TRUE(S.Counters.empty());
  EXPECT_TRUE(S.Gauges.empty());
}

TEST(MetricsTest, JsonShapeSplitsCountersFromGauges) {
  MetricsRegistry R;
  R.add("engine.firings", 42);
  R.gaugeAdd("executor.task_wall_seconds", 1.5);
  std::ostringstream OS;
  MetricsRegistry::writeJson(R.snapshot(), OS);
  std::string Json = OS.str();
  EXPECT_NE(Json.find("\"schema\": \"sdsp-metrics-v1\""),
            std::string::npos);
  EXPECT_NE(Json.find("\"engine.firings\": 42"), std::string::npos);
  EXPECT_NE(Json.find("\"executor.task_wall_seconds\": 1.500000"),
            std::string::npos);
  // Counters and gauges are separate objects: determinism comparisons
  // (tracecheck.py metrics-diff, the -j sweep ctest) read only the
  // former.
  size_t Counters = Json.find("\"counters\"");
  size_t Gauges = Json.find("\"gauges\"");
  ASSERT_NE(Counters, std::string::npos);
  ASSERT_NE(Gauges, std::string::npos);
  EXPECT_LT(Counters, Gauges);
}

TEST(MetricsTest, CompilePopulatesEngineCounters) {
  const LivermoreKernel *K = findKernel("l1");
  ASSERT_NE(K, nullptr);
  MetricsRegistry &MR = MetricsRegistry::global();
  MR.reset();
  CompilationSession Session;
  PipelineOptions Opts;
  Opts.Verify = true;
  auto R = Session.compile(K->Source, Opts);
  ASSERT_TRUE(bool(R)) << R.status().str();

  MetricsRegistry::Snapshot S = MR.snapshot();
  EXPECT_GT(counterOf(S, "engine.firings"), 0u);
  EXPECT_GT(counterOf(S, "engine.enabled_rebuilds"), 0u);
  EXPECT_GT(counterOf(S, "packedstate.probes"), 0u);
  EXPECT_EQ(counterOf(S, "frustum.detections"), 1u);
  MR.reset(); // Leave the process-wide registry clean for other tests.
}

} // namespace
