//===- tests/ModuloScheduleTest.cpp - Modulo scheduler tests ---------------===//
//
// Part of the SDSP project: a reproduction of Gao, Wong & Ning,
// "A Timed Petri-Net Model for Fine-Grain Loop Scheduling", PLDI 1991.
//
//===----------------------------------------------------------------------===//

#include "sched/ModuloSchedule.h"

#include "TestUtil.h"
#include "gtest/gtest.h"

using namespace sdsp;
using namespace sdsp::testutil;

namespace {

TEST(ModuloSchedule, L2IdealResourcesHitsRecMii) {
  DepGraph D = depGraphFromSdsp(Sdsp::standard(buildL2Direct()));
  auto R = moduloSchedule(D, /*IssueWidth=*/0);
  ASSERT_TRUE(R.has_value());
  EXPECT_EQ(R->RecMii, 3u);
  EXPECT_EQ(R->II, 3u);
  EXPECT_TRUE(verifyModuloSchedule(D, *R));
}

TEST(ModuloSchedule, SingleIssueResMiiDominates) {
  DepGraph D = depGraphFromSdsp(Sdsp::standard(buildL1()));
  auto R = moduloSchedule(D, /*IssueWidth=*/1);
  ASSERT_TRUE(R.has_value());
  EXPECT_EQ(R->ResMii, 5u);
  EXPECT_GE(R->II, 5u);
  EXPECT_TRUE(verifyModuloSchedule(D, *R));
}

TEST(ModuloSchedule, IntegerIiRoundsUpFractionalRates) {
  // A recurrence with cycle ratio 5/2 forces II = 3 on a modulo
  // scheduler while the Petri-net kernel achieves 2/5 exactly: the
  // headline contrast of the benchmark suite.
  DepGraph D;
  for (int I = 0; I < 5; ++I)
    D.Ops.push_back(DepGraph::Op{"op" + std::to_string(I), 1});
  // Cycle through all 5 ops with total distance 2.
  D.Deps.push_back(DepGraph::Dep{0, 1, 0});
  D.Deps.push_back(DepGraph::Dep{1, 2, 0});
  D.Deps.push_back(DepGraph::Dep{2, 3, 0});
  D.Deps.push_back(DepGraph::Dep{3, 4, 0});
  D.Deps.push_back(DepGraph::Dep{4, 0, 2});
  EXPECT_EQ(D.recurrenceMii(), Rational(5, 2));
  auto R = moduloSchedule(D, /*IssueWidth=*/0);
  ASSERT_TRUE(R.has_value());
  EXPECT_EQ(R->II, 3u);
}

TEST(ModuloSchedule, InfeasibleIiIsSkipped) {
  // RecMII exact integer: scheduler must not accept anything below it.
  DepGraph D;
  D.Ops.push_back(DepGraph::Op{"a", 2});
  D.Ops.push_back(DepGraph::Op{"b", 2});
  D.Deps.push_back(DepGraph::Dep{0, 1, 0});
  D.Deps.push_back(DepGraph::Dep{1, 0, 1});
  auto R = moduloSchedule(D, 0);
  ASSERT_TRUE(R.has_value());
  EXPECT_EQ(R->II, 4u);
  EXPECT_TRUE(verifyModuloSchedule(D, *R));
}

TEST(ModuloSchedule, VerifierCatchesBadSchedules) {
  DepGraph D;
  D.Ops.push_back(DepGraph::Op{"a", 1});
  D.Ops.push_back(DepGraph::Op{"b", 1});
  D.Deps.push_back(DepGraph::Dep{0, 1, 0});
  ModuloScheduleResult Bad;
  Bad.II = 1;
  Bad.StartTimes = {0, 0}; // b starts with a: violates a -> b.
  EXPECT_FALSE(verifyModuloSchedule(D, Bad));
  Bad.StartTimes = {0, 1};
  EXPECT_TRUE(verifyModuloSchedule(D, Bad));
}

TEST(ModuloSchedule, RandomGraphsScheduleAndVerify) {
  Rng Rand(2121);
  for (int Trial = 0; Trial < 12; ++Trial) {
    DataflowGraph G = buildRandomLoopGraph(Rand, 3 + Trial % 6, 25);
    DepGraph D = depGraphFromSdsp(Sdsp::standard(G));
    for (uint32_t Width : {0u, 1u, 2u}) {
      auto R = moduloSchedule(D, Width);
      ASSERT_TRUE(R.has_value()) << "trial " << Trial;
      EXPECT_TRUE(verifyModuloSchedule(D, *R)) << "trial " << Trial;
      EXPECT_GE(R->II, R->RecMii);
    }
  }
}

} // namespace
