//===- tests/MultiFuTest.cpp - Heterogeneous machine tests -----------------===//
//
// Part of the SDSP project: a reproduction of Gao, Wong & Ning,
// "A Timed Petri-Net Model for Fine-Grain Loop Scheduling", PLDI 1991.
//
//===----------------------------------------------------------------------===//

#include "core/MultiFu.h"

#include "TestUtil.h"
#include "core/Frustum.h"
#include "core/ScpModel.h"
#include "livermore/Livermore.h"
#include "loopir/Lowering.h"
#include "gtest/gtest.h"

using namespace sdsp;
using namespace sdsp::testutil;

namespace {

std::vector<FuClass> adderMultiplier(uint32_t Adders, uint32_t Muls,
                                     uint32_t Depth = 1) {
  return {
      FuClass{"mul", Muls, Depth,
              [](OpKind K) { return K == OpKind::Mul || K == OpKind::Div; }},
      FuClass{"alu", Adders, Depth, [](OpKind) { return true; }},
  };
}

/// x = (a*b) + (c*d) + e: two muls, two adds.
DataflowGraph buildMulAddMix() {
  GraphBuilder B;
  auto M1 = B.mul(B.input("a"), B.input("b"), "m1");
  auto M2 = B.mul(B.input("c"), B.input("d"), "m2");
  auto A1 = B.add(M1, M2, "a1");
  auto A2 = B.add(A1, B.input("e"), "a2");
  B.outputValue("x", A2);
  return B.take();
}

TEST(MultiFu, ClassificationAndStructure) {
  Sdsp S = Sdsp::standard(buildMulAddMix());
  SdspPn Pn = buildSdspPn(S);
  MultiFuPn M = buildMultiFuPn(Pn, S, adderMultiplier(1, 1));
  EXPECT_EQ(M.RunPlaces.size(), 2u);
  size_t MulOps = 0, AluOps = 0;
  for (uint32_t C : M.ClassOf)
    (C == 0 ? MulOps : AluOps) += 1;
  EXPECT_EQ(MulOps, 2u);
  EXPECT_EQ(AluOps, 2u);
  // Each run place is consumed by exactly its class's ops.
  for (size_t C = 0; C < 2; ++C)
    EXPECT_EQ(M.Net.place(M.RunPlaces[C]).Consumers.size(),
              C == 0 ? MulOps : AluOps);
}

TEST(MultiFu, ClassBoundsTheRate) {
  // 2 muls on one multiplier: mul class ResMII = 2; with 2 multipliers
  // the adders (2 ops on one ALU) bind instead.
  Sdsp S = Sdsp::standard(buildMulAddMix());
  SdspPn Pn = buildSdspPn(S);
  for (uint32_t Muls : {1u, 2u}) {
    MultiFuPn M = buildMultiFuPn(Pn, S, adderMultiplier(1, Muls));
    auto Policy = M.makeFifoPolicy();
    auto F = detectFrustum(M.Net, Policy.get());
    ASSERT_TRUE(F.has_value()) << Muls << " multipliers";
    Rational Rate = F->computationRate(M.SdspTransitions.front());
    EXPECT_LE(Rate, Rational(Muls, 2)) << "mul-class issue bound";
    EXPECT_LE(Rate, Rational(1, 2)) << "alu-class issue bound";
  }
}

TEST(MultiFu, UniformClassMatchesScpModel) {
  // A single all-accepting class of count 1 IS the paper's SCP: the
  // two constructions must produce identical rates.
  DiagnosticEngine Diags;
  auto G = compileLoop(findKernel("l2")->Source, Diags);
  ASSERT_TRUE(G.has_value());
  Sdsp S = Sdsp::standard(*G);
  SdspPn Pn = buildSdspPn(S);
  for (uint32_t Depth : {1u, 4u}) {
    ScpPn Scp = buildScpPn(Pn, Depth);
    auto ScpPolicy = Scp.makeFifoPolicy();
    auto ScpF = detectFrustum(Scp.Net, ScpPolicy.get());
    ASSERT_TRUE(ScpF.has_value());

    std::vector<FuClass> One = {
        FuClass{"any", 1, Depth, [](OpKind) { return true; }}};
    MultiFuPn M = buildMultiFuPn(Pn, S, One);
    auto MPolicy = M.makeFifoPolicy();
    auto MF = detectFrustum(M.Net, MPolicy.get());
    ASSERT_TRUE(MF.has_value());

    EXPECT_EQ(ScpF->computationRate(Scp.SdspTransitions.front()),
              MF->computationRate(M.SdspTransitions.front()))
        << "depth " << Depth;
  }
}

TEST(MultiFu, DeeperMultiplierStretchesTheRecurrence) {
  // Biquad-style recurrence through a multiplier: making the mul
  // pipeline deeper lengthens the feedback loop and lowers the rate.
  DiagnosticEngine Diags;
  auto G = compileLoop(
      "do i { init y = 0; y = b * y[i-1] + x[i]; out y; }", Diags);
  ASSERT_TRUE(G.has_value());
  Sdsp S = Sdsp::standard(*G);
  SdspPn Pn = buildSdspPn(S);
  Rational Last(1);
  for (uint32_t Depth : {1u, 2u, 4u}) {
    MultiFuPn M = buildMultiFuPn(Pn, S, adderMultiplier(1, 1, Depth));
    auto Policy = M.makeFifoPolicy();
    auto F = detectFrustum(M.Net, Policy.get());
    ASSERT_TRUE(F.has_value()) << "depth " << Depth;
    Rational Rate = F->computationRate(M.SdspTransitions.front());
    EXPECT_LE(Rate, Last) << "depth " << Depth;
    Last = Rate;
  }
  EXPECT_LT(Last, Rational(1, 3)) << "deep muls must slow the loop";
}

TEST(MultiFu, FrustumExistsOnEveryKernel) {
  for (const LivermoreKernel &K : livermoreKernels()) {
    DiagnosticEngine Diags;
    auto G = compileLoop(K.Source, Diags);
    ASSERT_TRUE(G.has_value());
    Sdsp S = Sdsp::standard(*G);
    SdspPn Pn = buildSdspPn(S);
    MultiFuPn M = buildMultiFuPn(Pn, S, adderMultiplier(2, 1, 2));
    auto Policy = M.makeFifoPolicy();
    auto F = detectFrustum(M.Net, Policy.get());
    ASSERT_TRUE(F.has_value()) << K.Name;
    EXPECT_TRUE(F->hasUniformCount(M.SdspTransitions)) << K.Name;
  }
}

} // namespace
