//===- tests/ParserTest.cpp - Loop-language parser tests -------------------===//
//
// Part of the SDSP project: a reproduction of Gao, Wong & Ning,
// "A Timed Petri-Net Model for Fine-Grain Loop Scheduling", PLDI 1991.
//
//===----------------------------------------------------------------------===//

#include "loopir/Parser.h"

#include "gtest/gtest.h"

using namespace sdsp;

namespace {

TEST(Parser, ParsesL1) {
  DiagnosticEngine Diags;
  auto Ast = parseLoop("doall i { A = X[i] + 5; out A; }", Diags);
  ASSERT_TRUE(Ast.has_value()) << "errors: " << Diags.numErrors();
  EXPECT_TRUE(Ast->IsDoall);
  EXPECT_EQ(Ast->IndexName, "i");
  ASSERT_EQ(Ast->Assigns.size(), 1u);
  EXPECT_EQ(Ast->Assigns[0].Name, "A");
  ASSERT_EQ(Ast->Outs.size(), 1u);
  EXPECT_EQ(Ast->Outs[0].Name, "A");
}

TEST(Parser, PrecedenceMulOverAdd) {
  DiagnosticEngine Diags;
  auto Ast = parseLoop("do i { A = X[i] + Y[i] * Z[i]; out A; }", Diags);
  ASSERT_TRUE(Ast.has_value());
  const auto &Root = static_cast<const BinaryExpr &>(*Ast->Assigns[0].Value);
  EXPECT_EQ(Root.op(), BinaryExpr::Op::Add);
  const auto &Rhs = static_cast<const BinaryExpr &>(Root.rhs());
  EXPECT_EQ(Rhs.op(), BinaryExpr::Op::Mul);
}

TEST(Parser, ClassifiesLocalsAndStreams) {
  DiagnosticEngine Diags;
  auto Ast =
      parseLoop("do i { init A = 0; A = A[i-1] + X[i+2]; out A; }", Diags);
  ASSERT_TRUE(Ast.has_value());
  const auto &Root = static_cast<const BinaryExpr &>(*Ast->Assigns[0].Value);
  ASSERT_EQ(Root.lhs().kind(), ExprAST::Kind::VarRef);
  const auto &L = static_cast<const VarRefExpr &>(Root.lhs());
  EXPECT_EQ(L.offset(), -1);
  ASSERT_EQ(Root.rhs().kind(), ExprAST::Kind::StreamRef);
  const auto &R = static_cast<const StreamRefExpr &>(Root.rhs());
  EXPECT_EQ(R.offset(), 2);
  EXPECT_EQ(R.streamName(), "X+2");
}

TEST(Parser, InitListParsesSignedValues) {
  DiagnosticEngine Diags;
  auto Ast = parseLoop(
      "do i { init A = -1, 2.5, -3; A = A[i-3] + X[i]; out A; }", Diags);
  ASSERT_TRUE(Ast.has_value());
  ASSERT_EQ(Ast->Inits.size(), 1u);
  EXPECT_EQ(Ast->Inits[0].Values,
            (std::vector<double>{-1.0, 2.5, -3.0}));
}

TEST(Parser, IfThenElse) {
  DiagnosticEngine Diags;
  auto Ast = parseLoop(
      "do i { A = if X[i] < 0 then 0 - X[i] else X[i]; out A; }", Diags);
  ASSERT_TRUE(Ast.has_value());
  EXPECT_EQ(Ast->Assigns[0].Value->kind(), ExprAST::Kind::Cond);
}

TEST(Parser, MinMaxCalls) {
  DiagnosticEngine Diags;
  auto Ast = parseLoop("do i { A = min(X[i], max(Y[i], 0)); out A; }",
                       Diags);
  ASSERT_TRUE(Ast.has_value());
  const auto &Root = static_cast<const BinaryExpr &>(*Ast->Assigns[0].Value);
  EXPECT_EQ(Root.op(), BinaryExpr::Op::Min);
}

TEST(Parser, RejectsFutureLocalReference) {
  DiagnosticEngine Diags;
  auto Ast = parseLoop("do i { A = A[i+1]; out A; }", Diags);
  EXPECT_FALSE(Ast.has_value());
  EXPECT_TRUE(Diags.hasErrors());
}

TEST(Parser, RejectsWrongIndexName) {
  DiagnosticEngine Diags;
  auto Ast = parseLoop("do i { A = X[j]; out A; }", Diags);
  EXPECT_FALSE(Ast.has_value());
}

TEST(Parser, RecoversAndReportsMultipleErrors) {
  DiagnosticEngine Diags;
  auto Ast = parseLoop("do i { A = ; B = X[i] +; out A; }", Diags);
  EXPECT_FALSE(Ast.has_value());
  EXPECT_GE(Diags.numErrors(), 2u);
}

TEST(Parser, IfStatementDesugars) {
  DiagnosticEngine Diags;
  auto Ast = parseLoop("do i { if (X[i] < 0) { A = 0 - X[i]; B = 1; } "
                       "else { A = X[i]; B = 2; } out A; out B; }",
                       Diags);
  ASSERT_TRUE(Ast.has_value()) << "errors: " << Diags.numErrors();
  // Desugars to: __cond0 = ...; A = if __cond0 ...; B = if __cond0 ...
  ASSERT_EQ(Ast->Assigns.size(), 3u);
  EXPECT_EQ(Ast->Assigns[0].Name, "__cond0");
  EXPECT_EQ(Ast->Assigns[1].Value->kind(), ExprAST::Kind::Cond);
  EXPECT_EQ(Ast->Assigns[2].Value->kind(), ExprAST::Kind::Cond);
}

TEST(Parser, IfStatementRequiresMatchingBranches) {
  DiagnosticEngine Diags;
  auto Ast = parseLoop(
      "do i { if (X[i] < 0) { A = 1; } else { B = 2; } out A; }", Diags);
  EXPECT_FALSE(Ast.has_value());
  EXPECT_TRUE(Diags.hasErrors());
}

TEST(Parser, IfStatementWithoutElseRejected) {
  DiagnosticEngine Diags;
  auto Ast =
      parseLoop("do i { if (X[i] < 0) { A = 1; } out A; }", Diags);
  EXPECT_FALSE(Ast.has_value()) << "single assignment has no fallback";
}

TEST(Parser, UnaryMinusDesugarsToSub) {
  DiagnosticEngine Diags;
  auto Ast = parseLoop("do i { A = -X[i]; out A; }", Diags);
  ASSERT_TRUE(Ast.has_value());
  const auto &Root = static_cast<const BinaryExpr &>(*Ast->Assigns[0].Value);
  EXPECT_EQ(Root.op(), BinaryExpr::Op::Sub);
  EXPECT_EQ(Root.lhs().kind(), ExprAST::Kind::Number);
}

} // namespace
