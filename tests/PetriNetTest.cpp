//===- tests/PetriNetTest.cpp - PetriNet and Marking unit tests ------------===//
//
// Part of the SDSP project: a reproduction of Gao, Wong & Ning,
// "A Timed Petri-Net Model for Fine-Grain Loop Scheduling", PLDI 1991.
//
//===----------------------------------------------------------------------===//

#include "petri/PetriNet.h"

#include "gtest/gtest.h"

#include <sstream>

using namespace sdsp;

namespace {

TEST(Marking, ProduceConsume) {
  Marking M(3);
  EXPECT_EQ(M.totalTokens(), 0u);
  M.produce(PlaceId(1u));
  M.produce(PlaceId(1u));
  M.produce(PlaceId(2u));
  EXPECT_EQ(M.totalTokens(), 3u);
  EXPECT_EQ(M.tokens(PlaceId(1u)), 2u);
  EXPECT_FALSE(M.allSafe());
  M.consume(PlaceId(1u));
  EXPECT_TRUE(M.allSafe());
  EXPECT_EQ(M.str(), "[p1 p2]");
}

TEST(Marking, EqualityAndHashing) {
  Marking A(4), B(4);
  EXPECT_EQ(A, B);
  A.produce(PlaceId(2u));
  EXPECT_NE(A, B);
  EXPECT_NE(A.hashValue(), B.hashValue());
  B.produce(PlaceId(2u));
  EXPECT_EQ(A, B);
  EXPECT_EQ(A.hashValue(), B.hashValue());
}

TEST(PetriNet, ConstructionAndConnectivity) {
  PetriNet Net;
  TransitionId T1 = Net.addTransition("a", 2);
  TransitionId T2 = Net.addTransition("b");
  PlaceId P = Net.addPlace("p", 1);
  Net.addArc(T1, P);
  Net.addArc(P, T2);

  EXPECT_EQ(Net.numTransitions(), 2u);
  EXPECT_EQ(Net.numPlaces(), 1u);
  EXPECT_EQ(Net.transition(T1).ExecTime, 2u);
  EXPECT_EQ(Net.place(P).Producers.size(), 1u);
  EXPECT_EQ(Net.place(P).Consumers.size(), 1u);
  EXPECT_EQ(Net.place(P).Producers.front(), T1);
  EXPECT_EQ(Net.place(P).Consumers.front(), T2);
  EXPECT_EQ(Net.totalExecTime(), 3u);
}

TEST(PetriNet, EnablednessAndFiring) {
  PetriNet Net;
  TransitionId T1 = Net.addTransition("a");
  TransitionId T2 = Net.addTransition("b");
  PlaceId P1 = Net.addPlace("p1", 1);
  PlaceId P2 = Net.addPlace("p2", 0);
  Net.addArc(P1, T2);
  Net.addArc(T2, P2);
  Net.addArc(P2, T1);
  Net.addArc(T1, P1);

  Marking M = Net.initialMarking();
  EXPECT_TRUE(Net.isEnabled(T2, M));
  EXPECT_FALSE(Net.isEnabled(T1, M));
  Net.fire(T2, M);
  EXPECT_EQ(M.tokens(P1), 0u);
  EXPECT_EQ(M.tokens(P2), 1u);
  EXPECT_TRUE(Net.isEnabled(T1, M));
  Net.fire(T1, M);
  EXPECT_EQ(M, Net.initialMarking());
}

TEST(PetriNet, SourceTransitionIsAlwaysEnabled) {
  PetriNet Net;
  TransitionId T = Net.addTransition("src");
  Marking M = Net.initialMarking();
  EXPECT_TRUE(Net.isEnabled(T, M));
}

TEST(PetriNet, DotOutputMentionsEverything) {
  PetriNet Net;
  TransitionId T = Net.addTransition("fire", 3);
  PlaceId P = Net.addPlace("buf", 1);
  Net.addArc(T, P);
  Net.addArc(P, T);
  std::ostringstream OS;
  Net.printDot(OS, "g");
  std::string Dot = OS.str();
  EXPECT_NE(Dot.find("fire"), std::string::npos);
  EXPECT_NE(Dot.find("buf"), std::string::npos);
  EXPECT_NE(Dot.find("digraph"), std::string::npos);
  EXPECT_NE(Dot.find("[3]"), std::string::npos) << "exec time label";
}

} // namespace
