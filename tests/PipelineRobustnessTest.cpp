//===- tests/PipelineRobustnessTest.cpp - Guarded pipeline robustness ------===//
//
// Part of the SDSP project: a reproduction of Gao, Wong & Ning,
// "A Timed Petri-Net Model for Fine-Grain Loop Scheduling", PLDI 1991.
//
//===----------------------------------------------------------------------===//
//
// The guarded pipeline must never crash or hang, whatever the input:
// every run ends in a stage-tagged diagnostic or a verified schedule.
// Deterministic fuzz-lite sweeps drive random token soups and mutated
// kernels through runPipeline() with randomized options and Verify on,
// then pin down the structured errors each guard is supposed to raise.
// The whole suite runs under SDSP_CHECK (active in Release builds too),
// so a Release/NDEBUG ctest run exercises the same guard rails.
//
//===----------------------------------------------------------------------===//

#include "core/Pipeline.h"
#include "dataflow/GraphBuilder.h"
#include "dataflow/Unroll.h"
#include "livermore/Livermore.h"
#include "support/Random.h"

#include "gtest/gtest.h"

using namespace sdsp;

namespace {

/// Any pipeline outcome must be a success with the requested artifacts
/// or a structured, stage-tagged error — never anything else.
void expectDiagnosticOrSchedule(const Expected<CompiledLoop> &Result,
                                const std::string &Context) {
  if (!Result) {
    const Status &St = Result.status();
    EXPECT_NE(St.code(), ErrorCode::Ok) << Context;
    EXPECT_FALSE(St.stage().empty()) << Context;
    EXPECT_FALSE(St.message().empty()) << Context;
    // Fuzzed *inputs* may hit any input/resource guard, but never an
    // internal invariant: that exit is reserved for compiler bugs.
    EXPECT_NE(St.code(), ErrorCode::InternalInvariant)
        << Context << ": " << St.str();
    return;
  }
  const CompiledLoop &CL = *Result;
  EXPECT_TRUE(CL.Verified) << Context;
  ASSERT_TRUE(CL.Schedule.has_value() || CL.Scp.has_value()) << Context;
  ASSERT_TRUE(CL.Frustum.has_value()) << Context;
  ASSERT_TRUE(CL.Rate.has_value()) << Context;
}

PipelineOptions randomOptions(Rng &R) {
  PipelineOptions Opts;
  Opts.Optimize = R.chance(1, 2);
  Opts.Capacity = static_cast<uint32_t>(R.range(1, 3));
  Opts.Unroll = static_cast<uint32_t>(R.range(1, 3));
  Opts.ScpDepth = R.chance(3, 10) ? static_cast<uint32_t>(R.range(1, 4)) : 0;
  Opts.Pipelines = static_cast<uint32_t>(R.range(1, 2));
  Opts.OptimizeStorage = R.chance(3, 10);
  Opts.Verify = true;
  return Opts;
}

TEST(PipelineRobustness, RandomTokenSoupNeverCrashes) {
  const char *Pieces[] = {"do",  "doall", "init", "out", "if",  "then",
                          "else", "min",  "max",  "i",   "x",   "y",
                          "42",  "3.5",  "=",    "+",   "-",   "*",
                          "/",   "(",    ")",    "[",   "]",   "{",
                          "}",   ";",    ",",    "<",   "<=",  "=="};
  Rng R(20260805);
  for (int Trial = 0; Trial < 200; ++Trial) {
    std::string Src;
    size_t Len = static_cast<size_t>(R.range(1, 40));
    for (size_t I = 0; I < Len; ++I) {
      Src += Pieces[R.range(0, static_cast<int64_t>(std::size(Pieces)) - 1)];
      Src += " ";
    }
    PipelineOptions Opts = randomOptions(R);
    expectDiagnosticOrSchedule(runPipeline(Src, Opts), Src);
  }
}

TEST(PipelineRobustness, MutatedKernelsEndToEnd) {
  Rng R(80507);
  for (const LivermoreKernel &K : livermoreKernels()) {
    for (int Trial = 0; Trial < 25; ++Trial) {
      std::string Src = K.Source;
      for (int Edit = 0; Edit < 3; ++Edit) {
        if (Src.empty())
          break;
        size_t Pos = static_cast<size_t>(
            R.range(0, static_cast<int64_t>(Src.size()) - 1));
        switch (R.range(0, 2)) {
        case 0:
          Src[Pos] = static_cast<char>('!' + R.range(0, 90));
          break;
        case 1:
          Src.erase(Pos, 1);
          break;
        default:
          Src.insert(Pos, 1, Src[Pos]);
          break;
        }
      }
      PipelineOptions Opts = randomOptions(R);
      expectDiagnosticOrSchedule(runPipeline(Src, Opts),
                                 std::string(K.Id) + "/" +
                                     std::to_string(Trial));
    }
  }
}

TEST(PipelineRobustness, PristineKernelsVerifyUnderAllOptions) {
  // Unmutated kernels must compile AND verify under every option mix:
  // the frustum rate always matches the analytic critical-cycle rate.
  Rng R(424242);
  for (const LivermoreKernel &K : livermoreKernels()) {
    for (int Trial = 0; Trial < 8; ++Trial) {
      PipelineOptions Opts = randomOptions(R);
      // Storage minimization is only defined for capacity-1 buffers
      // (its guard is exercised by the fuzz sweeps above).
      if (Opts.Capacity != 1)
        Opts.OptimizeStorage = false;
      Expected<CompiledLoop> Result = runPipeline(K.Source, Opts);
      ASSERT_TRUE(Result.ok())
          << K.Id << ": " << Result.status().str();
      EXPECT_TRUE(Result->Verified) << K.Id;
    }
  }
}

TEST(PipelineRobustness, FrontendErrorsCarryDiagnostics) {
  DiagnosticEngine Diags;
  Expected<CompiledLoop> Result = runPipeline("do i { A = ; }", {}, &Diags);
  ASSERT_FALSE(Result.ok());
  EXPECT_EQ(Result.status().code(), ErrorCode::InvalidInput);
  EXPECT_EQ(Result.status().stage(), "frontend");
  EXPECT_TRUE(Diags.hasErrors());
  // The Status message summarizes the diagnostics for callers that did
  // not pass an engine.
  EXPECT_NE(Result.status().message().find(":"), std::string::npos);
}

TEST(PipelineRobustness, OptionGuards) {
  const char *Src = "do i { init s = 0; s = s[i-1] + X[i]; out s; }";
  {
    PipelineOptions Opts;
    Opts.Capacity = 0;
    Expected<CompiledLoop> R = runPipeline(Src, Opts);
    ASSERT_FALSE(R.ok());
    EXPECT_EQ(R.status().code(), ErrorCode::InvalidInput);
    EXPECT_EQ(R.status().stage(), "options");
  }
  {
    PipelineOptions Opts;
    Opts.Unroll = MaxUnrollFactor + 1;
    Expected<CompiledLoop> R = runPipeline(Src, Opts);
    ASSERT_FALSE(R.ok());
    EXPECT_EQ(R.status().code(), ErrorCode::InvalidInput);
  }
  {
    PipelineOptions Opts;
    Opts.ScpDepth = MaxPipelineDepth + 1;
    Expected<CompiledLoop> R = runPipeline(Src, Opts);
    ASSERT_FALSE(R.ok());
    EXPECT_EQ(R.status().code(), ErrorCode::InvalidInput);
    EXPECT_EQ(R.status().stage(), "scp");
  }
  {
    PipelineOptions Opts;
    Opts.ScpDepth = 2;
    Opts.Pipelines = 0;
    Expected<CompiledLoop> R = runPipeline(Src, Opts);
    ASSERT_FALSE(R.ok());
    EXPECT_EQ(R.status().code(), ErrorCode::ResourceConflict);
  }
}

TEST(PipelineRobustness, BudgetExceededCarriesPartialTrace) {
  // l2's transient is several steps long, so a one-step budget dies
  // before the repeated state (a one-transition recurrence would not).
  const LivermoreKernel *K = findKernel("l2");
  ASSERT_NE(K, nullptr);
  PipelineOptions Opts;
  Opts.FrustumBudgetSteps = 1;
  Expected<CompiledLoop> R = runPipeline(K->Source, Opts);
  ASSERT_FALSE(R.ok());
  EXPECT_EQ(R.status().code(), ErrorCode::BudgetExceeded);
  EXPECT_EQ(R.status().stage(), "frustum");
  // The message reports how far the search got before the budget died.
  EXPECT_NE(R.status().message().find("1 steps"), std::string::npos)
      << R.status().str();
  EXPECT_NE(R.status().message().find("last step fired"), std::string::npos)
      << R.status().str();
}

TEST(PipelineRobustness, DefaultBudgetIsTheoryBound) {
  // Every bundled kernel terminates comfortably inside the n^3 default.
  for (const LivermoreKernel &K : livermoreKernels()) {
    PipelineOptions Opts;
    Opts.Verify = true;
    Expected<CompiledLoop> R = runPipeline(K.Source, Opts);
    ASSERT_TRUE(R.ok()) << K.Id << ": " << R.status().str();
    // The paper's empirical claim: the frustum shows up within ~2n.
    EXPECT_TRUE(R->FrustumWithinEmpiricalBound) << K.Id;
  }
}

TEST(PipelineRobustness, EmptyLoopIsDiagnosedNotScheduled) {
  Expected<CompiledLoop> R = runPipeline("do i { }", {});
  ASSERT_FALSE(R.ok());
  EXPECT_EQ(R.status().code(), ErrorCode::InvalidNet);
  EXPECT_EQ(R.status().stage(), "petri");
}

TEST(PipelineRobustness, GraphEntryPointRevalidates) {
  // A hand-built graph goes through the same validation as frontend
  // output.
  GraphBuilder B;
  GraphBuilder::Value X = B.input("X");
  GraphBuilder::Delayed Prev = B.delayed({0.0});
  B.outputValue("out", B.add(X, Prev.value()));
  // The delayed value is never bound to a producer: takeChecked must
  // refuse the half-built recurrence.
  Expected<DataflowGraph> G = B.takeChecked();
  ASSERT_FALSE(G.ok());
  EXPECT_EQ(G.status().code(), ErrorCode::InvalidGraph);
}

TEST(PipelineRobustness, StopAfterStagesPopulateExactlyWhatTheyPromise) {
  const char *Src = "do i { init s = 0; s = s[i-1] + X[i]; out s; }";
  PipelineOptions Opts;
  Opts.StopAfter = PipelineStage::Petri;
  Expected<CompiledLoop> R = runPipeline(Src, Opts);
  ASSERT_TRUE(R.ok()) << R.status().str();
  EXPECT_TRUE(R->Pn.has_value());
  EXPECT_TRUE(R->Rate.has_value());
  EXPECT_FALSE(R->Frustum.has_value());
  EXPECT_FALSE(R->Schedule.has_value());

  Opts.StopAfter = PipelineStage::Frontend;
  Expected<CompiledLoop> R2 = runPipeline(Src, Opts);
  ASSERT_TRUE(R2.ok());
  EXPECT_FALSE(R2->S.has_value());
  EXPECT_FALSE(R2->Pn.has_value());
}

TEST(PipelineRobustness, VerifyCrossChecksFrustumAgainstCycleRatio) {
  // The tentpole acceptance check, library-level: on all six Table-1/
  // Table-2 loops the frustum-derived rate equals 1/alpha*.
  for (const char *Id :
       {"loop1", "loop3", "loop5", "loop7", "loop9", "loop12"}) {
    const LivermoreKernel *K = findKernel(Id);
    ASSERT_NE(K, nullptr) << Id;
    PipelineOptions Opts;
    Opts.Verify = true;
    Expected<CompiledLoop> R = runPipeline(K->Source, Opts);
    ASSERT_TRUE(R.ok()) << Id << ": " << R.status().str();
    ASSERT_TRUE(R->Verified);
    Rational FrustumRate = R->Frustum->computationRate(
        R->Pn->Net.transitionIds().front());
    EXPECT_EQ(FrustumRate, R->Rate->OptimalRate) << Id;
  }
}

} // namespace
