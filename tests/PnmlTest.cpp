//===- tests/PnmlTest.cpp - PNML import/export -----------------------------===//
//
// Part of the SDSP project: a reproduction of Gao, Wong & Ning,
// "A Timed Petri-Net Model for Fine-Grain Loop Scheduling", PLDI 1991.
//
//===----------------------------------------------------------------------===//
//
// The PNML interop surface (docs/INTEROP.md): the accept matrix (every
// P/T construct and timing spelling the importer honors), the reject
// matrix (every malformed or out-of-model document, each with its
// structured [InvalidInput] diagnostic), canonical-export round-trip
// byte stability, the behavior-graph occurrence-net encoding, the
// session passes (caching, rejection, fault injection), and a
// byte-truncation fuzz sweep that must never crash.
//
//===----------------------------------------------------------------------===//

#include "petri/Pnml.h"

#include "core/Session.h"
#include "petri/EarliestFiring.h"
#include "petri/MarkedGraph.h"
#include "support/FaultInjection.h"

#include "gtest/gtest.h"

#include <sstream>

using namespace sdsp;

namespace {

/// Wraps \p Body in the standard document scaffolding.
std::string doc(const std::string &Body,
                const std::string &NetAttrs = "id=\"n\"") {
  return "<?xml version=\"1.0\" encoding=\"UTF-8\"?>\n<pnml><net " +
         NetAttrs + "><page id=\"p\">" + Body + "</page></net></pnml>";
}

/// The smallest useful body: one place feeding one transition and back.
const char *RingBody = "<place id=\"q\">"
                       "<initialMarking><text>1</text></initialMarking>"
                       "</place>"
                       "<transition id=\"u\"/>"
                       "<arc id=\"a0\" source=\"q\" target=\"u\"/>"
                       "<arc id=\"a1\" source=\"u\" target=\"q\"/>";

PnmlNet parseOk(const std::string &Text) {
  Expected<PnmlNet> N = parsePnml(Text);
  EXPECT_TRUE(bool(N)) << (N ? std::string() : N.status().str());
  return N ? std::move(*N) : PnmlNet{};
}

/// Asserts \p Text is rejected and the diagnostic contains \p Fragment.
void expectReject(const std::string &Text, const std::string &Fragment) {
  Expected<PnmlNet> N = parsePnml(Text);
  ASSERT_FALSE(bool(N)) << "accepted: " << Text;
  EXPECT_EQ(N.status().code(), ErrorCode::InvalidInput);
  EXPECT_EQ(N.status().stage(), "pnml");
  EXPECT_NE(N.status().str().find(Fragment), std::string::npos)
      << "diagnostic '" << N.status().str() << "' lacks '" << Fragment
      << "'";
}

//===----------------------------------------------------------------------===//
// Accept matrix
//===----------------------------------------------------------------------===//

TEST(PnmlImport, MinimalNet) {
  PnmlNet N = parseOk(doc(RingBody));
  EXPECT_EQ(N.NetId, "n");
  ASSERT_EQ(N.Net.numPlaces(), 1u);
  ASSERT_EQ(N.Net.numTransitions(), 1u);
  EXPECT_EQ(N.Net.place(PlaceId(0u)).InitialTokens, 1u);
  EXPECT_EQ(N.Net.transition(TransitionId(0u)).ExecTime, 1u);
  EXPECT_TRUE(isMarkedGraph(N.Net));
}

TEST(PnmlImport, NamesFallBackToIds) {
  PnmlNet N = parseOk(doc(RingBody));
  EXPECT_EQ(N.Net.place(PlaceId(0u)).Name, "q");
  EXPECT_EQ(N.Net.transition(TransitionId(0u)).Name, "u");
}

TEST(PnmlImport, NameLabelsWin) {
  PnmlNet N = parseOk(
      doc("<place id=\"q\"><name><text>buffer</text></name></place>"
          "<transition id=\"u\"><name><text>op</text></name></transition>"
          "<arc id=\"a0\" source=\"q\" target=\"u\"/>"
          "<arc id=\"a1\" source=\"u\" target=\"q\"/>"));
  EXPECT_EQ(N.Net.place(PlaceId(0u)).Name, "buffer");
  EXPECT_EQ(N.Net.transition(TransitionId(0u)).Name, "op");
}

TEST(PnmlImport, SdspExecTimeAnnotation) {
  PnmlNet N = parseOk(doc(
      "<place id=\"q\"/>"
      "<transition id=\"u\"><toolspecific tool=\"sdsp\">"
      "<execTime>7</execTime></toolspecific></transition>"
      "<arc id=\"a0\" source=\"q\" target=\"u\"/>"
      "<arc id=\"a1\" source=\"u\" target=\"q\"/>"));
  EXPECT_EQ(N.Net.transition(TransitionId(0u)).ExecTime, 7u);
}

TEST(PnmlImport, TinaDelayFallback) {
  // Both spellings: a bare child and one nested inside a foreign
  // tool's toolspecific block.
  PnmlNet Bare = parseOk(doc(
      "<place id=\"q\"/>"
      "<transition id=\"u\"><delay>3</delay></transition>"
      "<arc id=\"a0\" source=\"q\" target=\"u\"/>"
      "<arc id=\"a1\" source=\"u\" target=\"q\"/>"));
  EXPECT_EQ(Bare.Net.transition(TransitionId(0u)).ExecTime, 3u);
  PnmlNet Nested = parseOk(doc(
      "<place id=\"q\"/>"
      "<transition id=\"u\"><toolspecific tool=\"tina\">"
      "<delay>4</delay></toolspecific></transition>"
      "<arc id=\"a0\" source=\"q\" target=\"u\"/>"
      "<arc id=\"a1\" source=\"u\" target=\"q\"/>"));
  EXPECT_EQ(Nested.Net.transition(TransitionId(0u)).ExecTime, 4u);
}

TEST(PnmlImport, SdspAnnotationBeatsDelay) {
  PnmlNet N = parseOk(doc(
      "<place id=\"q\"/>"
      "<transition id=\"u\"><delay>9</delay>"
      "<toolspecific tool=\"sdsp\"><execTime>2</execTime>"
      "</toolspecific></transition>"
      "<arc id=\"a0\" source=\"q\" target=\"u\"/>"
      "<arc id=\"a1\" source=\"u\" target=\"q\"/>"));
  EXPECT_EQ(N.Net.transition(TransitionId(0u)).ExecTime, 2u);
}

TEST(PnmlImport, PagesAreFlattened) {
  PnmlNet N = parseOk(
      "<pnml><net id=\"n\"><page id=\"p1\"><place id=\"q\"/></page>"
      "<page id=\"p2\"><page id=\"p3\"><transition id=\"u\"/></page>"
      "<arc id=\"a0\" source=\"q\" target=\"u\"/>"
      "<arc id=\"a1\" source=\"u\" target=\"q\"/></page></net></pnml>");
  EXPECT_EQ(N.Net.numPlaces(), 1u);
  EXPECT_EQ(N.Net.numTransitions(), 1u);
}

TEST(PnmlImport, NamespacePrefixesAreStripped) {
  PnmlNet N = parseOk(
      "<ns:pnml xmlns:ns=\"http://www.pnml.org\"><ns:net id=\"n\">"
      "<ns:page id=\"p\"><ns:place id=\"q\"/><ns:transition id=\"u\"/>"
      "<ns:arc id=\"a0\" source=\"q\" target=\"u\"/>"
      "<ns:arc id=\"a1\" source=\"u\" target=\"q\"/>"
      "</ns:page></ns:net></ns:pnml>");
  EXPECT_EQ(N.Net.numTransitions(), 1u);
}

TEST(PnmlImport, EntitiesAndCharRefs) {
  PnmlNet N = parseOk(doc(
      "<place id=\"q\"><name><text>a &lt;&amp;&gt; &#66;&#x43;</text>"
      "</name><initialMarking><text>&#50;</text></initialMarking>"
      "</place><transition id=\"u\"/>"
      "<arc id=\"a0\" source=\"q\" target=\"u\"/>"
      "<arc id=\"a1\" source=\"u\" target=\"q\"/>"));
  EXPECT_EQ(N.Net.place(PlaceId(0u)).Name, "a <&> BC");
  EXPECT_EQ(N.Net.place(PlaceId(0u)).InitialTokens, 2u);
}

TEST(PnmlImport, CommentsPisCdataAndBom) {
  PnmlNet N = parseOk(
      "\xEF\xBB\xBF<?xml version=\"1.0\"?><!-- c --><?pi data?>"
      "<pnml><net id=\"n\"><page id=\"p\">"
      "<place id=\"q\"><name><text><![CDATA[x <> y]]></text></name>"
      "</place><!-- mid --><transition id=\"u\"/>"
      "<arc id=\"a0\" source=\"q\" target=\"u\"/>"
      "<arc id=\"a1\" source=\"u\" target=\"q\"/>"
      "</page></net></pnml>");
  EXPECT_EQ(N.Net.place(PlaceId(0u)).Name, "x <> y");
}

TEST(PnmlImport, InscriptionOneIsAccepted) {
  PnmlNet N = parseOk(doc(
      "<place id=\"q\"/>"
      "<transition id=\"u\"/>"
      "<arc id=\"a0\" source=\"q\" target=\"u\">"
      "<inscription><text>1</text></inscription></arc>"
      "<arc id=\"a1\" source=\"u\" target=\"q\"/>"));
  EXPECT_EQ(N.Net.transition(TransitionId(0u)).InputPlaces.size(), 1u);
}

TEST(PnmlImport, UnknownElementsAreIgnored) {
  PnmlNet N = parseOk(doc(
      "<place id=\"q\"><graphics><position x=\"1\" y=\"2\"/></graphics>"
      "</place><transition id=\"u\"/>"
      "<arc id=\"a0\" source=\"q\" target=\"u\"><graphics/></arc>"
      "<arc id=\"a1\" source=\"u\" target=\"q\"/>"
      "<toolspecific tool=\"editor\"><zoom>2</zoom></toolspecific>"));
  EXPECT_EQ(N.Net.numPlaces(), 1u);
}

//===----------------------------------------------------------------------===//
// Reject matrix
//===----------------------------------------------------------------------===//

TEST(PnmlReject, NotXml) { expectReject("hello", "expected '<'"); }

TEST(PnmlReject, Doctype) {
  expectReject("<!DOCTYPE pnml><pnml/>", "DOCTYPE");
}

TEST(PnmlReject, Truncated) {
  expectReject("<pnml><net id=\"n\"><page id=\"p\"><place id=\"q\">",
               "is never closed");
}

TEST(PnmlReject, MismatchedEndTag) {
  expectReject("<pnml><net id=\"n\"></page></net></pnml>",
               "does not match");
}

TEST(PnmlReject, RootIsNotPnml) {
  expectReject("<html><body/></html>", "expected <pnml>");
}

TEST(PnmlReject, NoNet) {
  expectReject("<pnml></pnml>", "no <net> element");
}

TEST(PnmlReject, MultipleNets) {
  expectReject("<pnml><net id=\"a\"><page id=\"p\"><place id=\"q\"/>"
               "<transition id=\"u\"/>"
               "<arc id=\"x\" source=\"q\" target=\"u\"/>"
               "<arc id=\"y\" source=\"u\" target=\"q\"/></page></net>"
               "<net id=\"b\"/></pnml>",
               "multiple <net> elements");
}

TEST(PnmlReject, EmptyNet) {
  expectReject("<pnml><net id=\"n\"/></pnml>", "no transitions");
}

TEST(PnmlReject, DuplicateId) {
  expectReject(doc("<place id=\"q\"/><transition id=\"q\"/>"),
               "duplicate id 'q'");
}

TEST(PnmlReject, PlaceWithoutId) {
  expectReject(doc("<place/><transition id=\"u\"/>"),
               "place without an id");
}

TEST(PnmlReject, UnknownArcEndpoint) {
  expectReject(doc("<place id=\"q\"/><transition id=\"u\"/>"
                   "<arc id=\"a0\" source=\"q\" target=\"ghost\"/>"),
               "unknown node 'ghost'");
}

TEST(PnmlReject, ArcMissingEndpoint) {
  expectReject(doc("<place id=\"q\"/><transition id=\"u\"/>"
                   "<arc id=\"a0\" source=\"q\"/>"),
               "source and target");
}

TEST(PnmlReject, PlaceToPlaceArc) {
  expectReject(doc("<place id=\"q\"/><place id=\"r\"/>"
                   "<transition id=\"u\"/>"
                   "<arc id=\"a0\" source=\"q\" target=\"r\"/>"),
               "connects two places");
}

TEST(PnmlReject, TransitionToTransitionArc) {
  expectReject(doc("<place id=\"q\"/><transition id=\"u\"/>"
                   "<transition id=\"v\"/>"
                   "<arc id=\"a0\" source=\"u\" target=\"v\"/>"),
               "connects two transitions");
}

TEST(PnmlReject, ArcWeightTwo) {
  expectReject(doc("<place id=\"q\"/><transition id=\"u\"/>"
                   "<arc id=\"a0\" source=\"q\" target=\"u\">"
                   "<inscription><text>2</text></inscription></arc>"),
               "multiplicity is 1");
}

TEST(PnmlReject, DuplicateArc) {
  expectReject(doc("<place id=\"q\"/><transition id=\"u\"/>"
                   "<arc id=\"a0\" source=\"q\" target=\"u\"/>"
                   "<arc id=\"a1\" source=\"q\" target=\"u\"/>"),
               "duplicate arc");
}

TEST(PnmlReject, ZeroExecTime) {
  expectReject(doc("<place id=\"q\"/>"
                   "<transition id=\"u\"><toolspecific tool=\"sdsp\">"
                   "<execTime>0</execTime></toolspecific></transition>"),
               "tau >= 1");
}

TEST(PnmlReject, SdspAnnotationWithoutExecTime) {
  expectReject(doc("<place id=\"q\"/>"
                   "<transition id=\"u\">"
                   "<toolspecific tool=\"sdsp\"/></transition>"),
               "has no <execTime>");
}

TEST(PnmlReject, MarkingOutOfRange) {
  expectReject(doc("<place id=\"q\"><initialMarking>"
                   "<text>99999999999999999999</text>"
                   "</initialMarking></place><transition id=\"u\"/>"),
               "out of range");
}

TEST(PnmlReject, MarkingNotANumber) {
  expectReject(doc("<place id=\"q\"><initialMarking><text>two</text>"
                   "</initialMarking></place><transition id=\"u\"/>"),
               "expected a non-negative integer");
}

TEST(PnmlReject, UnknownEntity) {
  expectReject(doc("<place id=\"&copy;\"/><transition id=\"u\"/>"),
               "entity");
}

TEST(PnmlReject, CharRefBeyondUnicode) {
  expectReject(doc("<place id=\"q\"><name><text>&#x110000;</text></name>"
                   "</place><transition id=\"u\"/>"),
               "out of range");
}

TEST(PnmlReject, CharRefNul) {
  // &#x0; fits in 21 bits but NUL is not an XML Char: accepting it
  // would embed a 0 byte in the place name and poison every downstream
  // C-string consumer of the label.
  expectReject(doc("<place id=\"q\"><name><text>&#x0;</text></name>"
                   "</place><transition id=\"u\"/>"),
               "not a valid XML character");
}

TEST(PnmlReject, CharRefC0Control) {
  // Control characters other than tab/LF/CR are excluded by the XML
  // 1.0 Char production (0x1B = ESC).
  expectReject(doc("<place id=\"q\"><name><text>&#27;</text></name>"
                   "</place><transition id=\"u\"/>"),
               "not a valid XML character");
}

TEST(PnmlImport, CharRefTabLfCrAccepted) {
  // The three whitespace controls ARE XML Chars and must keep working.
  PnmlNet N = parseOk(doc("<place id=\"q\"><name>"
                          "<text>a&#x9;b&#xA;c&#xD;d</text></name>"
                          "</place><transition id=\"u\"/>"
                          "<arc id=\"a0\" source=\"q\" target=\"u\"/>"
                          "<arc id=\"a1\" source=\"u\" target=\"q\"/>"));
  EXPECT_EQ(N.Net.place(PlaceId(0u)).Name, "a\tb\nc\rd");
}

TEST(PnmlReject, CharRefSurrogate) {
  // UTF-16 surrogate halves are not characters; encoding one as UTF-8
  // (CESU-8 style) produces a byte sequence conforming decoders
  // reject.
  expectReject(doc("<place id=\"q\"><name><text>&#xD800;</text></name>"
                   "</place><transition id=\"u\"/>"),
               "not a valid XML character");
}

TEST(PnmlReject, CharRefNonCharacter) {
  expectReject(doc("<place id=\"q\"><name><text>&#xFFFE;</text></name>"
                   "</place><transition id=\"u\"/>"),
               "not a valid XML character");
}

TEST(PnmlReject, CharRefDiagnosticCarriesLine) {
  Expected<PnmlNet> N = parsePnml("<pnml>\n<net id=\"n\">\n<page id=\"p\">\n"
                                  "<place id=\"q\">\n"
                                  "<name><text>&#x0;</text></name>\n"
                                  "</place>\n<transition id=\"u\"/>\n"
                                  "</page></net></pnml>");
  ASSERT_FALSE(bool(N));
  EXPECT_NE(N.status().str().find("line 5"), std::string::npos)
      << N.status().str();
  EXPECT_EQ(N.status().code(), ErrorCode::InvalidInput);
}

TEST(PnmlReject, DepthLimit) {
  std::string Deep = "<pnml><net id=\"n\">";
  for (int I = 0; I < 70; ++I)
    Deep += "<page id=\"g\">";
  Expected<PnmlNet> N = parsePnml(Deep);
  ASSERT_FALSE(bool(N));
  EXPECT_NE(N.status().str().find("depth limit"), std::string::npos);
}

TEST(PnmlReject, DiagnosticsCarryLineNumbers) {
  Expected<PnmlNet> N = parsePnml("<pnml>\n<net id=\"n\">\n<page id=\"p\">\n"
                                  "<place id=\"q\"/>\n<place id=\"q\"/>\n"
                                  "</page></net></pnml>");
  ASSERT_FALSE(bool(N));
  EXPECT_NE(N.status().str().find("line 5"), std::string::npos)
      << N.status().str();
}

//===----------------------------------------------------------------------===//
// Round trip
//===----------------------------------------------------------------------===//

TEST(PnmlRoundTrip, CanonicalExportIsAFixpoint) {
  PetriNet Net;
  TransitionId A = Net.addTransition("load <x>", 2);
  TransitionId B = Net.addTransition("store \"y\"", 3);
  PlaceId P = Net.addPlace("a->b", 1);
  PlaceId Q = Net.addPlace("b->a", 0);
  Net.addArc(A, P);
  Net.addArc(P, B);
  Net.addArc(B, Q);
  Net.addArc(Q, A);
  std::string First = pnmlString(Net, "two_stage");
  PnmlNet Again = parseOk(First);
  EXPECT_EQ(Again.NetId, "two_stage");
  EXPECT_EQ(pnmlString(Again.Net, Again.NetId), First);
}

TEST(PnmlRoundTrip, ImportPreservesStructureExactly) {
  PetriNet Net;
  TransitionId A = Net.addTransition("a", 1);
  TransitionId B = Net.addTransition("b", 5);
  PlaceId P = Net.addPlace("p", 2);
  Net.addArc(A, P);
  Net.addArc(P, B);
  PnmlNet Again = parseOk(pnmlString(Net, "frag"));
  ASSERT_EQ(Again.Net.numTransitions(), 2u);
  EXPECT_EQ(Again.Net.transition(TransitionId(1u)).ExecTime, 5u);
  EXPECT_EQ(Again.Net.place(PlaceId(0u)).InitialTokens, 2u);
  EXPECT_EQ(Again.Net.place(PlaceId(0u)).Producers.size(), 1u);
  EXPECT_EQ(Again.Net.place(PlaceId(0u)).Consumers.size(), 1u);
}

//===----------------------------------------------------------------------===//
// Behavior-graph occurrence nets
//===----------------------------------------------------------------------===//

TEST(PnmlBehavior, OccurrenceNetOfARing) {
  PetriNet Net;
  TransitionId A = Net.addTransition("a", 1);
  TransitionId B = Net.addTransition("b", 1);
  PlaceId P = Net.addPlace("p", 1);
  PlaceId Q = Net.addPlace("q", 0);
  Net.addArc(A, Q);
  Net.addArc(Q, B);
  Net.addArc(B, P);
  Net.addArc(P, A);
  EarliestFiringEngine Engine(Net);
  std::vector<StepRecord> Trace;
  for (int I = 0; I < 4; ++I)
    Trace.push_back(Engine.fireAndAdvance());
  PetriNet Occ = behaviorNet(Net, Trace, 0, 4);
  // An occurrence net is acyclic and conflict-free: every place has at
  // most one producer and one consumer.
  EXPECT_GT(Occ.numTransitions(), 0u);
  for (PlaceId Pl : Occ.placeIds()) {
    EXPECT_LE(Occ.place(Pl).Producers.size(), 1u);
    EXPECT_LE(Occ.place(Pl).Consumers.size(), 1u);
  }
  // Occurrence names carry the source transition, occurrence index,
  // and start time.
  EXPECT_EQ(Occ.transition(TransitionId(0u)).Name, "a#0@0");
  // The exported occurrence net is itself valid PNML.
  PnmlNet Again = parseOk(pnmlString(Occ, "behavior"));
  EXPECT_EQ(Again.Net.numTransitions(), Occ.numTransitions());
}

TEST(PnmlBehavior, WindowRestrictionSeedsInitialMarking) {
  PetriNet Net;
  TransitionId A = Net.addTransition("a", 1);
  PlaceId P = Net.addPlace("p", 1);
  Net.addArc(A, P);
  Net.addArc(P, A);
  EarliestFiringEngine Engine(Net);
  std::vector<StepRecord> Trace;
  for (int I = 0; I < 6; ++I)
    Trace.push_back(Engine.fireAndAdvance());
  // Window [3, 6): tokens produced before step 3 become the initial
  // marking of the windowed occurrence net.
  PetriNet Occ = behaviorNet(Net, Trace, 3, 6);
  uint32_t Initial = 0;
  for (PlaceId Pl : Occ.placeIds())
    Initial += Occ.place(Pl).InitialTokens;
  EXPECT_GE(Initial, 1u);
  for (TransitionId T : Occ.transitionIds())
    EXPECT_EQ(Occ.transition(T).Name.find("a#"), 0u);
}

//===----------------------------------------------------------------------===//
// Session passes
//===----------------------------------------------------------------------===//

TEST(PnmlSession, ImportClassifiesAndCaches) {
  CompilationSession S(SessionConfig{true});
  std::string Text = doc(RingBody);
  Expected<ArtifactRef<ExternalNet>> First = S.importPnml(Text);
  ASSERT_TRUE(bool(First)) << First.status().str();
  EXPECT_TRUE((*First)->Class.MarkedGraph);
  EXPECT_TRUE((*First)->Class.Live);
  EXPECT_TRUE((*First)->Class.Safe);
  EXPECT_TRUE((*First)->Class.Consistent);
  size_t Hits = S.trace().totalCacheHits();
  Expected<ArtifactRef<ExternalNet>> Second = S.importPnml(Text);
  ASSERT_TRUE(bool(Second));
  EXPECT_GT(S.trace().totalCacheHits(), Hits);
  EXPECT_EQ(First->hash(), Second->hash());
}

TEST(PnmlSession, ExportMatchesFreeFunction) {
  CompilationSession S(SessionConfig{true});
  Expected<ArtifactRef<ExternalNet>> Ext = S.importPnml(doc(RingBody));
  ASSERT_TRUE(bool(Ext));
  Expected<ArtifactRef<PnmlText>> P = S.exportPnml(*Ext);
  ASSERT_TRUE(bool(P)) << P.status().str();
  EXPECT_EQ((*P)->Text, pnmlString((*Ext)->Net, (*Ext)->NetId));
  EXPECT_EQ((*P)->NetId, "n");
}

TEST(PnmlSession, RateRejectsNonLiveNets) {
  CompilationSession S(SessionConfig{true});
  // A marked graph with a token-free cycle: classification succeeds,
  // rate analysis refuses (Thm A.5.1).
  Expected<ArtifactRef<ExternalNet>> Ext = S.importPnml(
      doc("<place id=\"q\"/><transition id=\"u\"/>"
          "<arc id=\"a0\" source=\"q\" target=\"u\"/>"
          "<arc id=\"a1\" source=\"u\" target=\"q\"/>"));
  ASSERT_TRUE(bool(Ext));
  EXPECT_TRUE((*Ext)->Class.MarkedGraph);
  EXPECT_FALSE((*Ext)->Class.Live);
  Expected<ArtifactRef<RateReport>> R = S.computeRate(*Ext);
  ASSERT_FALSE(bool(R));
  EXPECT_EQ(R.status().code(), ErrorCode::InvalidNet);
}

TEST(PnmlSession, FrustumRateMatchesAnalyticRate) {
  CompilationSession S(SessionConfig{true});
  Expected<ArtifactRef<ExternalNet>> Ext = S.importPnml(doc(
      "<place id=\"q\"><initialMarking><text>1</text></initialMarking>"
      "</place><transition id=\"u\"><delay>5</delay></transition>"
      "<arc id=\"a0\" source=\"q\" target=\"u\"/>"
      "<arc id=\"a1\" source=\"u\" target=\"q\"/>"));
  ASSERT_TRUE(bool(Ext));
  Expected<ArtifactRef<RateReport>> R = S.computeRate(*Ext);
  ASSERT_TRUE(bool(R)) << R.status().str();
  EXPECT_EQ((*R)->CycleTime, Rational(5));
  Expected<ArtifactRef<FrustumInfo>> F =
      S.searchFrustum(*Ext, FrustumOptions{});
  ASSERT_TRUE(bool(F)) << F.status().str();
  EXPECT_EQ((*F)->computationRate(TransitionId(0u)), (*R)->OptimalRate);
}

TEST(PnmlSession, ParseFaultSiteFiresInsideTheCompute) {
  FaultSchedule Sched;
  Expected<FaultSchedule> Parsed = FaultSchedule::parse("pnml:parse:fail@1");
  ASSERT_TRUE(bool(Parsed));
  Sched = std::move(*Parsed);
  FaultContext Ctx(&Sched, "pnml:test");
  SessionConfig Cfg;
  Cfg.Faults = &Ctx;
  CompilationSession S(Cfg);
  Expected<ArtifactRef<ExternalNet>> First = S.importPnml(doc(RingBody));
  ASSERT_FALSE(bool(First));
  EXPECT_EQ(First.status().code(), ErrorCode::TransientFault);
  // Failures are never cached: the retry recomputes (arrival 2, no
  // trigger) and succeeds.
  Expected<ArtifactRef<ExternalNet>> Second = S.importPnml(doc(RingBody));
  ASSERT_TRUE(bool(Second)) << Second.status().str();
}

//===----------------------------------------------------------------------===//
// Truncation fuzz
//===----------------------------------------------------------------------===//

TEST(PnmlFuzz, EveryPrefixParsesOrRejectsCleanly) {
  // Every byte-prefix of a valid document must either parse or produce
  // a structured pnml-stage InvalidInput — never crash or hang.
  std::string Full = pnmlString([] {
    PetriNet Net;
    TransitionId A = Net.addTransition("a", 2);
    TransitionId B = Net.addTransition("b", 1);
    PlaceId P = Net.addPlace("p", 1);
    PlaceId Q = Net.addPlace("q", 0);
    Net.addArc(A, P);
    Net.addArc(P, B);
    Net.addArc(B, Q);
    Net.addArc(Q, A);
    return Net;
  }(), "fuzz");
  for (size_t Len = 0; Len <= Full.size(); ++Len) {
    Expected<PnmlNet> N = parsePnml(Full.substr(0, Len));
    if (!N) {
      EXPECT_EQ(N.status().code(), ErrorCode::InvalidInput) << Len;
      EXPECT_EQ(N.status().stage(), "pnml") << Len;
    } else {
      // Only prefixes that merely trim trailing whitespace may parse.
      EXPECT_EQ(Full.find_first_not_of(" \t\r\n", Len), std::string::npos)
          << Len;
    }
  }
}

} // namespace
