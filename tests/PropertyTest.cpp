//===- tests/PropertyTest.cpp - Parameterized property sweeps --------------===//
//
// Part of the SDSP project: a reproduction of Gao, Wong & Ning,
// "A Timed Petri-Net Model for Fine-Grain Loop Scheduling", PLDI 1991.
//
//===----------------------------------------------------------------------===//
//
// Property-based sweeps over randomly generated loop graphs and marked
// graphs, parameterized by (size, feedback density, seed).  These pin
// down the paper's invariants at scale rather than on single examples.
//
//===----------------------------------------------------------------------===//

#include "TestUtil.h"
#include "core/Frustum.h"
#include "core/RateAnalysis.h"
#include "core/ScheduleDerivation.h"
#include "core/ScpModel.h"
#include "core/SdspPn.h"
#include "core/SteadyStateNet.h"
#include "core/StorageOptimizer.h"
#include "dataflow/Interpreter.h"
#include "petri/CycleRatio.h"
#include "petri/MarkedGraph.h"
#include "gtest/gtest.h"

using namespace sdsp;
using namespace sdsp::testutil;

namespace {

struct LoopParams {
  size_t Ops;
  uint64_t FeedbackPercent;
  uint64_t Seed;
};

std::string paramName(const ::testing::TestParamInfo<LoopParams> &Info) {
  return "ops" + std::to_string(Info.param.Ops) + "_fb" +
         std::to_string(Info.param.FeedbackPercent) + "_seed" +
         std::to_string(Info.param.Seed);
}

class LoopProperty : public ::testing::TestWithParam<LoopParams> {
protected:
  DataflowGraph makeGraph() {
    Rng R(GetParam().Seed);
    return buildRandomLoopGraph(R, GetParam().Ops,
                                GetParam().FeedbackPercent);
  }
};

TEST_P(LoopProperty, PnIsLiveSafeMarkedGraph) {
  SdspPn Pn = buildSdspPn(Sdsp::standard(makeGraph()));
  ASSERT_TRUE(isMarkedGraph(Pn.Net));
  EXPECT_TRUE(isLiveMarkedGraph(Pn.Net));
  EXPECT_TRUE(isSafeMarkedGraph(Pn.Net));
}

TEST_P(LoopProperty, FrustumRateEqualsCriticalRatio) {
  SdspPn Pn = buildSdspPn(Sdsp::standard(makeGraph()));
  auto F = detectFrustum(Pn.Net);
  ASSERT_TRUE(F.has_value());
  Rational Optimal = analyzeRate(Pn).OptimalRate;
  for (TransitionId T : Pn.Net.transitionIds())
    EXPECT_EQ(F->computationRate(T), Optimal);
}

TEST_P(LoopProperty, FrustumCountsAreUniform) {
  // Thm A.5.3 consequence on connected components: with our generator
  // the PN is connected, so all counts agree.
  SdspPn Pn = buildSdspPn(Sdsp::standard(makeGraph()));
  auto F = detectFrustum(Pn.Net);
  ASSERT_TRUE(F.has_value());
  EXPECT_TRUE(F->hasUniformCount(Pn.Net.transitionIds()));
}

TEST_P(LoopProperty, DerivedScheduleValidates) {
  Sdsp S = Sdsp::standard(makeGraph());
  SdspPn Pn = buildSdspPn(S);
  auto F = detectFrustum(Pn.Net);
  ASSERT_TRUE(F.has_value());
  SoftwarePipelineSchedule Sched = deriveSchedule(Pn, *F);
  std::string Error;
  EXPECT_TRUE(validateSchedule(S, Pn, Sched, 40, &Error)) << Error;
}

TEST_P(LoopProperty, SteadyStateNetPreservesStructure) {
  SdspPn Pn = buildSdspPn(Sdsp::standard(makeGraph()));
  auto F = detectFrustum(Pn.Net);
  ASSERT_TRUE(F.has_value());
  SteadyStateNet SSN = buildSteadyStateNet(Pn.Net, *F);
  EXPECT_TRUE(isMarkedGraph(SSN.Net));
  EXPECT_TRUE(isLiveMarkedGraph(SSN.Net));
}

TEST_P(LoopProperty, StorageOptimizationIsSoundEverywhere) {
  Sdsp S = Sdsp::standard(makeGraph());
  StorageOptResult R = minimizeStorage(S);
  EXPECT_LE(R.StorageAfter, R.StorageBefore);
  SdspPn Pn = buildSdspPn(R.Optimized);
  EXPECT_EQ(analyzeRate(Pn).OptimalRate, R.OptimalRate);
  EXPECT_TRUE(isLiveMarkedGraph(Pn.Net));
}

TEST_P(LoopProperty, ScpRateBoundHolds) {
  SdspPn Pn = buildSdspPn(Sdsp::standard(makeGraph()));
  ScpPn Scp = buildScpPn(Pn, 4);
  auto Policy = Scp.makeFifoPolicy();
  auto F = detectFrustum(Scp.Net, Policy.get());
  ASSERT_TRUE(F.has_value());
  Rational Bound(1, static_cast<int64_t>(Scp.numSdspTransitions()));
  for (TransitionId T : Scp.SdspTransitions)
    EXPECT_LE(F->computationRate(T), Bound);
}

TEST_P(LoopProperty, CapacityMonotonicallyImprovesRate) {
  DataflowGraph G = makeGraph();
  Rational Last(0);
  for (uint32_t Cap : {1u, 2u, 3u}) {
    SdspPn Pn = buildSdspPn(Sdsp::standard(G, Cap));
    Rational Rate = analyzeRate(Pn).OptimalRate;
    EXPECT_GE(Rate, Last) << "capacity " << Cap;
    Last = Rate;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, LoopProperty,
    ::testing::Values(LoopParams{3, 0, 1}, LoopParams{3, 30, 2},
                      LoopParams{5, 0, 3}, LoopParams{5, 20, 4},
                      LoopParams{8, 10, 5}, LoopParams{8, 40, 6},
                      LoopParams{12, 15, 7}, LoopParams{12, 35, 8},
                      LoopParams{16, 10, 9}, LoopParams{16, 25, 10},
                      LoopParams{24, 20, 11}, LoopParams{32, 15, 12}),
    paramName);

//===----------------------------------------------------------------------===//
// Mixed execution times: the same invariants with tau in [1, 4]
//===----------------------------------------------------------------------===//

class TimedLoopProperty : public ::testing::TestWithParam<LoopParams> {
protected:
  DataflowGraph makeGraph() {
    Rng R(GetParam().Seed + 5000);
    return buildRandomLoopGraph(R, GetParam().Ops,
                                GetParam().FeedbackPercent,
                                /*MaxExecTime=*/4);
  }
};

TEST_P(TimedLoopProperty, FrustumRateEqualsCriticalRatio) {
  SdspPn Pn = buildSdspPn(Sdsp::standard(makeGraph()));
  auto F = detectFrustum(Pn.Net);
  ASSERT_TRUE(F.has_value());
  Rational Optimal = analyzeRate(Pn).OptimalRate;
  for (TransitionId T : Pn.Net.transitionIds())
    EXPECT_EQ(F->computationRate(T), Optimal);
}

TEST_P(TimedLoopProperty, ScheduleValidatesWithLatencies) {
  Sdsp S = Sdsp::standard(makeGraph());
  SdspPn Pn = buildSdspPn(S);
  auto F = detectFrustum(Pn.Net);
  ASSERT_TRUE(F.has_value());
  SoftwarePipelineSchedule Sched = deriveSchedule(Pn, *F);
  std::string Error;
  EXPECT_TRUE(validateSchedule(S, Pn, Sched, 40, &Error)) << Error;
}

TEST_P(TimedLoopProperty, ResidualStatesStillConverge) {
  // With tau > 1 the residual firing-time vector is nontrivial; the
  // frustum must still appear and respect the state definition.
  SdspPn Pn = buildSdspPn(Sdsp::standard(makeGraph()));
  auto F = detectFrustum(Pn.Net);
  ASSERT_TRUE(F.has_value());
  EXPECT_EQ(F->Trace.size(), F->RepeatTime);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, TimedLoopProperty,
    ::testing::Values(LoopParams{3, 20, 101}, LoopParams{5, 25, 102},
                      LoopParams{8, 15, 103}, LoopParams{8, 35, 104},
                      LoopParams{12, 20, 105}, LoopParams{16, 25, 106}),
    paramName);

//===----------------------------------------------------------------------===//
// Marked-graph-level properties
//===----------------------------------------------------------------------===//

struct NetParams {
  size_t N;
  size_t Chords;
  uint64_t Seed;
};

class NetProperty : public ::testing::TestWithParam<NetParams> {
protected:
  PetriNet makeNet() {
    Rng R(GetParam().Seed);
    return buildRandomMarkedGraph(R, GetParam().N, GetParam().Chords);
  }
};

TEST_P(NetProperty, TokenCountsInvariantUnderExecution) {
  // "The number of tokens in a simple cycle remains the same after any
  // firing sequence" (A.7) — check on every enumerated cycle after 25
  // steps.
  PetriNet Net = makeNet();
  MarkedGraphView View(Net);
  std::vector<SimpleCycle> Cycles = enumerateSimpleCycles(View);

  EarliestFiringEngine Engine(Net);
  for (int Step = 0; Step < 25; ++Step)
    Engine.fireAndAdvance();
  Engine.prepare();
  // Count in-flight tokens as belonging to the producer's output
  // places only after completion; to keep the check crisp, run until
  // quiescent sampling is impossible (the net is live), so instead
  // verify cycle counts on the *pre-fire* marking plus in-flight
  // contributions: every in-flight transition holds one token of each
  // input place's cycle... simpler and exact: compare markings reached
  // at two quiescent-residual instants.
  InstantaneousState S = Engine.state();
  bool AllIdle = true;
  for (TimeUnits R : S.Residual)
    AllIdle &= (R == 0);
  if (!AllIdle)
    return; // Only sample at all-idle instants (always true for unit
            // times; mixed times may skip).
  for (const SimpleCycle &C : Cycles) {
    uint64_t Count = 0;
    for (uint32_t EI : C.Edges)
      Count += S.M.tokens(View.edge(EI).Via);
    EXPECT_EQ(Count, C.TokenSum);
  }
}

TEST_P(NetProperty, FrustumRateMatchesParametricSearch) {
  PetriNet Net = makeNet();
  auto F = detectFrustum(Net);
  ASSERT_TRUE(F.has_value());
  MarkedGraphView View(Net);
  auto Info = criticalCycleByParametricSearch(View);
  ASSERT_TRUE(Info.has_value());
  Rational SelfLoop(0);
  for (TransitionId T : Net.transitionIds())
    SelfLoop = std::max(
        SelfLoop, Rational(static_cast<int64_t>(Net.transition(T).ExecTime)));
  Rational Expected =
      std::max(Info->CycleTime, SelfLoop).reciprocal();
  for (TransitionId T : Net.transitionIds())
    EXPECT_EQ(F->computationRate(T), Expected);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, NetProperty,
    ::testing::Values(NetParams{3, 1, 21}, NetParams{4, 2, 22},
                      NetParams{6, 3, 23}, NetParams{8, 4, 24},
                      NetParams{10, 6, 25}, NetParams{12, 8, 26},
                      NetParams{16, 10, 27}, NetParams{20, 12, 28}),
    [](const ::testing::TestParamInfo<NetParams> &Info) {
      return "n" + std::to_string(Info.param.N) + "_c" +
             std::to_string(Info.param.Chords) + "_seed" +
             std::to_string(Info.param.Seed);
    });

} // namespace
