//===- tests/RateTest.cpp - Rate analysis tests ----------------------------===//
//
// Part of the SDSP project: a reproduction of Gao, Wong & Ning,
// "A Timed Petri-Net Model for Fine-Grain Loop Scheduling", PLDI 1991.
//
//===----------------------------------------------------------------------===//

#include "core/RateAnalysis.h"

#include "TestUtil.h"
#include "gtest/gtest.h"

using namespace sdsp;
using namespace sdsp::testutil;

namespace {

TEST(RateAnalysis, L1AndL2) {
  SdspPn L1 = buildSdspPn(Sdsp::standard(buildL1()));
  RateReport R1 = analyzeRate(L1);
  EXPECT_EQ(R1.CycleTime, Rational(2));
  EXPECT_EQ(R1.OptimalRate, Rational(1, 2));
  EXPECT_GT(R1.NumCriticalCycles, 1u)
      << "every data/ack pair of L1 is critical";

  SdspPn L2 = buildSdspPn(Sdsp::standard(buildL2Direct()));
  RateReport R2 = analyzeRate(L2);
  EXPECT_EQ(R2.CycleTime, Rational(3));
  EXPECT_EQ(R2.OptimalRate, Rational(1, 3));
  // The critical cycle is C -> D -> E (-> C): exactly those three.
  std::vector<std::string> Names;
  for (TransitionId T : R2.CriticalTransitions)
    Names.push_back(L2.Net.transition(T).Name);
  std::sort(Names.begin(), Names.end());
  EXPECT_EQ(Names, (std::vector<std::string>{"C", "D", "E"}));
  EXPECT_EQ(R2.NumCriticalCycles, 1u);
}

TEST(RateAnalysis, SelfLoopBoundDominatesForSlowOps) {
  // One slow op (time 5) off every cycle: the implicit self-loop keeps
  // the rate at 1/5 even though pair cycles say 1/6... pair cycle with
  // the slow op: 5+1 = 6 -> alpha* = 6 actually dominates.  Use a
  // single-op net to isolate the self-loop bound.
  DataflowGraph G;
  NodeId In = G.addNode(OpKind::Input, "x");
  NodeId Op = G.addNode(OpKind::Neg, "slow");
  G.setExecTime(Op, 5);
  G.connect(In, 0, Op, 0);
  NodeId Out = G.addNode(OpKind::Output, "y");
  G.connect(Op, 0, Out, 0);
  SdspPn Pn = buildSdspPn(Sdsp::standard(G));
  ASSERT_EQ(Pn.Net.numPlaces(), 0u) << "no interior arcs";
  RateReport R = analyzeRate(Pn);
  EXPECT_EQ(R.CycleTime, Rational(5));
  EXPECT_EQ(R.OptimalRate, Rational(1, 5));
  EXPECT_EQ(R.NumCriticalCycles, 0u);
}

TEST(RateAnalysis, BalancingRatio) {
  SimpleCycle C;
  C.ValueSum = 3;
  C.TokenSum = 1;
  EXPECT_EQ(balancingRatio(C), Rational(1, 3));
}

TEST(RateAnalysis, BdBounds) {
  EXPECT_EQ(boundBdSdspPn(5), 10u);
  EXPECT_EQ(boundBdScpPn(5, 8), 80u);
}

TEST(RateAnalysis, CapacityTwoLiftsDoallToRateOne) {
  // The FIFO-queued extension (Section 7): with 2-deep buffers the
  // ack round trip no longer throttles L1; rate becomes 1 (self-loop
  // bound).
  SdspPn Pn = buildSdspPn(Sdsp::standard(buildL1(), /*Capacity=*/2));
  RateReport R = analyzeRate(Pn);
  EXPECT_EQ(R.OptimalRate, Rational(1));
  auto F = detectFrustum(Pn.Net);
  ASSERT_TRUE(F.has_value());
  for (TransitionId T : Pn.Net.transitionIds())
    EXPECT_EQ(F->computationRate(T), Rational(1));
}

TEST(RateAnalysis, CapacityCannotBeatTheLoopCarriedBound) {
  // L2's C-D-E-C cycle is made of data arcs only; no buffering change
  // can raise the rate above 1/3 (Section 6's "hard upper bound").
  for (uint32_t Cap : {1u, 2u, 4u, 16u}) {
    SdspPn Pn = buildSdspPn(Sdsp::standard(buildL2Direct(), Cap));
    RateReport R = analyzeRate(Pn);
    EXPECT_EQ(R.OptimalRate, Rational(1, 3)) << "capacity " << Cap;
  }
}

} // namespace
