//===- tests/RationalTest.cpp - Exact rational arithmetic tests ------------===//
//
// Part of the SDSP project: a reproduction of Gao, Wong & Ning,
// "A Timed Petri-Net Model for Fine-Grain Loop Scheduling", PLDI 1991.
//
//===----------------------------------------------------------------------===//

#include "support/Rational.h"

#include "gtest/gtest.h"

#include <cstdint>
#include <sstream>

using namespace sdsp;

namespace {

TEST(Rational, NormalizesToLowestTerms) {
  Rational R(6, 4);
  EXPECT_EQ(R.num(), 3);
  EXPECT_EQ(R.den(), 2);
  Rational Neg(3, -9);
  EXPECT_EQ(Neg.num(), -1);
  EXPECT_EQ(Neg.den(), 3);
  EXPECT_EQ(Rational(0, 7), Rational(0));
}

TEST(Rational, Arithmetic) {
  Rational A(1, 2), B(1, 3);
  EXPECT_EQ(A + B, Rational(5, 6));
  EXPECT_EQ(A - B, Rational(1, 6));
  EXPECT_EQ(A * B, Rational(1, 6));
  EXPECT_EQ(A / B, Rational(3, 2));
  EXPECT_EQ(-A, Rational(-1, 2));
}

TEST(Rational, Comparison) {
  EXPECT_LT(Rational(2, 3), Rational(3, 4));
  EXPECT_LT(Rational(-1, 2), Rational(1, 3));
  EXPECT_GE(Rational(5, 5), Rational(1));
  EXPECT_LE(Rational(7, 3), Rational(7, 3));
  EXPECT_GT(Rational(5, 2), Rational(2));
}

TEST(Rational, FloorCeil) {
  EXPECT_EQ(Rational(7, 2).floor(), 3);
  EXPECT_EQ(Rational(7, 2).ceil(), 4);
  EXPECT_EQ(Rational(-7, 2).floor(), -4);
  EXPECT_EQ(Rational(-7, 2).ceil(), -3);
  EXPECT_EQ(Rational(6, 3).floor(), 2);
  EXPECT_EQ(Rational(6, 3).ceil(), 2);
}

TEST(Rational, ReciprocalAndPredicates) {
  EXPECT_EQ(Rational(3, 7).reciprocal(), Rational(7, 3));
  EXPECT_TRUE(Rational(0).isZero());
  EXPECT_TRUE(Rational(4, 2).isInteger());
  EXPECT_FALSE(Rational(5, 2).isInteger());
}

TEST(Rational, Printing) {
  EXPECT_EQ(Rational(5, 2).str(), "5/2");
  EXPECT_EQ(Rational(4, 2).str(), "2");
  std::ostringstream OS;
  OS << Rational(-3, 6);
  EXPECT_EQ(OS.str(), "-1/2");
}

TEST(Rational, CycleRatioUseCase) {
  // Omega/M comparisons that motivated exactness: 10/3 vs 7/2 must not
  // be confused by rounding.
  Rational A(10, 3), B(7, 2);
  EXPECT_LT(A, B);
  EXPECT_EQ(std::max(A, B), B);
}

// Overflow regressions: every case below cross-multiplied raw int64 in
// the pre-__int128 implementation, which is signed-overflow UB (aborts
// under -fsanitize=undefined) and, with wraparound semantics, silently
// misorders the operands.

TEST(Rational, ComparisonNearInt64MaxDoesNotOverflow) {
  constexpr int64_t Max = INT64_MAX;
  // (Max-1)/Max < Max/(Max-1): cross products are ~2^126.
  EXPECT_LT(Rational(Max - 1, Max), Rational(Max, Max - 1));
  EXPECT_GT(Rational(Max, Max - 1), Rational(Max - 1, Max));
  // Adjacent huge ratios: (2^62+1)/2^62 vs 2^62/(2^62-1) differ by
  // 1/(2^62 * (2^62-1)); cross multiplication is 2^124-1 vs 2^124.
  constexpr int64_t H = int64_t(1) << 62;
  EXPECT_LT(Rational(H + 1, H), Rational(H, H - 1));
  EXPECT_FALSE(Rational(H, H - 1) < Rational(H + 1, H));
  // Mixed signs at full magnitude.
  EXPECT_LT(Rational(-Max, 2), Rational(Max, 2));
  EXPECT_LT(Rational(INT64_MIN, Max), Rational(Max, Max));
}

TEST(Rational, ArithmeticNearInt64MaxDoesNotOverflow) {
  constexpr int64_t Max = INT64_MAX;
  // Num * B.Den = Max * 2 overflows before reduction.
  EXPECT_EQ(Rational(Max, 2) + Rational(Max, 2), Rational(Max));
  EXPECT_EQ(Rational(Max, 2) - Rational(Max, 2), Rational(0));
  // Unreduced numerator Max*3 - Max*2, denominator 6.
  EXPECT_EQ(Rational(Max, 2) - Rational(Max, 3), Rational(Max, 6));
  // Num * B.Num = Max * Max; the reduced product is exactly 1.
  EXPECT_EQ(Rational(Max, 3) * Rational(3, Max), Rational(1));
  EXPECT_EQ(Rational(Max, 2) / Rational(Max, 4), Rational(2));
  EXPECT_EQ(Rational(1, Max) * Rational(Max, 1), Rational(1));
}

TEST(Rational, Int64MinEdgeCases) {
  constexpr int64_t Min = INT64_MIN;
  // -Num with Num == INT64_MIN was UB in the constructor, floor(), and
  // unary minus.
  Rational M(Min, 1);
  EXPECT_EQ(M.floor(), Min);
  EXPECT_EQ(M.ceil(), Min);
  EXPECT_EQ(Rational(Min, 2), Rational(Min / 2, 1));
  EXPECT_EQ(Rational(Min + 1, 2).floor(), Min / 2);
  EXPECT_EQ(Rational(Min + 1, 2).ceil(), Min / 2 + 1);
  // Negative denominator at full magnitude: sign moves to the numerator
  // through the 128-bit path.
  EXPECT_EQ(Rational(2, Min), Rational(-1, Min / -2));
  EXPECT_EQ(-Rational(Min, 2), Rational(Min / -2, 1));
  EXPECT_EQ(Rational(Min, 2).reciprocal(), Rational(2, Min));
}

TEST(Rational, RateAnalysisNearOverflow) {
  // Long-latency cycle ratios Omega(C)/M(C) close to INT64_MAX: the
  // critical-cycle max must still be classified exactly.
  constexpr int64_t Omega1 = INT64_MAX - 2, Omega2 = INT64_MAX - 1;
  Rational R1(Omega1, 3), R2(Omega2, 3);
  EXPECT_LT(R1, R2);
  EXPECT_EQ(std::max(R1, R2), R2);
  // Equal ratios written with different huge terms reduce identically.
  EXPECT_EQ(Rational(Omega2, Omega2), Rational(1));
  Rational Alpha = std::max(R1, R2);
  EXPECT_EQ(Alpha.reciprocal(), Rational(3, Omega2));
}

} // namespace
