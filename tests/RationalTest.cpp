//===- tests/RationalTest.cpp - Exact rational arithmetic tests ------------===//
//
// Part of the SDSP project: a reproduction of Gao, Wong & Ning,
// "A Timed Petri-Net Model for Fine-Grain Loop Scheduling", PLDI 1991.
//
//===----------------------------------------------------------------------===//

#include "support/Rational.h"

#include "gtest/gtest.h"

#include <sstream>

using namespace sdsp;

namespace {

TEST(Rational, NormalizesToLowestTerms) {
  Rational R(6, 4);
  EXPECT_EQ(R.num(), 3);
  EXPECT_EQ(R.den(), 2);
  Rational Neg(3, -9);
  EXPECT_EQ(Neg.num(), -1);
  EXPECT_EQ(Neg.den(), 3);
  EXPECT_EQ(Rational(0, 7), Rational(0));
}

TEST(Rational, Arithmetic) {
  Rational A(1, 2), B(1, 3);
  EXPECT_EQ(A + B, Rational(5, 6));
  EXPECT_EQ(A - B, Rational(1, 6));
  EXPECT_EQ(A * B, Rational(1, 6));
  EXPECT_EQ(A / B, Rational(3, 2));
  EXPECT_EQ(-A, Rational(-1, 2));
}

TEST(Rational, Comparison) {
  EXPECT_LT(Rational(2, 3), Rational(3, 4));
  EXPECT_LT(Rational(-1, 2), Rational(1, 3));
  EXPECT_GE(Rational(5, 5), Rational(1));
  EXPECT_LE(Rational(7, 3), Rational(7, 3));
  EXPECT_GT(Rational(5, 2), Rational(2));
}

TEST(Rational, FloorCeil) {
  EXPECT_EQ(Rational(7, 2).floor(), 3);
  EXPECT_EQ(Rational(7, 2).ceil(), 4);
  EXPECT_EQ(Rational(-7, 2).floor(), -4);
  EXPECT_EQ(Rational(-7, 2).ceil(), -3);
  EXPECT_EQ(Rational(6, 3).floor(), 2);
  EXPECT_EQ(Rational(6, 3).ceil(), 2);
}

TEST(Rational, ReciprocalAndPredicates) {
  EXPECT_EQ(Rational(3, 7).reciprocal(), Rational(7, 3));
  EXPECT_TRUE(Rational(0).isZero());
  EXPECT_TRUE(Rational(4, 2).isInteger());
  EXPECT_FALSE(Rational(5, 2).isInteger());
}

TEST(Rational, Printing) {
  EXPECT_EQ(Rational(5, 2).str(), "5/2");
  EXPECT_EQ(Rational(4, 2).str(), "2");
  std::ostringstream OS;
  OS << Rational(-3, 6);
  EXPECT_EQ(OS.str(), "-1/2");
}

TEST(Rational, CycleRatioUseCase) {
  // Omega/M comparisons that motivated exactness: 10/3 vs 7/2 must not
  // be confused by rounding.
  Rational A(10, 3), B(7, 2);
  EXPECT_LT(A, B);
  EXPECT_EQ(std::max(A, B), B);
}

} // namespace
