//===- tests/ReachabilityTest.cpp - Forward marking class tests ------------===//
//
// Part of the SDSP project: a reproduction of Gao, Wong & Ning,
// "A Timed Petri-Net Model for Fine-Grain Loop Scheduling", PLDI 1991.
//
//===----------------------------------------------------------------------===//

#include "petri/ReachabilityGraph.h"

#include "TestUtil.h"
#include "gtest/gtest.h"

using namespace sdsp;
using namespace sdsp::testutil;

namespace {

TEST(Reachability, RingStateCount) {
  // One token on a ring of N: exactly N reachable markings.
  ReachabilityGraph G = exploreReachability(buildRing(4, 1));
  EXPECT_TRUE(G.Complete);
  EXPECT_EQ(G.States.size(), 4u);
  EXPECT_TRUE(isSafe(G));
  EXPECT_TRUE(isBounded(G, 1));
}

TEST(Reachability, LivenessOracle) {
  PetriNet Live = buildRing(3, 1);
  ReachabilityGraph LG = exploreReachability(Live);
  EXPECT_TRUE(isLive(Live, LG));

  PetriNet Dead = buildRing(3, 0);
  ReachabilityGraph DG = exploreReachability(Dead);
  EXPECT_FALSE(isLive(Dead, DG));
  EXPECT_EQ(DG.States.size(), 1u) << "nothing can fire";
}

TEST(Reachability, UnsafeNetDetected) {
  // Producer with a free-running source fills a place unboundedly; cap
  // exploration and check boundedness at small thresholds.
  PetriNet Net;
  TransitionId Src = Net.addTransition("src");
  TransitionId Snk = Net.addTransition("snk");
  PlaceId P = Net.addPlace("p", 0);
  PlaceId Gate = Net.addPlace("gate", 1);
  Net.addArc(Src, P);
  Net.addArc(P, Snk);
  Net.addArc(Gate, Snk);
  Net.addArc(Snk, Gate);
  ReachabilityGraph G = exploreReachability(Net, 64);
  EXPECT_FALSE(G.Complete) << "src fires forever, states blow up";
  EXPECT_FALSE(isBounded(G, 1));
}

TEST(Reachability, PersistenceOracle) {
  // Marked graphs are persistent...
  PetriNet MG = buildRing(3, 2);
  ReachabilityGraph G1 = exploreReachability(MG);
  EXPECT_TRUE(isPersistent(MG, G1));

  // ...a shared input place whose consumers do not immediately refill
  // it is not: firing one steals the token from the other.
  PetriNet Conflict;
  TransitionId A = Conflict.addTransition("a");
  TransitionId B = Conflict.addTransition("b");
  PlaceId P = Conflict.addPlace("p", 1);
  PlaceId SinkA = Conflict.addPlace("sa", 0);
  PlaceId SinkB = Conflict.addPlace("sb", 0);
  Conflict.addArc(P, A);
  Conflict.addArc(P, B);
  Conflict.addArc(A, SinkA);
  Conflict.addArc(B, SinkB);
  ReachabilityGraph G2 = exploreReachability(Conflict);
  EXPECT_FALSE(isPersistent(Conflict, G2));
}

TEST(Reachability, SuccessorsAreConsistent) {
  PetriNet Net = buildRing(3, 1);
  ReachabilityGraph G = exploreReachability(Net);
  for (size_t S = 0; S < G.States.size(); ++S) {
    for (auto [T, D] : G.Succ[S]) {
      Marking M = G.States[S];
      ASSERT_TRUE(Net.isEnabled(T, M));
      Net.fire(T, M);
      EXPECT_EQ(M, G.States[D]);
    }
  }
}

TEST(Reachability, MarkedGraphTheoremsAgreeWithOracle) {
  // Cross-check the structural theorems against explicit exploration
  // on random SDSP-style graphs.
  Rng R(77);
  for (int Trial = 0; Trial < 10; ++Trial) {
    PetriNet Net = buildRandomMarkedGraph(R, 3 + Trial % 4, Trial % 3);
    ReachabilityGraph G = exploreReachability(Net, 1 << 16);
    ASSERT_TRUE(G.Complete);
    EXPECT_TRUE(isLive(Net, G)) << "trial " << Trial;
    EXPECT_TRUE(isSafe(G)) << "trial " << Trial;
    EXPECT_TRUE(isPersistent(Net, G)) << "trial " << Trial;
  }
}

} // namespace
