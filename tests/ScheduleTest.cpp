//===- tests/ScheduleTest.cpp - Schedule derivation tests ------------------===//
//
// Part of the SDSP project: a reproduction of Gao, Wong & Ning,
// "A Timed Petri-Net Model for Fine-Grain Loop Scheduling", PLDI 1991.
//
//===----------------------------------------------------------------------===//

#include "core/ScheduleDerivation.h"

#include "TestUtil.h"
#include "core/RateAnalysis.h"
#include "gtest/gtest.h"

#include <algorithm>
#include <sstream>

using namespace sdsp;
using namespace sdsp::testutil;

namespace {

struct Derived {
  Sdsp S;
  SdspPn Pn;
  SoftwarePipelineSchedule Sched;
};

Derived derive(DataflowGraph G) {
  Sdsp S = Sdsp::standard(std::move(G));
  SdspPn Pn = buildSdspPn(S);
  auto F = detectFrustum(Pn.Net);
  EXPECT_TRUE(F.has_value());
  SoftwarePipelineSchedule Sched = deriveSchedule(Pn, *F);
  return Derived{std::move(S), std::move(Pn), std::move(Sched)};
}

TEST(Schedule, L1KernelRateIsOptimal) {
  Derived D = derive(buildL1());
  EXPECT_EQ(D.Sched.rate(), Rational(1, 2));
  EXPECT_EQ(D.Sched.initiationInterval(), Rational(2));
}

TEST(Schedule, L1ValidatesAgainstSemantics) {
  Derived D = derive(buildL1());
  std::string Error;
  EXPECT_TRUE(validateSchedule(D.S, D.Pn, D.Sched, 64, &Error)) << Error;
}

TEST(Schedule, L2ValidatesAndHitsOneThird) {
  Derived D = derive(buildL2Direct());
  EXPECT_EQ(D.Sched.rate(), Rational(1, 3));
  std::string Error;
  EXPECT_TRUE(validateSchedule(D.S, D.Pn, D.Sched, 64, &Error)) << Error;
}

TEST(Schedule, StartTimesAreMonotonePerTransition) {
  Derived D = derive(buildL2Direct());
  for (TransitionId T : D.Pn.Net.transitionIds()) {
    TimeStep Prev = D.Sched.startTime(T, 0);
    for (uint64_t M = 1; M < 32; ++M) {
      TimeStep Cur = D.Sched.startTime(T, M);
      EXPECT_GT(Cur, Prev);
      Prev = Cur;
    }
  }
}

TEST(Schedule, SteadyStateSpacingEqualsInitiationInterval) {
  Derived D = derive(buildL2Direct());
  // Past the prologue, consecutive kernel periods shift by exactly p.
  for (TransitionId T : D.Pn.Net.transitionIds()) {
    uint32_t K = D.Sched.iterationsPerKernel();
    TimeStep A = D.Sched.startTime(T, 10);
    TimeStep B = D.Sched.startTime(T, 10 + K);
    EXPECT_EQ(B - A, D.Sched.kernelLength());
  }
}

TEST(Schedule, ValidatorCatchesBrokenDependence) {
  // Hand-build an invalid schedule: everything at the same slot each
  // iteration, period 1 — dependences within an iteration must fail.
  Sdsp S = Sdsp::standard(buildL1());
  SdspPn Pn = buildSdspPn(S);
  SoftwarePipelineSchedule Bad(Pn.Net.numTransitions(), 0, 1, 1);
  for (TransitionId T : Pn.Net.transitionIds())
    Bad.addKernelOp(0, T, 0);
  std::string Error;
  EXPECT_FALSE(validateSchedule(S, Pn, Bad, 8, &Error));
  EXPECT_FALSE(Error.empty());
}

TEST(Schedule, ValidatorRejectsRateAboveOptimal) {
  // A rate-1 schedule of L1 (optimal is 1/2) must fail validation:
  // either a dependence or an acknowledgement capacity breaks.
  Sdsp S = Sdsp::standard(buildL1());
  SdspPn Pn = buildSdspPn(S);
  SoftwarePipelineSchedule Bad(Pn.Net.numTransitions(), 0, 2, 2);
  for (TransitionId T : Pn.Net.transitionIds()) {
    Bad.addKernelOp(0, T, 0);
    Bad.addKernelOp(1, T, 1);
  }
  std::string Error;
  EXPECT_FALSE(validateSchedule(S, Pn, Bad, 8, &Error));
}

TEST(Schedule, ValidatorCatchesPureCapacityViolation) {
  // Two-op chain u -> v with exec time 1, capacity 1.  Schedule both at
  // rate 1 with v lagging u by 1 cycle: every RAW dependence holds, but
  // u's iteration m must wait for v's ack of iteration m-1, which lands
  // at time m+1 > m.  Only the ack check can catch this.
  GraphBuilder B;
  auto U = B.identity(B.input("x"), "u");
  auto V = B.identity(U, "v");
  B.outputValue("y", V);
  Sdsp S = Sdsp::standard(B.take());
  SdspPn Pn = buildSdspPn(S);
  ASSERT_EQ(Pn.Net.numTransitions(), 2u);
  TransitionId TU, TV;
  for (TransitionId T : Pn.Net.transitionIds())
    (Pn.Net.transition(T).Name == "u" ? TU : TV) = T;

  SoftwarePipelineSchedule Bad(2, 1, 1, 1);
  Bad.addPrologueOp(0, TU, 0);
  Bad.addKernelOp(0, TV, 0); // v at 1, 2, 3, ...
  // u's kernel occurrence: iteration 1 at time 1+0=1? addKernelOp slots
  // are within [0,p); u iteration m at time 1 + (m-1).
  Bad.addKernelOp(0, TU, 1);
  std::string Error;
  EXPECT_FALSE(validateSchedule(S, Pn, Bad, 8, &Error));
  EXPECT_NE(Error.find("capacity"), std::string::npos) << Error;
}

TEST(Schedule, TimelineShowsOverlappingIterations) {
  Derived D = derive(buildL2Direct());
  std::vector<std::string> Names;
  std::vector<uint32_t> Taus;
  for (TransitionId T : D.Pn.Net.transitionIds()) {
    Names.push_back(D.Pn.Net.transition(T).Name);
    Taus.push_back(D.Pn.Net.transition(T).ExecTime);
  }
  std::ostringstream OS;
  D.Sched.printTimeline(OS, Names, Taus, 16);
  std::string Out = OS.str();
  // One row per transition plus the ruler.
  EXPECT_EQ(std::count(Out.begin(), Out.end(), '\n'), 6);
  // Iterations 0 and 1 overlap in time: digits of both appear.
  EXPECT_NE(Out.find('0'), std::string::npos);
  EXPECT_NE(Out.find('1'), std::string::npos);
  // The ruler marks kernel-period boundaries.
  EXPECT_NE(Out.find('|'), std::string::npos);
}

TEST(Schedule, PrintShowsKernelTable) {
  Derived D = derive(buildL1());
  std::vector<std::string> Names;
  for (TransitionId T : D.Pn.Net.transitionIds())
    Names.push_back(D.Pn.Net.transition(T).Name);
  std::ostringstream OS;
  D.Sched.print(OS, Names);
  std::string Out = OS.str();
  EXPECT_NE(Out.find("kernel (p=2, k=1"), std::string::npos) << Out;
  EXPECT_NE(Out.find("A(i"), std::string::npos);
}

/// x_i = f(x_{i-2}) through a 5-op chain: alpha* = 5/2, so the kernel
/// must span k = 2 iterations in p = 5 cycles — the fractional-rate
/// regime integer-II methods cannot reach.
DataflowGraph buildFractionalRecurrence() {
  GraphBuilder B;
  NodeId A0 = B.graph().addNode(OpKind::Add, "a0");
  GraphBuilder::Value X = B.input("x");
  B.graph().connect(X.N, X.Port, A0, 0);
  GraphBuilder::Value V{A0, 0};
  for (int I = 1; I < 5; ++I)
    V = B.add(V, B.constant(0.0), "a" + std::to_string(I));
  B.graph().connectFeedback(V.N, V.Port, A0, 1, {0.0, 0.0});
  B.outputValue("y", V);
  return B.take();
}

TEST(Schedule, FractionalRateKernelSpansTwoIterations) {
  Derived D = derive(buildFractionalRecurrence());
  EXPECT_EQ(D.Sched.rate(), Rational(2, 5));
  EXPECT_GE(D.Sched.iterationsPerKernel(), 2u);
  std::string Error;
  EXPECT_TRUE(validateSchedule(D.S, D.Pn, D.Sched, 64, &Error)) << Error;

  // Consecutive iterations are NOT equally spaced (that is the point):
  // spacing alternates while every k-th firing advances by exactly p.
  TransitionId T(0u);
  uint32_t K = D.Sched.iterationsPerKernel();
  TimeStep P = D.Sched.kernelLength();
  for (uint64_t M = 4; M < 20; ++M)
    EXPECT_EQ(D.Sched.startTime(T, M + K), D.Sched.startTime(T, M) + P);
}

TEST(Schedule, RandomGraphSchedulesValidate) {
  Rng R(555);
  for (int Trial = 0; Trial < 12; ++Trial) {
    DataflowGraph G = buildRandomLoopGraph(R, 3 + Trial % 6, 20);
    Sdsp S = Sdsp::standard(G);
    SdspPn Pn = buildSdspPn(S);
    auto F = detectFrustum(Pn.Net);
    ASSERT_TRUE(F.has_value());
    SoftwarePipelineSchedule Sched = deriveSchedule(Pn, *F);
    std::string Error;
    EXPECT_TRUE(validateSchedule(S, Pn, Sched, 48, &Error))
        << "trial " << Trial << ": " << Error;
    EXPECT_EQ(Sched.rate(), analyzeRate(Pn).OptimalRate)
        << "trial " << Trial;
  }
}

} // namespace
