//===- tests/ScpTest.cpp - SDSP-SCP-PN model tests -------------------------===//
//
// Part of the SDSP project: a reproduction of Gao, Wong & Ning,
// "A Timed Petri-Net Model for Fine-Grain Loop Scheduling", PLDI 1991.
//
//===----------------------------------------------------------------------===//

#include "core/ScpModel.h"

#include "TestUtil.h"
#include "core/Frustum.h"
#include "core/RateAnalysis.h"
#include "core/SdspPn.h"
#include "petri/ReachabilityGraph.h"
#include "gtest/gtest.h"

using namespace sdsp;
using namespace sdsp::testutil;

namespace {

TEST(ScpModel, DepthOneHasNoDummies) {
  SdspPn Pn = buildSdspPn(Sdsp::standard(buildL1()));
  ScpPn Scp = buildScpPn(Pn, 1);
  EXPECT_TRUE(Scp.DummyTransitions.empty())
      << "l = 1 leaves no dummy transitions (Section 5.2)";
  EXPECT_EQ(Scp.Net.numTransitions(), Pn.Net.numTransitions());
  // Original places plus the run place.
  EXPECT_EQ(Scp.Net.numPlaces(), Pn.Net.numPlaces() + 1);
}

TEST(ScpModel, SeriesExpansionShape) {
  SdspPn Pn = buildSdspPn(Sdsp::standard(buildL1()));
  ScpPn Scp = buildScpPn(Pn, 8);
  // One dummy per original place, exec time l-1.
  EXPECT_EQ(Scp.DummyTransitions.size(), Pn.Net.numPlaces());
  for (TransitionId T : Scp.DummyTransitions)
    EXPECT_EQ(Scp.Net.transition(T).ExecTime, 7u);
  for (TransitionId T : Scp.SdspTransitions)
    EXPECT_EQ(Scp.Net.transition(T).ExecTime, 1u);
  // Each original place became pre+post; plus the run place.
  EXPECT_EQ(Scp.Net.numPlaces(), 2 * Pn.Net.numPlaces() + 1);
}

TEST(ScpModel, RunPlaceIsTheOnlyStructuralConflict) {
  SdspPn Pn = buildSdspPn(Sdsp::standard(buildL2Direct()));
  ScpPn Scp = buildScpPn(Pn, 4);
  for (PlaceId P : Scp.Net.placeIds()) {
    size_t Consumers = Scp.Net.place(P).Consumers.size();
    if (P == Scp.RunPlace)
      EXPECT_EQ(Consumers, Scp.numSdspTransitions());
    else
      EXPECT_LE(Consumers, 1u);
  }
}

TEST(ScpModel, FrustumExistsUnderFifo) {
  // Lemma 5.2.1: the behavior graph of an SDSP-SCP-PN repeats.
  SdspPn Pn = buildSdspPn(Sdsp::standard(buildL1()));
  ScpPn Scp = buildScpPn(Pn, 2);
  auto Policy = Scp.makeFifoPolicy();
  auto F = detectFrustum(Scp.Net, Policy.get());
  ASSERT_TRUE(F.has_value());
  EXPECT_TRUE(F->hasUniformCount(Scp.SdspTransitions));
}

TEST(ScpModel, Theorem522RateBound) {
  // No SDSP transition can exceed 1/n on a single clean pipeline.
  for (uint32_t Depth : {1u, 2u, 8u}) {
    SdspPn Pn = buildSdspPn(Sdsp::standard(buildL1()));
    ScpPn Scp = buildScpPn(Pn, Depth);
    auto Policy = Scp.makeFifoPolicy();
    auto F = detectFrustum(Scp.Net, Policy.get());
    ASSERT_TRUE(F.has_value()) << "depth " << Depth;
    Rational Bound(1, static_cast<int64_t>(Scp.numSdspTransitions()));
    for (TransitionId T : Scp.SdspTransitions)
      EXPECT_LE(F->computationRate(T), Bound) << "depth " << Depth;
  }
}

TEST(ScpModel, DepthOneL1SaturatesThePipeline) {
  // L1 with l = 1: five independent-ish ops, one issue slot; the FIFO
  // machine never idles, so usage is 100% and the rate is exactly 1/5
  // (the paper's steady firing sequence A D B C E).
  SdspPn Pn = buildSdspPn(Sdsp::standard(buildL1()));
  ScpPn Scp = buildScpPn(Pn, 1);
  auto Policy = Scp.makeFifoPolicy();
  auto F = detectFrustum(Scp.Net, Policy.get());
  ASSERT_TRUE(F.has_value());
  EXPECT_EQ(processorUsage(Scp, *F), Rational(1));
  for (TransitionId T : Scp.SdspTransitions)
    EXPECT_EQ(F->computationRate(T), Rational(1, 5));
}

TEST(ScpModel, DeepPipelineLimitedByAckRoundTrip) {
  // With one-token-per-arc buffering, a producer/consumer round trip
  // costs 2l cycles; for L1 at l = 8 that (16) exceeds the issue bound
  // (5), so the rate falls to at most 1/16 — and can dip a little
  // further because the FIFO issue slot occasionally delays the
  // critical round trip (greedy resource arbitration is not optimal;
  // Section 7 notes time-optimality under resources is NP-complete).
  SdspPn Pn = buildSdspPn(Sdsp::standard(buildL1()));
  ScpPn Scp = buildScpPn(Pn, 8);
  auto Policy = Scp.makeFifoPolicy();
  auto F = detectFrustum(Scp.Net, Policy.get());
  ASSERT_TRUE(F.has_value());
  Rational Measured = F->computationRate(Scp.SdspTransitions.front());
  for (TransitionId T : Scp.SdspTransitions)
    EXPECT_EQ(F->computationRate(T), Measured);
  EXPECT_LE(Measured, Rational(1, 16)) << "ack round-trip bound";
  EXPECT_GE(Measured, Rational(1, 24)) << "sanity: near the bound";
  EXPECT_EQ(processorUsage(Scp, *F), Rational(5) * Measured);
}

TEST(ScpModel, MultiplePipelinesRaiseTheBoundProportionally) {
  // k clean pipelines: rate <= k/n, monotone in k, and with k >= n the
  // machine no longer constrains the DOALL loop (back to the SDSP-PN
  // rate 1/2 at l = 1).
  SdspPn Pn = buildSdspPn(Sdsp::standard(buildL1()));
  Rational Last(0);
  for (uint32_t Pipes : {1u, 2u, 3u, 5u}) {
    ScpPn Scp = buildScpPn(Pn, /*PipelineDepth=*/1, Pipes);
    auto Policy = Scp.makeFifoPolicy();
    auto F = detectFrustum(Scp.Net, Policy.get());
    ASSERT_TRUE(F.has_value()) << Pipes << " pipelines";
    Rational Rate = F->computationRate(Scp.SdspTransitions.front());
    EXPECT_LE(Rate,
              Rational(Pipes, static_cast<int64_t>(
                                  Scp.numSdspTransitions())));
    EXPECT_GE(Rate, Last) << "monotone in pipeline count";
    EXPECT_LE(processorUsage(Scp, *F), Rational(1));
    Last = Rate;
  }
  EXPECT_EQ(Last, Rational(1, 2)) << "5 pipelines = unconstrained L1";
}

TEST(ScpModel, LifoPolicyAlsoReachesASteadyState) {
  // Assumption 5.2.1 only needs determinism + no idling; LIFO works
  // too (the ablation compares achieved rates).
  SdspPn Pn = buildSdspPn(Sdsp::standard(buildL2Direct()));
  ScpPn Scp = buildScpPn(Pn, 2);
  auto Policy = Scp.makeLifoPolicy();
  auto F = detectFrustum(Scp.Net, Policy.get());
  ASSERT_TRUE(F.has_value());
}

TEST(ScpModel, Theorem521LiveAndSafeByReachabilityOracle) {
  // Theorem 5.2.1: the SDSP-SCP-PN is live and safe whenever the
  // SDSP-PN is.  The combined net is not a marked graph (the run place
  // has n consumers), so check with the explicit reachability oracle
  // on the small L1 nets.
  for (uint32_t Depth : {1u, 2u}) {
    SdspPn Pn = buildSdspPn(Sdsp::standard(buildL1()));
    ScpPn Scp = buildScpPn(Pn, Depth);
    ReachabilityGraph G = exploreReachability(Scp.Net, 1 << 18);
    ASSERT_TRUE(G.Complete) << "depth " << Depth;
    EXPECT_TRUE(isLive(Scp.Net, G)) << "depth " << Depth;
    EXPECT_TRUE(isSafe(G)) << "depth " << Depth;
  }
}

TEST(ScpModel, FrustumWithinEmpiricalBound) {
  // Section 5.2's observation: repeated state within ~2 n l steps.
  for (uint32_t Depth : {1u, 2u, 4u, 8u}) {
    SdspPn Pn = buildSdspPn(Sdsp::standard(buildL2Direct()));
    ScpPn Scp = buildScpPn(Pn, Depth);
    auto Policy = Scp.makeFifoPolicy();
    auto F = detectFrustum(Scp.Net, Policy.get());
    ASSERT_TRUE(F.has_value());
    EXPECT_LE(F->RepeatTime,
              boundBdScpPn(Scp.numSdspTransitions(), Depth) + 8)
        << "depth " << Depth;
  }
}

} // namespace
