//===- tests/SdspPnTest.cpp - SDSP-PN translation tests --------------------===//
//
// Part of the SDSP project: a reproduction of Gao, Wong & Ning,
// "A Timed Petri-Net Model for Fine-Grain Loop Scheduling", PLDI 1991.
//
//===----------------------------------------------------------------------===//

#include "core/SdspPn.h"

#include "TestUtil.h"
#include "petri/MarkedGraph.h"
#include "petri/ReachabilityGraph.h"
#include "gtest/gtest.h"

using namespace sdsp;
using namespace sdsp::testutil;

namespace {

TEST(SdspPn, L1MatchesFigure1d) {
  // Figure 1(d): 5 transitions and a data+ack place per arc.
  SdspPn Pn = buildSdspPn(Sdsp::standard(buildL1()));
  EXPECT_EQ(Pn.Net.numTransitions(), 5u);
  EXPECT_EQ(Pn.Net.numPlaces(), 10u);
}

TEST(SdspPn, SectionThreeProperties) {
  // Section 3.2's two claims: the SDSP-PN is a marked graph and its
  // initial marking is live and safe.  Checked structurally and, for
  // L2, against the explicit reachability oracle.
  for (bool UseL2 : {false, true}) {
    SdspPn Pn = buildSdspPn(
        Sdsp::standard(UseL2 ? buildL2Direct() : buildL1()));
    EXPECT_TRUE(isMarkedGraph(Pn.Net));
    EXPECT_TRUE(isLiveMarkedGraph(Pn.Net));
    EXPECT_TRUE(isSafeMarkedGraph(Pn.Net));
    EXPECT_TRUE(isStructurallyPersistent(Pn.Net));

    ReachabilityGraph G = exploreReachability(Pn.Net, 1 << 18);
    ASSERT_TRUE(G.Complete);
    EXPECT_TRUE(isLive(Pn.Net, G));
    EXPECT_TRUE(isSafe(G));
    EXPECT_TRUE(isPersistent(Pn.Net, G));
  }
}

TEST(SdspPn, FeedbackTokensLandOnDataPlaces) {
  SdspPn Pn = buildSdspPn(Sdsp::standard(buildL2Direct()));
  const DataflowGraph &G = Pn.Net.numPlaces() ? buildL2Direct()
                                              : buildL2Direct();
  (void)G;
  Marking M0 = Pn.Net.initialMarking();
  // Exactly one data place starts marked (the E->C feedback window) and
  // five ack places (the forward pairs; the feedback ack has 0 slots).
  uint32_t MarkedData = 0, MarkedAck = 0;
  for (size_t I = 0; I < Pn.ArcToPlace.size(); ++I)
    if (Pn.ArcToPlace[I].isValid() &&
        M0.tokens(Pn.ArcToPlace[I]) > 0)
      ++MarkedData;
  for (PlaceId P : Pn.AckPlaces)
    if (M0.tokens(P) > 0)
      ++MarkedAck;
  EXPECT_EQ(MarkedData, 1u);
  EXPECT_EQ(MarkedAck, 5u);
}

TEST(SdspPn, MappingRoundTrips) {
  DataflowGraph G = buildL1();
  Sdsp S = Sdsp::standard(G);
  SdspPn Pn = buildSdspPn(S);
  for (NodeId N : G.nodeIds()) {
    TransitionId T = Pn.NodeToTransition[N.index()];
    if (isBoundaryOp(G.node(N).Kind)) {
      EXPECT_FALSE(T.isValid());
      continue;
    }
    ASSERT_TRUE(T.isValid());
    EXPECT_EQ(Pn.TransitionToNode[T.index()], N);
    EXPECT_EQ(Pn.Net.transition(T).Name, G.node(N).Name);
  }
}

TEST(SdspPn, ExecTimesCarryOver) {
  DataflowGraph G = buildL1();
  for (NodeId N : G.nodeIds())
    if (G.node(N).Name == "D")
      G.setExecTime(N, 4);
  SdspPn Pn = buildSdspPn(Sdsp::standard(G));
  bool Found = false;
  for (TransitionId T : Pn.Net.transitionIds())
    if (Pn.Net.transition(T).Name == "D") {
      EXPECT_EQ(Pn.Net.transition(T).ExecTime, 4u);
      Found = true;
    }
  EXPECT_TRUE(Found);
}

TEST(SdspPn, RandomGraphsYieldLiveSafeMarkedGraphs) {
  Rng R(31337);
  for (int Trial = 0; Trial < 20; ++Trial) {
    DataflowGraph G = buildRandomLoopGraph(R, 3 + Trial % 8, 25);
    SdspPn Pn = buildSdspPn(Sdsp::standard(G));
    ASSERT_TRUE(isMarkedGraph(Pn.Net)) << "trial " << Trial;
    EXPECT_TRUE(isLiveMarkedGraph(Pn.Net)) << "trial " << Trial;
    EXPECT_TRUE(isSafeMarkedGraph(Pn.Net)) << "trial " << Trial;
  }
}

} // namespace
