//===- tests/SdspTest.cpp - SDSP construction tests ------------------------===//
//
// Part of the SDSP project: a reproduction of Gao, Wong & Ning,
// "A Timed Petri-Net Model for Fine-Grain Loop Scheduling", PLDI 1991.
//
//===----------------------------------------------------------------------===//

#include "core/Sdsp.h"

#include "TestUtil.h"
#include "gtest/gtest.h"

using namespace sdsp;
using namespace sdsp::testutil;

namespace {

TEST(Sdsp, BoundaryClassification) {
  EXPECT_TRUE(isBoundaryOp(OpKind::Input));
  EXPECT_TRUE(isBoundaryOp(OpKind::Const));
  EXPECT_TRUE(isBoundaryOp(OpKind::Output));
  EXPECT_FALSE(isBoundaryOp(OpKind::Add));
  EXPECT_FALSE(isBoundaryOp(OpKind::Switch));
}

TEST(Sdsp, L1StandardConstruction) {
  Sdsp S = Sdsp::standard(buildL1());
  EXPECT_EQ(S.loopBodySize(), 5u);
  EXPECT_EQ(S.interiorArcs().size(), 5u);
  EXPECT_EQ(S.acks().size(), 5u);
  // One storage location per data/ack pair (Section 6).
  EXPECT_EQ(S.storageLocations(), 5u);
  for (const Sdsp::Ack &A : S.acks()) {
    EXPECT_EQ(A.Path.size(), 1u);
    EXPECT_EQ(A.Slots, 1u);
  }
}

TEST(Sdsp, L2CountsFeedbackStorage) {
  Sdsp S = Sdsp::standard(buildL2Direct());
  EXPECT_EQ(S.loopBodySize(), 5u);
  EXPECT_EQ(S.interiorArcs().size(), 6u);
  // Paper, Section 6: L2 uses six locations before optimization.
  EXPECT_EQ(S.storageLocations(), 6u);
  // The feedback pair's slots are zero: the buffer initially holds the
  // loop-carried value.
  bool FoundFeedback = false;
  for (const Sdsp::Ack &A : S.acks())
    if (S.graph().arc(A.Path.front()).isFeedback()) {
      FoundFeedback = true;
      EXPECT_EQ(A.Slots, 0u);
    }
  EXPECT_TRUE(FoundFeedback);
}

TEST(Sdsp, CapacityTwoDoublesSlots) {
  Sdsp S = Sdsp::standard(buildL1(), /*Capacity=*/2);
  EXPECT_EQ(S.storageLocations(), 10u);
  for (const Sdsp::Ack &A : S.acks())
    EXPECT_EQ(A.Slots, 2u);
}

TEST(Sdsp, SelfFeedbackGetsNoAck) {
  // q = q[i-1] + in: the self arc must not be acknowledged.
  DataflowGraph G;
  NodeId In = G.addNode(OpKind::Input, "x");
  NodeId Q = G.addNode(OpKind::Add, "q");
  G.connect(In, 0, Q, 0);
  G.connectFeedback(Q, 0, Q, 1, {0.0});
  NodeId Out = G.addNode(OpKind::Output, "q");
  G.connect(Q, 0, Out, 0);

  Sdsp S = Sdsp::standard(G);
  EXPECT_TRUE(S.acks().empty());
  EXPECT_EQ(S.storageLocations(), 1u) << "the window itself is storage";
}

TEST(Sdsp, WithAcksAcceptsChainCoverage) {
  DataflowGraph G = buildL1();
  Sdsp Standard = Sdsp::standard(G);
  // Cover A->B and B->D with one ack (the Figure 4 move).
  ArcId AB, BD;
  for (ArcId A : G.arcIds()) {
    if (!Standard.isInteriorArc(A))
      continue;
    const auto &Arc = G.arc(A);
    if (G.node(Arc.From).Name == "A" && G.node(Arc.To).Name == "B")
      AB = A;
    if (G.node(Arc.From).Name == "B" && G.node(Arc.To).Name == "D")
      BD = A;
  }
  ASSERT_TRUE(AB.isValid());
  ASSERT_TRUE(BD.isValid());

  std::vector<Sdsp::Ack> Acks;
  Acks.push_back(Sdsp::Ack{{AB, BD}, 1});
  for (ArcId A : Standard.interiorArcs())
    if (A != AB && A != BD)
      Acks.push_back(Sdsp::Ack{{A}, 1});
  Sdsp Chained = Sdsp::withAcks(G, Acks);
  EXPECT_EQ(Chained.storageLocations(), 4u) << "5 pairs became 4";
}

} // namespace
