//===- tests/SemaTest.cpp - Semantic analysis tests ------------------------===//
//
// Part of the SDSP project: a reproduction of Gao, Wong & Ning,
// "A Timed Petri-Net Model for Fine-Grain Loop Scheduling", PLDI 1991.
//
//===----------------------------------------------------------------------===//

#include "loopir/Sema.h"

#include "loopir/Parser.h"
#include "gtest/gtest.h"

using namespace sdsp;

namespace {

std::optional<SemaInfo> check(const std::string &Src,
                              DiagnosticEngine &Diags) {
  auto Ast = parseLoop(Src, Diags);
  if (!Ast)
    return std::nullopt;
  return analyze(*Ast, Diags);
}

TEST(Sema, AcceptsL2AndDetectsLcd) {
  DiagnosticEngine Diags;
  auto Info = check("do i { init E = 0; A = X[i] + 5; C = A + E[i-1]; "
                    "E = W[i] + C; out E; }",
                    Diags);
  ASSERT_TRUE(Info.has_value()) << "unexpected errors";
  EXPECT_TRUE(Info->HasLoopCarried);
}

TEST(Sema, DoallWithoutLcd) {
  DiagnosticEngine Diags;
  auto Info = check("doall i { A = X[i] + 1; out A; }", Diags);
  ASSERT_TRUE(Info.has_value());
  EXPECT_FALSE(Info->HasLoopCarried);
}

TEST(Sema, RejectsDoubleAssignment) {
  DiagnosticEngine Diags;
  EXPECT_FALSE(check("do i { A = X[i]; A = Y[i]; out A; }", Diags));
  EXPECT_NE(Diags.diagnostics()[0].Message.find("single-assignment"),
            std::string::npos);
}

TEST(Sema, RejectsLcdWithoutInit) {
  DiagnosticEngine Diags;
  EXPECT_FALSE(check("do i { A = A[i-1] + X[i]; out A; }", Diags));
}

TEST(Sema, RejectsShallowInitWindow) {
  DiagnosticEngine Diags;
  EXPECT_FALSE(
      check("do i { init A = 0; A = A[i-2] + X[i]; out A; }", Diags));
  EXPECT_NE(Diags.diagnostics()[0].Message.find("reaches back 2"),
            std::string::npos);
}

TEST(Sema, RejectsLcdInDoall) {
  DiagnosticEngine Diags;
  EXPECT_FALSE(
      check("doall i { init A = 0; A = A[i-1] + X[i]; out A; }", Diags));
}

TEST(Sema, RejectsInitOfUnassigned) {
  DiagnosticEngine Diags;
  EXPECT_FALSE(check("do i { init Q = 0; A = X[i]; out A; }", Diags));
}

TEST(Sema, RejectsOutOfUndefined) {
  DiagnosticEngine Diags;
  EXPECT_FALSE(check("do i { A = X[i]; out B; }", Diags));
}

TEST(Sema, RejectsDuplicateInit) {
  DiagnosticEngine Diags;
  EXPECT_FALSE(check(
      "do i { init A = 0; init A = 1; A = A[i-1] + X[i]; out A; }", Diags));
}

} // namespace
