//===- tests/SessionTest.cpp - CompilationSession pass manager -------------===//
//
// Part of the SDSP project: a reproduction of Gao, Wong & Ning,
// "A Timed Petri-Net Model for Fine-Grain Loop Scheduling", PLDI 1991.
//
//===----------------------------------------------------------------------===//
//
// End-to-end contracts of the session refactor: the SCP-depth ablation
// recomputes its upstream passes exactly once (the acceptance criterion
// of the refactor), pipeline outputs are byte-identical with the cache
// on and off across the Livermore kernels, the one-call compile()
// driver matches the legacy runPipeline() wrapper, and the trace
// serializes to the documented JSON schema.
//
//===----------------------------------------------------------------------===//

#include "codegen/CEmitter.h"
#include "core/Pipeline.h"
#include "core/Session.h"
#include "livermore/Livermore.h"
#include "support/FaultInjection.h"
#include "support/Trace.h"

#include "gtest/gtest.h"

#include <chrono>
#include <sstream>

using namespace sdsp;

namespace {

const LivermoreKernel &kernel(const std::string &Id) {
  const LivermoreKernel *K = findKernel(Id);
  EXPECT_NE(K, nullptr) << Id;
  return *K;
}

/// The six kernels the cache-equivalence acceptance test sweeps.
const char *const SweepKernels[] = {"loop1", "loop7",   "loop12",
                                    "loop3", "loop5", "loop9lcd"};

/// Serializes everything a pipeline run produces that a user can see:
/// the schedule, the register-transfer program, and the emitted C.
std::string serializeOutputs(CompilationSession &S,
                             const std::string &Source) {
  auto G = S.lower(Source);
  EXPECT_TRUE(bool(G));
  auto Sd = S.buildSdsp(*G, /*Capacity=*/1, /*OptimizeStorage=*/false);
  EXPECT_TRUE(bool(Sd));
  auto Pn = S.buildPn(*Sd);
  EXPECT_TRUE(bool(Pn));
  auto F = S.searchFrustum(*Pn, FrustumOptions{});
  EXPECT_TRUE(bool(F));
  auto Sched = S.deriveSchedule(*Sd, *Pn, *F, /*ValidateIterations=*/64);
  EXPECT_TRUE(bool(Sched));
  auto Prog = S.generateProgram(*Sd, *Pn, *Sched);
  EXPECT_TRUE(bool(Prog));

  std::ostringstream OS;
  std::vector<std::string> Names;
  for (TransitionId T : (*Pn)->Net.transitionIds())
    Names.push_back((*Pn)->Net.transition(T).Name);
  (*Sched)->print(OS, Names);
  (*Prog)->print(OS);
  OS << emitC(**Prog, "kernel").Source;
  return OS.str();
}

/// Acceptance criterion of the refactor: an l = 1..8 SCP-depth ablation
/// through one session recomputes lowering, SDSP construction, and the
/// SDSP-PN translation exactly once, verified via the cache-hit
/// counters.
TEST(SessionTest, DepthSweepRecomputesUpstreamExactlyOnce) {
  const LivermoreKernel &K = kernel("loop7");
  CompilationSession S(SessionConfig{true});
  for (uint32_t Depth = 1; Depth <= 8; ++Depth) {
    PipelineOptions Opts;
    Opts.ScpDepth = Depth;
    Expected<CompiledLoop> CL = S.compile(K.Source, Opts);
    ASSERT_TRUE(bool(CL)) << "depth " << Depth << ": "
                          << CL.status().str();
    ASSERT_TRUE(CL->Scp.has_value());
    EXPECT_EQ(CL->Scp->PipelineDepth, Depth);
    ASSERT_TRUE(CL->Frustum.has_value());
  }
  for (PassKind PK : {PassKind::Lower, PassKind::Sdsp, PassKind::SdspPn,
                      PassKind::Rate}) {
    const PassStats &PS = S.passStats(PK);
    EXPECT_EQ(PS.Invocations, 8u) << passInfo(PK).Id;
    EXPECT_EQ(PS.CacheHits, 7u) << passInfo(PK).Id;
    EXPECT_EQ(PS.Failures, 0u) << passInfo(PK).Id;
  }
  // Each depth is a distinct SCP machine: no reuse possible.
  EXPECT_EQ(S.passStats(PassKind::Scp).Invocations, 8u);
  EXPECT_EQ(S.passStats(PassKind::Scp).CacheHits, 0u);
  EXPECT_EQ(S.passStats(PassKind::Frustum).CacheHits, 0u);
}

/// The cache must be invisible in the outputs: byte-identical schedule,
/// program, and C across cache-on, cache-off, and cached-replay runs,
/// for every bundled Livermore kernel.
TEST(SessionTest, OutputsByteIdenticalCacheOnAndOff) {
  for (const char *Id : SweepKernels) {
    const LivermoreKernel &K = kernel(Id);
    CompilationSession On(SessionConfig{true});
    CompilationSession Off(SessionConfig{false});
    std::string First = serializeOutputs(On, K.Source);
    std::string Uncached = serializeOutputs(Off, K.Source);
    EXPECT_EQ(First, Uncached) << Id;
    // Replay within the cached session: all hits, same bytes.
    std::string Replay = serializeOutputs(On, K.Source);
    EXPECT_EQ(First, Replay) << Id;
    EXPECT_GT(On.trace().totalCacheHits(), 0u) << Id;
    EXPECT_EQ(Off.trace().totalCacheHits(), 0u) << Id;
  }
}

/// The legacy one-call wrapper and the session driver agree on success
/// artifacts and on the structured-error contract.
TEST(SessionTest, CompileMatchesLegacyRunPipeline) {
  const LivermoreKernel &K = kernel("loop5");
  PipelineOptions Opts;
  Opts.Verify = true;
  Expected<CompiledLoop> Legacy = runPipeline(K.Source, Opts);
  CompilationSession S(SessionConfig{true});
  Expected<CompiledLoop> Session = S.compile(K.Source, Opts);
  ASSERT_TRUE(bool(Legacy));
  ASSERT_TRUE(bool(Session));
  EXPECT_TRUE(Session->Verified);
  EXPECT_EQ(Legacy->Frustum->StartTime, Session->Frustum->StartTime);
  EXPECT_EQ(Legacy->Frustum->RepeatTime, Session->Frustum->RepeatTime);
  EXPECT_EQ(Legacy->Rate->OptimalRate, Session->Rate->OptimalRate);

  // Structured errors: same code, stage, and message.
  const char *Bad = "do i { A = ; out A; }";
  Expected<CompiledLoop> LegacyErr = runPipeline(Bad, PipelineOptions{});
  Expected<CompiledLoop> SessionErr = S.compile(Bad, PipelineOptions{});
  ASSERT_FALSE(bool(LegacyErr));
  ASSERT_FALSE(bool(SessionErr));
  EXPECT_EQ(LegacyErr.status().code(), SessionErr.status().code());
  EXPECT_EQ(LegacyErr.status().stage(), SessionErr.status().stage());
  EXPECT_EQ(LegacyErr.status().message(), SessionErr.status().message());
}

/// Identity transform options skip the transform pass entirely in the
/// one-call driver (matching the legacy pipeline's stage order).
TEST(SessionTest, IdentityOptionsSkipTransformPass) {
  const LivermoreKernel &K = kernel("loop1");
  CompilationSession S(SessionConfig{true});
  ASSERT_TRUE(bool(S.compile(K.Source, PipelineOptions{})));
  EXPECT_EQ(S.passStats(PassKind::Transform).Invocations, 0u);

  PipelineOptions Opt;
  Opt.Optimize = true;
  ASSERT_TRUE(bool(S.compile(K.Source, Opt)));
  EXPECT_EQ(S.passStats(PassKind::Transform).Invocations, 1u);
}

TEST(SessionTest, TraceReportsPassesAndSerializesJson) {
  const LivermoreKernel &K = kernel("loop12");
  CompilationSession S(SessionConfig{true});
  PipelineOptions Opts;
  Opts.Verify = true;
  ASSERT_TRUE(bool(S.compile(K.Source, Opts)));

  PipelineTrace Trace = S.trace();
  EXPECT_TRUE(Trace.CacheEnabled);
  EXPECT_GT(Trace.totalInvocations(), 0u);
  EXPECT_GE(Trace.totalWallSeconds(), 0.0);

  std::ostringstream Json;
  Trace.writeJson(Json);
  const std::string Text = Json.str();
  EXPECT_NE(Text.find("sdsp-pipeline-trace-v1"), std::string::npos);
  for (const char *Id : {"lower", "sdsp", "sdsp-pn", "rate", "frustum",
                         "schedule", "verify"})
    EXPECT_NE(Text.find(std::string("\"") + Id + "\""), std::string::npos)
        << Id;

  std::ostringstream Table;
  Trace.printTable(Table);
  EXPECT_NE(Table.str().find("lower"), std::string::npos);
}

/// Artifacts carry shared ownership: they stay valid after the session
/// that produced them is gone.
TEST(SessionTest, ArtifactsOutliveTheSession) {
  ArtifactRef<SdspPn> Pn;
  {
    CompilationSession S(SessionConfig{true});
    auto G = S.lower(kernel("l1").Source);
    ASSERT_TRUE(bool(G));
    auto Sd = S.buildSdsp(*G, 1, false);
    ASSERT_TRUE(bool(Sd));
    auto Got = S.buildPn(*Sd);
    ASSERT_TRUE(bool(Got));
    Pn = *Got;
  }
  EXPECT_GT(Pn->Net.numTransitions(), 0u);
  EXPECT_NE(Pn.hash(), 0u);
}

//===----------------------------------------------------------------------===//
// Cancellation and fault sites at the pass boundary
// (docs/ROBUSTNESS.md).
//===----------------------------------------------------------------------===//

TEST(SessionTest, CancelledTokenFailsAtThePassBoundary) {
  TraceCollector Collector;
  SessionConfig Cfg{true};
  Cfg.Trace = &Collector.track("job");
  CancelSource Src;
  Src.cancel();
  Cfg.Cancel = Src.token();
  CompilationSession S(std::move(Cfg));
  Expected<CompiledLoop> CL =
      S.compile(kernel("loop1").Source, PipelineOptions{});
  ASSERT_FALSE(bool(CL));
  EXPECT_EQ(CL.status().code(), ErrorCode::Cancelled);
  EXPECT_EQ(CL.status().stage(), "session");
  EXPECT_NE(CL.status().str().find("before pass 'lower'"),
            std::string::npos);
  // The observation shows up on the trace as a "cancelled" instant.
  std::ostringstream OS;
  Collector.writeJson(OS);
  EXPECT_NE(OS.str().find("\"cancelled\""), std::string::npos);
}

TEST(SessionTest, ExpiredDeadlineFailsWithDeadlineExceeded) {
  SessionConfig Cfg{true};
  Cfg.Cancel =
      CancelSource::withDeadline(std::chrono::milliseconds(0)).token();
  CompilationSession S(std::move(Cfg));
  Expected<CompiledLoop> CL =
      S.compile(kernel("loop1").Source, PipelineOptions{});
  ASSERT_FALSE(bool(CL));
  EXPECT_EQ(CL.status().code(), ErrorCode::DeadlineExceeded);
}

/// The in-session retry contract the batch layer relies on: a transient
/// pass fault fails the compile, and because the pass boundary
/// checkpoints before any cache insert, the retry through the same
/// session and context recomputes instead of replaying a poisoned
/// artifact.
TEST(SessionTest, TransientPassFaultRetriesCleanlyInTheSameSession) {
  const LivermoreKernel &K = kernel("loop7");
  CompilationSession Plain(SessionConfig{true});
  Expected<CompiledLoop> Want = Plain.compile(K.Source, PipelineOptions{});
  ASSERT_TRUE(bool(Want));

  Expected<FaultSchedule> Sched = FaultSchedule::parse("pass:sdsp:fail@1");
  ASSERT_TRUE(Sched);
  FaultContext Ctx(&*Sched, "kernel:loop7");
  SessionConfig Cfg{true};
  Cfg.Faults = &Ctx;
  CompilationSession S(std::move(Cfg));
  Expected<CompiledLoop> First = S.compile(K.Source, PipelineOptions{});
  ASSERT_FALSE(bool(First));
  EXPECT_EQ(First.status().code(), ErrorCode::TransientFault);
  EXPECT_EQ(Ctx.fired(), 1u);

  // Arrivals persisted past the trigger, so the retry sails through.
  Expected<CompiledLoop> Retry = S.compile(K.Source, PipelineOptions{});
  ASSERT_TRUE(bool(Retry)) << Retry.status().str();
  EXPECT_EQ(Ctx.fired(), 1u);

  // Byte-identical to the fault-free schedule.
  auto ScheduleText = [](const CompiledLoop &CL) {
    std::vector<std::string> Names;
    for (TransitionId T : CL.machineNet().transitionIds())
      Names.push_back(CL.machineNet().transition(T).Name);
    std::ostringstream OS;
    CL.Schedule->print(OS, Names);
    return OS.str();
  };
  EXPECT_EQ(ScheduleText(*Retry), ScheduleText(*Want));
}

} // namespace
