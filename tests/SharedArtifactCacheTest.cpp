//===- tests/SharedArtifactCacheTest.cpp - Cross-session cache tests --------===//
//
// Part of the SDSP project: a reproduction of Gao, Wong & Ning,
// "A Timed Petri-Net Model for Fine-Grain Loop Scheduling", PLDI 1991.
//
//===----------------------------------------------------------------------===//
//
// Pins the SharedArtifactCache contract (core/SharedArtifactCache.h):
// compute-once under contention, abandon handoff, LRU byte eviction,
// and — via CompilationSession integration — that sharing the cache
// never changes outputs and that failing passes never poison it.
// Run under ThreadSanitizer in CI.
//
//===----------------------------------------------------------------------===//

#include "core/SharedArtifactCache.h"

#include "core/Session.h"
#include "support/FaultInjection.h"
#include "support/Status.h"

#include "gtest/gtest.h"

#include <atomic>
#include <sstream>
#include <thread>

using namespace sdsp;

namespace {

using Key = SharedArtifactCache::Key;
using Entry = SharedArtifactCache::Entry;

Entry makeEntry(int V, uint64_t Bytes = 8) {
  Entry E;
  E.Value = std::make_shared<int>(V);
  E.ContentHash = static_cast<uint64_t>(V);
  E.Bytes = Bytes;
  return E;
}

int valueOf(const Entry &E) {
  return *static_cast<const int *>(E.Value.get());
}

TEST(SharedArtifactCacheTest, MissPublishHit) {
  SharedArtifactCache C;
  Key K{1, 2, 3};

  auto Miss = C.lookupOrLock(K);
  EXPECT_FALSE(Miss.has_value()); // We now own the key.
  C.publish(K, makeEntry(42));

  auto Hit = C.lookupOrLock(K);
  ASSERT_TRUE(Hit.has_value());
  EXPECT_EQ(valueOf(*Hit), 42);
  EXPECT_EQ(Hit->ContentHash, 42u);

  auto S = C.counters();
  EXPECT_EQ(S.Hits, 1u);
  EXPECT_EQ(S.Misses, 1u);
  EXPECT_EQ(S.Inserts, 1u);
  EXPECT_EQ(S.Entries, 1u);
  EXPECT_EQ(S.Bytes, 8u);
}

TEST(SharedArtifactCacheTest, KeysDifferingInAnyFieldAreDistinct) {
  SharedArtifactCache C;
  for (Key K : {Key{1, 2, 3}, Key{9, 2, 3}, Key{1, 9, 3}, Key{1, 2, 9}}) {
    EXPECT_FALSE(C.lookupOrLock(K).has_value());
    C.publish(K, makeEntry(static_cast<int>(K.Pass + K.Inputs + K.Options)));
  }
  EXPECT_EQ(C.counters().Entries, 4u);
}

TEST(SharedArtifactCacheTest, ComputeOnceUnderContention) {
  // Many threads race for one key; exactly one computes, the rest block
  // in lookupOrLock and come back with the published value.
  SharedArtifactCache C;
  Key K{7, 7, 7};
  constexpr int NumThreads = 16;
  std::atomic<int> Computes{0};
  std::atomic<int> Correct{0};

  std::vector<std::thread> Threads;
  for (int I = 0; I < NumThreads; ++I)
    Threads.emplace_back([&] {
      auto E = C.lookupOrLock(K);
      if (!E) {
        ++Computes;
        // Hold the key long enough that siblings actually block.
        std::this_thread::sleep_for(std::chrono::milliseconds(5));
        C.publish(K, makeEntry(99));
        E = C.lookupOrLock(K); // Owner re-reads like everyone else.
      }
      if (E && valueOf(*E) == 99)
        ++Correct;
    });
  for (auto &T : Threads)
    T.join();

  EXPECT_EQ(Computes.load(), 1);
  EXPECT_EQ(Correct.load(), NumThreads);
  EXPECT_EQ(C.counters().Inserts, 1u);
}

TEST(SharedArtifactCacheTest, AbandonHandsOwnershipToOneWaiter) {
  // First owner fails; of the blocked threads exactly one becomes the
  // new owner and publishes, and nobody observes a poisoned value.
  SharedArtifactCache C;
  Key K{3, 3, 3};
  constexpr int NumThreads = 8;
  std::atomic<int> Owners{0};
  std::atomic<int> Correct{0};
  std::atomic<bool> FirstOwnerDone{false};

  ASSERT_FALSE(C.lookupOrLock(K).has_value()); // This thread owns K.

  std::vector<std::thread> Threads;
  for (int I = 0; I < NumThreads; ++I)
    Threads.emplace_back([&] {
      auto E = C.lookupOrLock(K);
      if (!E) {
        // Waiters may only be promoted after the first owner abandons.
        EXPECT_TRUE(FirstOwnerDone.load());
        ++Owners;
        C.publish(K, makeEntry(55));
        E = C.lookupOrLock(K);
      }
      if (E && valueOf(*E) == 55)
        ++Correct;
    });

  std::this_thread::sleep_for(std::chrono::milliseconds(5));
  FirstOwnerDone = true;
  C.abandon(K); // "Computation failed": release without a value.
  for (auto &T : Threads)
    T.join();

  EXPECT_EQ(Owners.load(), 1);
  EXPECT_EQ(Correct.load(), NumThreads);
  auto S = C.counters();
  EXPECT_EQ(S.Abandons, 1u);
  EXPECT_EQ(S.Inserts, 1u);
}

TEST(SharedArtifactCacheTest, AbandonChainsThroughSuccessiveOwnerDeaths) {
  // Two owners die in a row; each handoff bumps the abandon counter
  // exactly once, and the third owner's publish reaches every waiter.
  SharedArtifactCache C;
  Key K{4, 4, 4};
  constexpr int NumThreads = 6;
  std::atomic<int> Promotions{0};
  std::atomic<int> Correct{0};

  ASSERT_FALSE(C.lookupOrLock(K).has_value()); // First owner.

  std::vector<std::thread> Threads;
  for (int I = 0; I < NumThreads; ++I)
    Threads.emplace_back([&] {
      auto E = C.lookupOrLock(K);
      if (!E) {
        // Promoted waiter: the first one dies too, the second publishes.
        if (Promotions.fetch_add(1) == 0) {
          C.abandon(K);
          E = C.lookupOrLock(K);
          if (!E) {
            // Re-acquired our own abandoned key: publish this time.
            ++Promotions;
            C.publish(K, makeEntry(77));
            E = C.lookupOrLock(K);
          }
        } else {
          C.publish(K, makeEntry(77));
          E = C.lookupOrLock(K);
        }
      }
      if (E && valueOf(*E) == 77)
        ++Correct;
    });

  std::this_thread::sleep_for(std::chrono::milliseconds(5));
  C.abandon(K); // First owner dies without publishing.
  for (auto &T : Threads)
    T.join();

  EXPECT_EQ(Correct.load(), NumThreads);
  auto S = C.counters();
  EXPECT_EQ(S.Abandons, 2u); // One per owner death, never double-counted.
  EXPECT_EQ(S.Inserts, 1u);
}

TEST(SharedArtifactCacheTest, EvictsLeastRecentlyUsedOverBudget) {
  // One shard so every entry shares a budget; capacity for two 8-byte
  // entries.
  SharedArtifactCache C({/*Shards=*/1, /*MaxBytes=*/16});
  Key A{1, 0, 0}, B{2, 0, 0}, D{3, 0, 0};

  EXPECT_FALSE(C.lookupOrLock(A).has_value());
  C.publish(A, makeEntry(1));
  EXPECT_FALSE(C.lookupOrLock(B).has_value());
  C.publish(B, makeEntry(2));

  // Touch A so B is now the LRU entry.
  EXPECT_TRUE(C.lookupOrLock(A).has_value());

  EXPECT_FALSE(C.lookupOrLock(D).has_value());
  C.publish(D, makeEntry(3));

  EXPECT_TRUE(C.peek(A).has_value());
  EXPECT_FALSE(C.peek(B).has_value()); // Evicted.
  EXPECT_TRUE(C.peek(D).has_value());

  auto S = C.counters();
  EXPECT_EQ(S.Evictions, 1u);
  EXPECT_LE(S.Bytes, 16u);
}

TEST(SharedArtifactCacheTest, NeverEvictsTheJustPublishedEntry) {
  // An entry bigger than the whole budget must still land (and is the
  // only survivor): the cache may be over budget transiently rather
  // than discard fresh work.
  SharedArtifactCache C({/*Shards=*/1, /*MaxBytes=*/16});
  Key A{1, 0, 0}, B{2, 0, 0};
  EXPECT_FALSE(C.lookupOrLock(A).has_value());
  C.publish(A, makeEntry(1, /*Bytes=*/8));
  EXPECT_FALSE(C.lookupOrLock(B).has_value());
  C.publish(B, makeEntry(2, /*Bytes=*/64));

  EXPECT_FALSE(C.peek(A).has_value());
  ASSERT_TRUE(C.peek(B).has_value());
  EXPECT_EQ(valueOf(*C.peek(B)), 2);
}

TEST(SharedArtifactCacheTest, ClearDropsPublishedEntries) {
  SharedArtifactCache C;
  Key A{1, 0, 0};
  EXPECT_FALSE(C.lookupOrLock(A).has_value());
  C.publish(A, makeEntry(1));
  EXPECT_EQ(C.entries(), 1u);
  C.clear();
  EXPECT_EQ(C.entries(), 0u);
  EXPECT_EQ(C.counters().Bytes, 0u);
  // The key is recomputable afterwards.
  EXPECT_FALSE(C.lookupOrLock(A).has_value());
  C.publish(A, makeEntry(1));
  EXPECT_EQ(C.entries(), 1u);
}

//===----------------------------------------------------------------------===//
// CompilationSession integration.
//===----------------------------------------------------------------------===//

const char *BiquadSource = R"(do i {
  init y = 0, 0;
  y = b0 * x[i] + b1 * x[i-1] + b2 * x[i-2]
      - a1 * y[i-1] - a2 * y[i-2];
  out y;
})";

TEST(SharedArtifactCacheSessionTest, SecondSessionHitsEveryCachedPass) {
  SharedArtifactCache Cache;
  PipelineOptions PO;
  PO.Verify = true;

  SessionConfig SC;
  SC.Store = &Cache;
  SC.EnableCache = true;

  CompilationSession S1(SC);
  auto R1 = S1.compile(BiquadSource, PO);
  ASSERT_TRUE(R1) << R1.status().str();
  EXPECT_EQ(S1.cacheEntries(), 0u); // Interned in the shared table.
  EXPECT_GT(Cache.entries(), 0u);
  uint64_t HitsAfterCold = Cache.counters().Hits;

  CompilationSession S2(SC);
  auto R2 = S2.compile(BiquadSource, PO);
  ASSERT_TRUE(R2) << R2.status().str();
  EXPECT_GT(Cache.counters().Hits, HitsAfterCold);
  // The warm session computed nothing new: every cached pass it invoked
  // was answered from the shared table (Verify is registered uncached).
  EXPECT_EQ(Cache.counters().Inserts, Cache.entries());
  PipelineTrace T2 = S2.trace();
  for (size_t P = 0; P < NumPassKinds; ++P) {
    if (!passInfo(static_cast<PassKind>(P)).Cached)
      continue;
    EXPECT_EQ(T2.Passes[P].Stats.CacheHits, T2.Passes[P].Stats.Invocations)
        << T2.Passes[P].Pass;
  }
}

TEST(SharedArtifactCacheSessionTest, SharedAndPrivateCachesAgree) {
  // The cache must be semantically invisible: identical frustums and
  // rates whether sessions share a cache, use private ones, or run
  // uncached.
  PipelineOptions PO;
  PO.Verify = true;

  auto Summarize = [&](CompilationSession &S) {
    auto R = S.compile(BiquadSource, PO);
    EXPECT_TRUE(R) << R.status().str();
    std::ostringstream OS;
    OS << R->Rate->OptimalRate << " [" << R->Frustum->StartTime << ", "
       << R->Frustum->RepeatTime << ") " << R->Frustum->length();
    return OS.str();
  };

  SharedArtifactCache Cache;
  SessionConfig SharedSC;
  SharedSC.Store = &Cache;
  SharedSC.EnableCache = true;
  CompilationSession Cold(SharedSC), Warm(SharedSC);
  std::string FromCold = Summarize(Cold);
  std::string FromWarm = Summarize(Warm); // All hits.

  SessionConfig PrivateSC;
  PrivateSC.EnableCache = true;
  CompilationSession Private(PrivateSC);

  SessionConfig OffSC;
  OffSC.EnableCache = false;
  OffSC.Store = &Cache; // Must be ignored while disabled.
  CompilationSession Off(OffSC);
  EXPECT_EQ(Off.store(), nullptr);

  EXPECT_EQ(FromCold, FromWarm);
  EXPECT_EQ(FromCold, Summarize(Private));
  EXPECT_EQ(FromCold, Summarize(Off));
}

TEST(SharedArtifactCacheSessionTest, FailingSourceDoesNotPoisonTheCache) {
  SharedArtifactCache Cache;
  SessionConfig SC;
  SC.Store = &Cache;
  SC.EnableCache = true;
  PipelineOptions PO;

  // Semantically invalid: loop-carried `y` without an init window.
  const char *Bad = "do i { y = y[i-1] + x[i]; out y; }";

  CompilationSession S1(SC);
  auto R1 = S1.compile(Bad, PO);
  ASSERT_FALSE(R1);
  size_t EntriesAfterFailure = Cache.entries();

  // The failure was not cached: a retry recomputes (and fails) rather
  // than replaying a poisoned artifact, and good sources still compile.
  CompilationSession S2(SC);
  auto R2 = S2.compile(Bad, PO);
  ASSERT_FALSE(R2);
  EXPECT_EQ(R2.status().code(), R1.status().code());
  EXPECT_EQ(Cache.entries(), EntriesAfterFailure);

  CompilationSession S3(SC);
  auto R3 = S3.compile(BiquadSource, PO);
  EXPECT_TRUE(R3) << R3.status().str();
}

TEST(SharedArtifactCacheSessionTest, InjectedOwnerDeathAbandonsExactlyOnce) {
  // The fault-injection shape of owner death (docs/ROBUSTNESS.md): a
  // session that computes a pass, then dies at the cache:publish site,
  // must abandon its key — bumping the abandon counter exactly once —
  // and publish nothing.  Ownership of the key is then re-acquirable: a
  // healthy session recomputes and publishes for real.  (Concurrent
  // waiter promotion per handoff is pinned by the raw-cache tests
  // above; this one pins the injected-death path through the session.)
  Expected<FaultSchedule> Sched =
      FaultSchedule::parse("cache:publish:fail@1");
  ASSERT_TRUE(Sched) << Sched.status().str();

  SharedArtifactCache Cache;
  PipelineOptions PO;

  FaultContext FC(&*Sched, "victim");
  SessionConfig VictimSC;
  VictimSC.Store = &Cache;
  VictimSC.EnableCache = true;
  VictimSC.Faults = &FC;
  CompilationSession Victim(VictimSC);
  auto RV = Victim.compile(BiquadSource, PO);
  ASSERT_FALSE(RV);
  EXPECT_EQ(RV.status().code(), ErrorCode::TransientFault);
  EXPECT_EQ(Cache.counters().Abandons, 1u); // One death, one handoff.
  EXPECT_EQ(Cache.counters().Inserts, 0u);  // The failure published nothing.

  SessionConfig HealthySC;
  HealthySC.Store = &Cache;
  HealthySC.EnableCache = true;
  CompilationSession Healthy(HealthySC);
  auto RH = Healthy.compile(BiquadSource, PO);
  ASSERT_TRUE(RH) << RH.status().str();
  EXPECT_EQ(Cache.counters().Abandons, 1u); // No further handoffs.
  EXPECT_EQ(Cache.counters().Inserts, Cache.entries());

  // The victim's own retry — same context, arrival counters advanced —
  // sails past the spent trigger and succeeds from the published work.
  CompilationSession Retry(VictimSC);
  auto RR = Retry.compile(BiquadSource, PO);
  ASSERT_TRUE(RR) << RR.status().str();
  EXPECT_EQ(RR->Frustum->RepeatTime, RH->Frustum->RepeatTime);
}

TEST(SharedArtifactCacheSessionTest, ConcurrentSessionsShareWork) {
  // The batch shape: N sessions over the same source on N threads.
  // Correctness (identical frustums) is the assertion; compute-once is
  // observed through insert counters bounded by the distinct key count.
  SharedArtifactCache Cache;
  PipelineOptions PO;
  constexpr int NumThreads = 8;

  std::vector<std::string> Summaries(NumThreads);
  std::vector<std::thread> Threads;
  for (int I = 0; I < NumThreads; ++I)
    Threads.emplace_back([&, I] {
      SessionConfig SC;
      SC.Store = &Cache;
      SC.EnableCache = true;
      CompilationSession S(SC);
      auto R = S.compile(BiquadSource, PO);
      if (!R)
        return;
      std::ostringstream OS;
      OS << "[" << R->Frustum->StartTime << ", " << R->Frustum->RepeatTime
         << ") " << R->Frustum->length();
      Summaries[I] = OS.str();
    });
  for (auto &T : Threads)
    T.join();

  for (int I = 0; I < NumThreads; ++I) {
    EXPECT_FALSE(Summaries[I].empty()) << "thread " << I << " failed";
    EXPECT_EQ(Summaries[I], Summaries[0]);
  }
  // Every insert is a distinct key computed exactly once.
  EXPECT_EQ(Cache.counters().Inserts, Cache.entries());
}

} // namespace
