//===- tests/SimdDispatchTest.cpp - Readiness-sweep kernel tests -----------===//
//
// Part of the SDSP project: a reproduction of Gao, Wong & Ning,
// "A Timed Petri-Net Model for Fine-Grain Loop Scheduling", PLDI 1991.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The SIMD readiness-sweep kernels must be bit-identical across tiers:
/// every supported kernel, fed the same sentinel-padded readiness
/// lanes, must produce the same enabled-idle bitmap and popcount as the
/// scalar reference.  Also pins the dispatcher contract: the active
/// tier is always supported, a valid SDSP_SIMD override at or below the
/// host's highest tier is honored verbatim, and readinessSweep()
/// resolves to the active tier's kernel.
///
//===----------------------------------------------------------------------===//

#include "petri/SimdDispatch.h"

#include "support/Random.h"
#include "gtest/gtest.h"

#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

using namespace sdsp;

namespace {

/// Builds a readiness array of \p Words 64-lane groups where each lane
/// is 0 (ready+idle) with probability ~1/\p ZeroOneIn and a nonzero
/// count otherwise; lanes at index >= \p NumTransitions get the
/// engine's sentinel 1.
std::vector<uint32_t> randomReadiness(Rng &R, size_t Words,
                                      size_t NumTransitions,
                                      uint64_t ZeroOneIn) {
  std::vector<uint32_t> Lanes(Words * 64, 1u);
  for (size_t I = 0; I < Lanes.size(); ++I) {
    if (I >= NumTransitions)
      continue; // sentinel padding stays nonzero
    if (R.chance(1, ZeroOneIn))
      Lanes[I] = 0;
    else
      Lanes[I] = static_cast<uint32_t>(R.range(1, 5)) +
                 (R.chance(1, 4) ? (1u << 24) : 0u); // busy-bias pattern
  }
  return Lanes;
}

size_t scalarReference(const std::vector<uint32_t> &Lanes,
                       std::vector<uint64_t> &Out) {
  size_t Words = Lanes.size() / 64;
  Out.assign(Words, 0);
  size_t Count = 0;
  for (size_t W = 0; W < Words; ++W) {
    uint64_t Bits = 0;
    for (size_t B = 0; B < 64; ++B)
      if (Lanes[W * 64 + B] == 0)
        Bits |= 1ull << B;
    Out[W] = Bits;
    Count += static_cast<size_t>(__builtin_popcountll(Bits));
  }
  return Count;
}

TEST(SimdDispatch, TierNamesAndOrdering) {
  EXPECT_STREQ(simdTierName(SimdTier::Scalar), "scalar");
  EXPECT_STREQ(simdTierName(SimdTier::Sse2), "sse2");
  EXPECT_STREQ(simdTierName(SimdTier::Avx2), "avx2");
  EXPECT_STREQ(simdTierName(SimdTier::Avx512), "avx512");
  // Scalar is unconditionally supported, and support is downward
  // closed from the highest tier.
  EXPECT_TRUE(simdTierSupported(SimdTier::Scalar));
  SimdTier Highest = highestSupportedSimdTier();
  for (int T = 0; T <= static_cast<int>(Highest); ++T)
    EXPECT_TRUE(simdTierSupported(static_cast<SimdTier>(T)));
}

TEST(SimdDispatch, ActiveTierIsSupportedAndHonorsOverride) {
  SimdTier Active = activeSimdTier();
  EXPECT_TRUE(simdTierSupported(Active));
  // When the environment forces a tier the host supports (the CI SIMD
  // matrix leg sets SDSP_SIMD=scalar/sse2/avx2), the dispatcher must
  // honor it verbatim rather than silently upgrading.
  if (const char *Env = std::getenv("SDSP_SIMD")) {
    std::string Want = Env;
    for (int T = 0; T <= static_cast<int>(SimdTier::Avx512); ++T) {
      SimdTier Tier = static_cast<SimdTier>(T);
      if (Want == simdTierName(Tier) && simdTierSupported(Tier))
        EXPECT_EQ(Active, Tier) << "SDSP_SIMD=" << Want << " not honored";
    }
  }
}

TEST(SimdDispatch, KernelsMatchScalarReference) {
  Rng R(0x51eed5u);
  for (uint64_t Trial = 0; Trial < 64; ++Trial) {
    size_t Words = static_cast<size_t>(R.range(1, 40));
    size_t NumT = static_cast<size_t>(
        R.range(static_cast<int64_t>((Words - 1) * 64 + 1),
                static_cast<int64_t>(Words * 64)));
    uint64_t Density = static_cast<uint64_t>(R.range(2, 16));
    std::vector<uint32_t> Lanes = randomReadiness(R, Words, NumT, Density);

    std::vector<uint64_t> Want;
    size_t WantCount = scalarReference(Lanes, Want);

    for (int T = 0; T <= static_cast<int>(highestSupportedSimdTier()); ++T) {
      SimdTier Tier = static_cast<SimdTier>(T);
      ReadinessSweepFn Fn = readinessSweepForTier(Tier);
      ASSERT_NE(Fn, nullptr);
      std::vector<uint64_t> Got(Words, ~0ull);
      size_t GotCount = Fn(Lanes.data(), Got.data(), Words);
      EXPECT_EQ(GotCount, WantCount)
          << simdTierName(Tier) << " popcount, trial " << Trial;
      EXPECT_EQ(Got, Want) << simdTierName(Tier) << " bitmap, trial "
                           << Trial;
    }
  }
}

TEST(SimdDispatch, AllZeroAndAllBusyExtremes) {
  for (size_t Words : {size_t(1), size_t(3), size_t(17)}) {
    std::vector<uint32_t> AllReady(Words * 64, 0u);
    std::vector<uint32_t> AllBusy(Words * 64, 7u);
    for (int T = 0; T <= static_cast<int>(highestSupportedSimdTier()); ++T) {
      ReadinessSweepFn Fn = readinessSweepForTier(static_cast<SimdTier>(T));
      std::vector<uint64_t> Out(Words, 0);
      EXPECT_EQ(Fn(AllReady.data(), Out.data(), Words), Words * 64);
      for (uint64_t W : Out)
        EXPECT_EQ(W, ~0ull);
      EXPECT_EQ(Fn(AllBusy.data(), Out.data(), Words), 0u);
      for (uint64_t W : Out)
        EXPECT_EQ(W, 0ull);
    }
  }
}

TEST(SimdDispatch, DefaultSweepMatchesActiveTier) {
  EXPECT_EQ(readinessSweep(), readinessSweepForTier(activeSimdTier()));
}

} // namespace
