//===- tests/SimpleCyclesTest.cpp - Johnson enumeration tests --------------===//
//
// Part of the SDSP project: a reproduction of Gao, Wong & Ning,
// "A Timed Petri-Net Model for Fine-Grain Loop Scheduling", PLDI 1991.
//
//===----------------------------------------------------------------------===//

#include "petri/SimpleCycles.h"

#include "TestUtil.h"
#include "gtest/gtest.h"

#include <set>

using namespace sdsp;
using namespace sdsp::testutil;

namespace {

TEST(SimpleCycles, RingHasOneCycle) {
  PetriNet Ring = buildRing(5, 2);
  MarkedGraphView View(Ring);
  std::vector<SimpleCycle> Cycles = enumerateSimpleCycles(View);
  ASSERT_EQ(Cycles.size(), 1u);
  EXPECT_EQ(Cycles[0].Edges.size(), 5u);
  EXPECT_EQ(Cycles[0].ValueSum, 5u);
  EXPECT_EQ(Cycles[0].TokenSum, 2u);
}

TEST(SimpleCycles, PairGraphCycleCount) {
  // DAG spine of N nodes with data/ack pairs: each pair is a 2-cycle,
  // and alternating data/ack combinations compose into longer simple
  // cycles (e.g. d0 d1 a_0..1? no - ack edges pair individual arcs, so
  // cycles are exactly: each pair, plus chains data...data followed by
  // ack...ack only when acks retrace the same arcs, which revisits
  // vertices).  For a pure spine the simple cycles are exactly the
  // pairs.
  Rng R(1);
  PetriNet Net = buildRandomMarkedGraph(R, 4, 0);
  MarkedGraphView View(Net);
  std::vector<SimpleCycle> Cycles = enumerateSimpleCycles(View);
  EXPECT_EQ(Cycles.size(), 3u) << "three data/ack pairs on a 4-spine";
  for (const SimpleCycle &C : Cycles) {
    EXPECT_EQ(C.Edges.size(), 2u);
    EXPECT_EQ(C.TokenSum, 1u);
  }
}

TEST(SimpleCycles, TwoNestedCycles) {
  // t0 -> t1 -> t0 and t0 -> t1 -> t2 -> t0.
  PetriNet Net;
  TransitionId T0 = Net.addTransition("t0");
  TransitionId T1 = Net.addTransition("t1");
  TransitionId T2 = Net.addTransition("t2");
  auto Place = [&](TransitionId A, TransitionId B, uint32_t Tok) {
    PlaceId P = Net.addPlace("p", Tok);
    Net.addArc(A, P);
    Net.addArc(P, B);
  };
  Place(T0, T1, 1);
  Place(T1, T0, 0);
  Place(T1, T2, 0);
  Place(T2, T0, 1);
  MarkedGraphView View(Net);
  std::vector<SimpleCycle> Cycles = enumerateSimpleCycles(View);
  ASSERT_EQ(Cycles.size(), 2u);
  std::set<size_t> Lengths;
  for (const SimpleCycle &C : Cycles)
    Lengths.insert(C.Edges.size());
  EXPECT_EQ(Lengths, (std::set<size_t>{2, 3}));
}

TEST(SimpleCycles, CycleTransitionsMatchEdges) {
  PetriNet Ring = buildRing(4, 1);
  MarkedGraphView View(Ring);
  std::vector<SimpleCycle> Cycles = enumerateSimpleCycles(View);
  ASSERT_EQ(Cycles.size(), 1u);
  std::vector<TransitionId> Ts = cycleTransitions(View, Cycles[0]);
  EXPECT_EQ(Ts.size(), 4u);
  std::set<uint32_t> Unique;
  for (TransitionId T : Ts)
    Unique.insert(T.index());
  EXPECT_EQ(Unique.size(), 4u);
}

TEST(SimpleCycles, SelfLoopEdge) {
  PetriNet Net;
  TransitionId T = Net.addTransition("t");
  PlaceId P = Net.addPlace("p", 1);
  Net.addArc(T, P);
  Net.addArc(P, T);
  MarkedGraphView View(Net);
  std::vector<SimpleCycle> Cycles = enumerateSimpleCycles(View);
  ASSERT_EQ(Cycles.size(), 1u);
  EXPECT_EQ(Cycles[0].Edges.size(), 1u);
  EXPECT_EQ(Cycles[0].TokenSum, 1u);
}

TEST(SimpleCycles, DensePairGraphScales) {
  Rng R(7);
  PetriNet Net = buildRandomMarkedGraph(R, 10, 12);
  MarkedGraphView View(Net);
  std::vector<SimpleCycle> Cycles = enumerateSimpleCycles(View);
  // At least one cycle per pair.
  EXPECT_GE(Cycles.size(), View.numEdges() / 2);
  for (const SimpleCycle &C : Cycles)
    EXPECT_GE(C.TokenSum, 1u) << "graph is live by construction";
}

} // namespace
