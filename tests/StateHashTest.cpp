//===- tests/StateHashTest.cpp - Incremental state-hash validation ---------===//
//
// Part of the SDSP project: a reproduction of Gao, Wong & Ning,
// "A Timed Petri-Net Model for Fine-Grain Loop Scheduling", PLDI 1991.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The engine's incrementally maintained marking hash must equal a full
/// rehash of the packed words at every step, on every net shape the
/// engine special-cases (unit-time all-fast, bit-marking, ring
/// scheduling, exact-marking fallback).  Debug builds additionally
/// validate this inside insertOrFindHashed on every interning; this
/// suite checks it explicitly so release builds cover it too, and pins
/// the hashed decrementResiduals delta used by the idle-stretch leap.
///
//===----------------------------------------------------------------------===//

#include "petri/EarliestFiring.h"

#include "TestUtil.h"
#include "gtest/gtest.h"

#include <vector>

using namespace sdsp;
using namespace sdsp::testutil;

namespace {

/// Runs \p Steps engine steps and checks the incremental raw hash
/// against PackedState::rawHash() at each instant, leaping idle
/// stretches through the hashed decrementResiduals path.
void checkHashedRun(const PetriNet &Net, size_t Steps) {
  EarliestFiringEngine Engine(Net);
  size_t MarkWords = (Net.numPlaces() + 63) / 64;
  PackedState PS;
  PackedStateTable Seen;
  for (size_t I = 0; I < Steps; ++I) {
    Engine.prepare();
    uint64_t Raw = Engine.packStateHashed(PS);
    ASSERT_EQ(Raw, PS.rawHash()) << "step " << I << " at t=" << Engine.now();
    ASSERT_EQ(PackedState::finalizeHash(Raw), PS.hashValue());
    Seen.insertOrFindHashed(PS, Raw, Engine.now());
    if (Engine.isQuiescent())
      break; // dead net; nothing further to validate
    StepRecord Rec = Engine.fireAndAdvance();
    if (!Rec.Completed.empty() || !Rec.Fired.empty())
      continue;
    // Idle stretch: walk it one instant at a time through the hashed
    // residual decrement, validating the delta at each instant (the
    // same synthesis the frustum detector's time leap performs).
    std::optional<TimeStep> Next = Engine.nextFinishTime();
    ASSERT_TRUE(Next.has_value());
    for (TimeStep V = Engine.now(); V < *Next; ++V) {
      Raw = PS.decrementResiduals(MarkWords, Raw);
      ASSERT_EQ(Raw, PS.rawHash()) << "leap instant " << V;
      Seen.insertOrFindHashed(PS, Raw, V);
    }
    Engine.leapTo(*Next);
  }
#ifndef NDEBUG
  // Debug builds validate every interning against a full rehash; the
  // counter proves the validation path actually ran.
  EXPECT_GT(Seen.deltaValidations(), 0u);
#endif
}

TEST(StateHash, UnitTimeRing) { checkHashedRun(buildRing(9, 2), 64); }

TEST(StateHash, RandomMarkedGraphs) {
  // Non-unit execution times exercise the busy-residual tail and the
  // finish ring; several seeds to vary the marking-word mutation
  // patterns (single-word nets and multi-word nets).
  for (uint64_t Seed : {1ull, 7ull, 23ull}) {
    Rng R(Seed);
    PetriNet Small = buildRandomMarkedGraph(R, 12, 3);
    checkHashedRun(Small, 96);
    PetriNet Large = buildRandomMarkedGraph(R, 90, 20); // >64 places
    checkHashedRun(Large, 96);
  }
}

TEST(StateHash, HashedTableMatchesPlainTable) {
  // insertOrFindHashed(S, S.rawHash(), t) must behave exactly like
  // insertOrFind(S, t): same repeat detection, same stored times.
  Rng R(99);
  PetriNet Net = buildRandomMarkedGraph(R, 10, 2);
  EarliestFiringEngine A(Net), B(Net);
  PackedStateTable TA, TB;
  PackedState PA, PB;
  for (size_t I = 0; I < 200; ++I) {
    A.prepare();
    B.prepare();
    uint64_t Raw = A.packStateHashed(PA);
    B.packState(PB);
    std::optional<uint64_t> SeenA = TA.insertOrFindHashed(PA, Raw, A.now());
    std::optional<uint64_t> SeenB = TB.insertOrFind(PB, B.now());
    ASSERT_EQ(SeenA, SeenB) << "step " << I;
    if (SeenA)
      break; // both detected the repeat at the same step
    A.fireAndAdvance();
    B.fireAndAdvance();
  }
}

TEST(StateHash, MixWordIsPositionSensitive) {
  // The raw hash is a commutative XOR of per-(position, value) terms;
  // position keying is what stops two swapped words from colliding.
  EXPECT_NE(PackedState::mixWord(0, 5), PackedState::mixWord(1, 5));
  EXPECT_NE(PackedState::mixWord(0, 5) ^ PackedState::mixWord(1, 6),
            PackedState::mixWord(0, 6) ^ PackedState::mixWord(1, 5));
  EXPECT_NE(PackedState::mixWord(3, 0), 0u);
}

} // namespace
