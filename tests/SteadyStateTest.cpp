//===- tests/SteadyStateTest.cpp - Steady-state equivalent net tests -------===//
//
// Part of the SDSP project: a reproduction of Gao, Wong & Ning,
// "A Timed Petri-Net Model for Fine-Grain Loop Scheduling", PLDI 1991.
//
//===----------------------------------------------------------------------===//

#include "core/SteadyStateNet.h"

#include "TestUtil.h"
#include "core/SdspPn.h"
#include "petri/CycleRatio.h"
#include "petri/MarkedGraph.h"
#include "gtest/gtest.h"

using namespace sdsp;
using namespace sdsp::testutil;

namespace {

SteadyStateNet buildFor(const PetriNet &Net) {
  auto F = detectFrustum(Net);
  EXPECT_TRUE(F.has_value());
  return buildSteadyStateNet(Net, *F);
}

TEST(SteadyState, L1NetIsStronglyConnectedMarkedGraph) {
  SdspPn Pn = buildSdspPn(Sdsp::standard(buildL1()));
  SteadyStateNet SSN = buildFor(Pn.Net);
  EXPECT_TRUE(isMarkedGraph(SSN.Net));
  EXPECT_TRUE(isLiveMarkedGraph(SSN.Net));
  MarkedGraphView View(SSN.Net);
  EXPECT_TRUE(stronglyConnectedRoot(View).has_value())
      << "coalescing initial/terminal states closes every path";
}

TEST(SteadyState, InstanceCountsMatchFrustum) {
  SdspPn Pn = buildSdspPn(Sdsp::standard(buildL2Direct()));
  auto F = detectFrustum(Pn.Net);
  ASSERT_TRUE(F.has_value());
  SteadyStateNet SSN = buildSteadyStateNet(Pn.Net, *F);
  size_t Total = 0;
  for (TransitionId T : Pn.Net.transitionIds()) {
    EXPECT_EQ(SSN.Instance[T.index()].size(), F->transitionCount(T));
    Total += SSN.Instance[T.index()].size();
  }
  EXPECT_EQ(SSN.Net.numTransitions(), Total);
}

TEST(SteadyState, TokenCountsArePreserved) {
  SdspPn Pn = buildSdspPn(Sdsp::standard(buildL2Direct()));
  auto F = detectFrustum(Pn.Net);
  ASSERT_TRUE(F.has_value());
  SteadyStateNet SSN = buildSteadyStateNet(Pn.Net, *F);
  EXPECT_EQ(SSN.Net.initialMarking().totalTokens(),
            F->State.M.totalTokens());
}

TEST(SteadyState, ReplaysTheKernelPeriod) {
  // Executing the steady-state net must achieve exactly the kernel
  // period: every instance transition fires once per p cycles.
  SdspPn Pn = buildSdspPn(Sdsp::standard(buildL2Direct()));
  auto F = detectFrustum(Pn.Net);
  ASSERT_TRUE(F.has_value());
  SteadyStateNet SSN = buildSteadyStateNet(Pn.Net, *F);
  auto F2 = detectFrustum(SSN.Net);
  ASSERT_TRUE(F2.has_value());
  for (TransitionId T : SSN.Net.transitionIds())
    EXPECT_EQ(F2->computationRate(T),
              Rational(1, static_cast<int64_t>(F->length())));
}

TEST(SteadyState, MultiTokenWrapDistribution) {
  // Ring with 2 tokens among 4 transitions: k = 2 occurrences... the
  // ring fires each transition once per state recurrence?  Measure via
  // the frustum and check the construction stays consistent.
  PetriNet Ring = buildRing(4, 2);
  auto F = detectFrustum(Ring);
  ASSERT_TRUE(F.has_value());
  SteadyStateNet SSN = buildSteadyStateNet(Ring, *F);
  EXPECT_TRUE(isMarkedGraph(SSN.Net));
  EXPECT_TRUE(isLiveMarkedGraph(SSN.Net));
  EXPECT_EQ(SSN.Net.initialMarking().totalTokens(), 2u);
}

TEST(SteadyState, RandomNetsStayConsistent) {
  Rng R(123);
  for (int Trial = 0; Trial < 10; ++Trial) {
    DataflowGraph G = buildRandomLoopGraph(R, 3 + Trial % 6, 25);
    SdspPn Pn = buildSdspPn(Sdsp::standard(G));
    auto F = detectFrustum(Pn.Net);
    ASSERT_TRUE(F.has_value());
    SteadyStateNet SSN = buildSteadyStateNet(Pn.Net, *F);
    EXPECT_TRUE(isMarkedGraph(SSN.Net)) << "trial " << Trial;
    EXPECT_TRUE(isLiveMarkedGraph(SSN.Net)) << "trial " << Trial;
    EXPECT_EQ(SSN.Net.initialMarking().totalTokens(),
              F->State.M.totalTokens())
        << "trial " << Trial;
  }
}

} // namespace
