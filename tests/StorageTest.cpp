//===- tests/StorageTest.cpp - Storage minimization tests ------------------===//
//
// Part of the SDSP project: a reproduction of Gao, Wong & Ning,
// "A Timed Petri-Net Model for Fine-Grain Loop Scheduling", PLDI 1991.
//
//===----------------------------------------------------------------------===//

#include "core/StorageOptimizer.h"

#include "TestUtil.h"
#include "core/StorageExact.h"
#include "core/Frustum.h"
#include "core/RateAnalysis.h"
#include "core/ScheduleDerivation.h"
#include "core/SdspPn.h"
#include "petri/MarkedGraph.h"
#include "gtest/gtest.h"

using namespace sdsp;
using namespace sdsp::testutil;

namespace {

TEST(Storage, L2ReducesAtLeastToFigure4) {
  // Section 6 / Figure 4: six locations before, five after the
  // paper's single chain merge; our optimizer may do at least as well.
  Sdsp S = Sdsp::standard(buildL2Direct());
  StorageOptResult R = minimizeStorage(S);
  EXPECT_EQ(R.StorageBefore, 6u);
  EXPECT_LE(R.StorageAfter, 5u);
  EXPECT_EQ(R.OptimalRate, Rational(1, 3));
}

TEST(Storage, RatePreservedOnL2) {
  Sdsp S = Sdsp::standard(buildL2Direct());
  StorageOptResult R = minimizeStorage(S);
  SdspPn Optimized = buildSdspPn(R.Optimized);
  EXPECT_EQ(analyzeRate(Optimized).OptimalRate, R.OptimalRate);
  // And the frustum actually achieves it.
  auto F = detectFrustum(Optimized.Net);
  ASSERT_TRUE(F.has_value());
  for (TransitionId T : Optimized.Net.transitionIds())
    EXPECT_EQ(F->computationRate(T), R.OptimalRate);
}

TEST(Storage, OptimizedNetStaysLive) {
  Sdsp S = Sdsp::standard(buildL2Direct());
  StorageOptResult R = minimizeStorage(S);
  SdspPn Pn = buildSdspPn(R.Optimized);
  EXPECT_TRUE(isMarkedGraph(Pn.Net));
  EXPECT_TRUE(isLiveMarkedGraph(Pn.Net));
}

TEST(Storage, OptimizedScheduleStillComputesCorrectly) {
  Sdsp S = Sdsp::standard(buildL2Direct());
  StorageOptResult R = minimizeStorage(S);
  SdspPn Pn = buildSdspPn(R.Optimized);
  auto F = detectFrustum(Pn.Net);
  ASSERT_TRUE(F.has_value());
  SoftwarePipelineSchedule Sched = deriveSchedule(Pn, *F);
  std::string Error;
  EXPECT_TRUE(validateSchedule(R.Optimized, Pn, Sched, 48, &Error))
      << Error;
}

TEST(Storage, L1ChainsBoundedByAlphaStar) {
  // L1's alpha* is 2, so chains may cover at most 2 nodes (1 arc):
  // no merging possible; storage stays 5.
  Sdsp S = Sdsp::standard(buildL1());
  StorageOptResult R = minimizeStorage(S);
  EXPECT_EQ(R.StorageBefore, 5u);
  EXPECT_EQ(R.StorageAfter, 5u);
}

TEST(Storage, LongChainWithSlackMerges) {
  // A 6-node recurrence n1 = x + n6[i-1], n2..n6 = chain of moves:
  // alpha* = 6, so the whole 5-arc forward chain can share one ack:
  // storage drops from 6 to 2.
  GraphBuilder B;
  auto X = B.input("x");
  NodeId N1 = B.graph().addNode(OpKind::Add, "n1");
  B.graph().connect(X.N, X.Port, N1, 0);
  auto N2 = B.identity(GraphBuilder::Value{N1, 0}, "n2");
  auto N3 = B.identity(N2, "n3");
  auto N4 = B.identity(N3, "n4");
  auto N5 = B.identity(N4, "n5");
  auto N6 = B.identity(N5, "n6");
  B.graph().connectFeedback(N6.N, N6.Port, N1, 1, {0.0});
  B.outputValue("y", N6);
  Sdsp S = Sdsp::standard(B.take());
  StorageOptResult R = minimizeStorage(S);
  EXPECT_EQ(R.StorageBefore, 6u);
  EXPECT_EQ(R.StorageAfter, 2u);
  EXPECT_EQ(R.OptimalRate, Rational(1, 6));
  SdspPn Pn = buildSdspPn(R.Optimized);
  EXPECT_EQ(analyzeRate(Pn).OptimalRate, R.OptimalRate);
}

TEST(StorageExact, L2FindsTheFourLocationCover) {
  Sdsp S = Sdsp::standard(buildL2Direct());
  auto R = minimizeStorageExact(S);
  ASSERT_TRUE(R.has_value());
  EXPECT_EQ(R->StorageBefore, 6u);
  EXPECT_EQ(R->StorageAfter, 4u);
  EXPECT_EQ(R->OptimalRate, Rational(1, 3));
}

TEST(StorageExact, NeverWorseThanGreedy) {
  Rng Rand(3131);
  for (int Trial = 0; Trial < 12; ++Trial) {
    DataflowGraph G = buildRandomLoopGraph(Rand, 4 + Trial % 5, 25);
    Sdsp S = Sdsp::standard(G);
    StorageOptResult Greedy = minimizeStorage(S);
    auto Exact = minimizeStorageExact(S);
    ASSERT_TRUE(Exact.has_value()) << "trial " << Trial;
    EXPECT_LE(Exact->StorageAfter, Greedy.StorageAfter)
        << "trial " << Trial;
    // And the exact cover is genuinely rate-preserving end to end.
    SdspPn Pn = buildSdspPn(Exact->Optimized);
    auto F = detectFrustum(Pn.Net);
    ASSERT_TRUE(F.has_value()) << "trial " << Trial;
    for (TransitionId T : Pn.Net.transitionIds())
      EXPECT_EQ(F->computationRate(T), Exact->OptimalRate)
          << "trial " << Trial;
  }
}

TEST(StorageExact, BudgetExhaustionReturnsNothing) {
  Sdsp S = Sdsp::standard(buildL2Direct());
  EXPECT_FALSE(minimizeStorageExact(S, /*NodeBudget=*/2).has_value());
}

TEST(Storage, RandomGraphsNeverLoseRateOrCoverage) {
  Rng Rand(808);
  for (int Trial = 0; Trial < 12; ++Trial) {
    DataflowGraph G = buildRandomLoopGraph(Rand, 4 + Trial % 6, 25);
    Sdsp S = Sdsp::standard(G);
    StorageOptResult R = minimizeStorage(S);
    EXPECT_LE(R.StorageAfter, R.StorageBefore) << "trial " << Trial;
    SdspPn Pn = buildSdspPn(R.Optimized);
    EXPECT_EQ(analyzeRate(Pn).OptimalRate, R.OptimalRate)
        << "trial " << Trial;
    EXPECT_TRUE(isLiveMarkedGraph(Pn.Net)) << "trial " << Trial;
    auto F = detectFrustum(Pn.Net);
    ASSERT_TRUE(F.has_value()) << "trial " << Trial;
    for (TransitionId T : Pn.Net.transitionIds())
      EXPECT_EQ(F->computationRate(T), R.OptimalRate)
          << "trial " << Trial;
  }
}

} // namespace
