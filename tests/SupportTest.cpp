//===- tests/SupportTest.cpp - Support library unit tests ------------------===//
//
// Part of the SDSP project: a reproduction of Gao, Wong & Ning,
// "A Timed Petri-Net Model for Fine-Grain Loop Scheduling", PLDI 1991.
//
//===----------------------------------------------------------------------===//

#include "support/Dot.h"
#include "support/Hashing.h"
#include "support/Ids.h"
#include "support/Random.h"
#include "support/TextTable.h"

#include "gtest/gtest.h"

#include <set>
#include <sstream>

using namespace sdsp;

namespace {

struct FooTag {};
using FooId = Id<FooTag>;

TEST(Ids, ValidityAndOrdering) {
  FooId Invalid;
  EXPECT_FALSE(Invalid.isValid());
  FooId A(3u), B(5u);
  EXPECT_TRUE(A.isValid());
  EXPECT_EQ(A.index(), 3u);
  EXPECT_LT(A, B);
  EXPECT_NE(A, B);
  EXPECT_EQ(FooId(3u), A);
}

TEST(Ids, Hashable) {
  std::set<size_t> Hashes;
  for (uint32_t I = 0; I < 100; ++I)
    Hashes.insert(std::hash<FooId>()(FooId(I)));
  EXPECT_GT(Hashes.size(), 90u) << "hash should spread ids";
}

TEST(Hashing, OrderSensitivity) {
  size_t A = 0, B = 0;
  hashCombine(A, 1);
  hashCombine(A, 2);
  hashCombine(B, 2);
  hashCombine(B, 1);
  EXPECT_NE(A, B);
}

TEST(Hashing, RangeHashing) {
  size_t A = 0, B = 0;
  hashCombineRange(A, std::vector<uint32_t>{1, 2, 3});
  hashCombineRange(B, std::vector<uint32_t>{1, 2, 3});
  EXPECT_EQ(A, B);
  size_t C = 0;
  hashCombineRange(C, std::vector<uint32_t>{3, 2, 1});
  EXPECT_NE(A, C);
}

TEST(Random, DeterministicAndInRange) {
  Rng R1(7), R2(7);
  for (int I = 0; I < 100; ++I)
    EXPECT_EQ(R1.next(), R2.next());
  Rng R(123);
  for (int I = 0; I < 1000; ++I) {
    int64_t V = R.range(-5, 5);
    EXPECT_GE(V, -5);
    EXPECT_LE(V, 5);
    double U = R.uniform();
    EXPECT_GE(U, 0.0);
    EXPECT_LT(U, 1.0);
  }
}

TEST(Random, ChanceIsRoughlyCalibrated) {
  Rng R(99);
  int Hits = 0;
  for (int I = 0; I < 10000; ++I)
    Hits += R.chance(1, 4);
  EXPECT_NEAR(Hits, 2500, 200);
}

TEST(TextTable, AlignsColumns) {
  TextTable T;
  T.startRow();
  T.cell("name");
  T.cell("value");
  T.startRow();
  T.cell("x");
  T.cell(int64_t(12345));
  T.startRow();
  T.cell("longer-name");
  T.cell(0.5, 2);
  std::ostringstream OS;
  T.print(OS);
  std::string S = OS.str();
  EXPECT_NE(S.find("name"), std::string::npos);
  EXPECT_NE(S.find("12345"), std::string::npos);
  EXPECT_NE(S.find("0.50"), std::string::npos);
  EXPECT_NE(S.find("---"), std::string::npos) << "header rule expected";
}

TEST(Dot, EscapesQuotes) {
  std::ostringstream OS;
  {
    DotWriter D(OS, "g\"raph");
    D.node("a", "la\"bel");
    D.edge("a", "a", "e\\dge");
  }
  std::string S = OS.str();
  EXPECT_NE(S.find("\\\""), std::string::npos);
  EXPECT_EQ(S.find("label=\"la\"bel\""), std::string::npos);
  EXPECT_NE(S.find("}"), std::string::npos);
}

} // namespace
