//===- tests/TestUtil.h - Shared test fixtures ------------------*- C++ -*-===//
//
// Part of the SDSP project: a reproduction of Gao, Wong & Ning,
// "A Timed Petri-Net Model for Fine-Grain Loop Scheduling", PLDI 1991.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Hand-built versions of the paper's example loops (independent of the
/// loopir frontend, so core tests do not depend on the parser), plus
/// small net generators shared by property tests.
///
//===----------------------------------------------------------------------===//

#ifndef SDSP_TESTS_TESTUTIL_H
#define SDSP_TESTS_TESTUTIL_H

#include "dataflow/GraphBuilder.h"
#include "petri/PetriNet.h"
#include "support/Random.h"

namespace sdsp {
namespace testutil {

/// The paper's L1 (Figure 1): a five-node DOALL body.
inline DataflowGraph buildL1() {
  GraphBuilder B;
  auto A = B.add(B.input("X"), B.constant(5), "A");
  auto Bv = B.add(B.input("Y"), A, "B");
  auto C = B.add(A, B.input("Z"), "C");
  auto D = B.add(Bv, C, "D");
  auto E = B.add(B.input("W"), D, "E");
  B.outputValue("E", E);
  return B.take();
}

/// The paper's L2 (Figure 2): L1 with the loop-carried dependence
/// C = A + E[i-1].
inline DataflowGraph buildL2() {
  GraphBuilder B;
  auto A = B.add(B.input("X"), B.constant(5), "A");
  auto Bv = B.add(B.input("Y"), A, "B");
  auto EPrev = B.delayed({0.0}, "Eprev");
  auto C = B.add(A, EPrev.value(), "C");
  auto D = B.add(Bv, C, "D");
  auto E = B.add(B.input("W"), D, "E");
  EPrev.bind(E);
  B.outputValue("E", E);
  return B.take();
}

/// A direct-feedback L2 without the delay identity: C = A + E[i-1]
/// wired straight from E, matching the paper's five-node Figure 2.
inline DataflowGraph buildL2Direct() {
  GraphBuilder B;
  auto A = B.add(B.input("X"), B.constant(5), "A");
  auto Bv = B.add(B.input("Y"), A, "B");
  NodeId C = B.graph().addNode(OpKind::Add, "C");
  B.graph().connect(A.N, A.Port, C, 0);
  auto D = B.add(Bv, GraphBuilder::Value{C, 0}, "D");
  auto E = B.add(B.input("W"), D, "E");
  B.graph().connectFeedback(E.N, E.Port, C, 1, {0.0});
  B.outputValue("E", E);
  return B.take();
}

/// A simple ring net: n transitions in a cycle with \p Tokens tokens on
/// the first place; unit execution times.
inline PetriNet buildRing(size_t N, uint32_t Tokens) {
  PetriNet Net;
  std::vector<TransitionId> Ts;
  for (size_t I = 0; I < N; ++I)
    Ts.push_back(Net.addTransition("t" + std::to_string(I)));
  for (size_t I = 0; I < N; ++I) {
    PlaceId P = Net.addPlace("p" + std::to_string(I),
                             I == 0 ? Tokens : 0);
    Net.addArc(Ts[I], P);
    Net.addArc(P, Ts[(I + 1) % N]);
  }
  return Net;
}

/// A random live safe strongly connected marked graph built the SDSP
/// way: a DAG (spine t0 -> t1 -> ... plus random forward chords), each
/// data edge (0 tokens) paired with a reverse ack edge (1 token).
/// Every cycle alternates through at least one ack (live); every edge
/// lies on its 2-cycle with exactly one token (safe); the pairing makes
/// the graph strongly connected.
inline PetriNet buildRandomMarkedGraph(Rng &R, size_t N, size_t Chords) {
  PetriNet Net;
  std::vector<TransitionId> Ts;
  for (size_t I = 0; I < N; ++I)
    Ts.push_back(Net.addTransition("t" + std::to_string(I),
                                   static_cast<TimeUnits>(1 + R.range(0, 2))));
  auto AddPair = [&](size_t U, size_t V, const std::string &Tag) {
    PlaceId Data = Net.addPlace("d" + Tag, 0);
    Net.addArc(Ts[U], Data);
    Net.addArc(Data, Ts[V]);
    PlaceId Ack = Net.addPlace("a" + Tag, 1);
    Net.addArc(Ts[V], Ack);
    Net.addArc(Ack, Ts[U]);
  };
  for (size_t I = 0; I + 1 < N; ++I)
    AddPair(I, I + 1, std::to_string(I));
  for (size_t C = 0; C < Chords && N >= 3; ++C) {
    size_t U = static_cast<size_t>(R.range(0, static_cast<int64_t>(N) - 2));
    size_t V = static_cast<size_t>(
        R.range(static_cast<int64_t>(U) + 1, static_cast<int64_t>(N) - 1));
    AddPair(U, V, "c" + std::to_string(C));
  }
  return Net;
}

/// Local boundary test to keep TestUtil independent of core headers.
inline bool isBoundaryLike(OpKind K) {
  return K == OpKind::Input || K == OpKind::Const || K == OpKind::Output;
}

/// A random well-formed loop dataflow graph: \p Ops binary compute
/// nodes whose operands are earlier compute nodes, fresh inputs, or
/// (with \p FeedbackPercent probability) loop-carried references to a
/// random compute node; dangling values are routed to outputs.
/// \p MaxExecTime > 1 draws per-node execution times from [1,
/// MaxExecTime].
inline DataflowGraph buildRandomLoopGraph(Rng &R, size_t Ops,
                                          uint64_t FeedbackPercent,
                                          uint32_t MaxExecTime = 1) {
  DataflowGraph G;
  std::vector<NodeId> Compute;
  struct PendingFeedback {
    NodeId Consumer;
    uint32_t Port;
    size_t ConsumerPos;
  };
  std::vector<PendingFeedback> Feedbacks;

  for (size_t I = 0; I < Ops; ++I) {
    OpKind K = R.chance(1, 2) ? OpKind::Add : OpKind::Mul;
    NodeId N = G.addNode(K, "n" + std::to_string(I));
    if (MaxExecTime > 1)
      G.setExecTime(N, static_cast<uint32_t>(R.range(1, MaxExecTime)));
    for (uint32_t Port = 0; Port < 2; ++Port) {
      // Port 0 always chains to an earlier compute node so the interior
      // graph stays connected (the paper's uniform-cycle-time results
      // assume a connected marked graph); port 1 varies freely.
      if (Port == 0 && !Compute.empty()) {
        NodeId Src = Compute[static_cast<size_t>(
            R.range(0, static_cast<int64_t>(Compute.size()) - 1))];
        G.connect(Src, 0, N, 0);
        continue;
      }
      if (R.chance(FeedbackPercent, 100)) {
        Feedbacks.push_back(PendingFeedback{N, Port, I});
        continue;
      }
      if (!Compute.empty() && R.chance(1, 2)) {
        NodeId Src = Compute[static_cast<size_t>(
            R.range(0, static_cast<int64_t>(Compute.size()) - 1))];
        G.connect(Src, 0, N, Port);
        continue;
      }
      NodeId In = G.addNode(OpKind::Input,
                            "in" + std::to_string(G.numNodes()));
      G.connect(In, 0, N, Port);
    }
    Compute.push_back(N);
  }

  // Loop-carried producers come from the consumer's position or later
  // (including the consumer itself): the canonical recurrence shape, so
  // the one-token-per-arc discipline never deadlocks and the net stays
  // safe (see core/Sdsp.cpp's spare-slot discussion for the other
  // shape).
  for (const PendingFeedback &F : Feedbacks) {
    NodeId Src = Compute[static_cast<size_t>(
        R.range(static_cast<int64_t>(F.ConsumerPos),
                static_cast<int64_t>(Compute.size()) - 1))];
    G.connectFeedback(Src, 0, F.Consumer, F.Port, {0.0});
  }

  // Route dangling compute values to outputs so validation passes.
  std::vector<NodeId> Dangling;
  for (NodeId N : G.nodeIds())
    if (!isBoundaryLike(G.node(N).Kind) && G.node(N).Fanout.empty())
      Dangling.push_back(N);
  for (NodeId N : Dangling) {
    NodeId Out = G.addNode(OpKind::Output, "out" + std::to_string(N.index()));
    G.connect(N, 0, Out, 0);
  }
  return G;
}

} // namespace testutil
} // namespace sdsp

#endif // SDSP_TESTS_TESTUTIL_H
