//===- tests/TheoryBoundsTest.cpp - Section 4 bound tests ------------------===//
//
// Part of the SDSP project: a reproduction of Gao, Wong & Ning,
// "A Timed Petri-Net Model for Fine-Grain Loop Scheduling", PLDI 1991.
//
//===----------------------------------------------------------------------===//

#include "core/TheoryBounds.h"

#include "TestUtil.h"
#include "core/Frustum.h"
#include "gtest/gtest.h"

using namespace sdsp;
using namespace sdsp::testutil;

namespace {

TEST(TheoryBounds, L2SingleCriticalCycle) {
  SdspPn Pn = buildSdspPn(Sdsp::standard(buildL2Direct()));
  auto B = computeBounds(Pn);
  ASSERT_TRUE(B.has_value());
  EXPECT_TRUE(B->SingleCriticalCycle);
  EXPECT_EQ(B->N, 5u);
  EXPECT_EQ(B->IterationBound, 125u);
  EXPECT_EQ(B->TimeStepBound, 625u);
  // Gap between CDEC (3) and the runner-up A-B-D-E-C-A cycle (5
  // transitions over the feedback token plus one ack token: 5/2).
  EXPECT_EQ(B->EpsilonGap, Rational(1, 2));
}

TEST(TheoryBounds, L1MultipleCriticalCycles) {
  SdspPn Pn = buildSdspPn(Sdsp::standard(buildL1()));
  auto B = computeBounds(Pn);
  ASSERT_TRUE(B.has_value());
  EXPECT_FALSE(B->SingleCriticalCycle);
  EXPECT_EQ(B->IterationBound, 25u);
  EXPECT_EQ(B->TimeStepBound, 125u);
  EXPECT_EQ(B->EpsilonGap, Rational(0)) << "all cycles are critical";
}

TEST(TheoryBounds, MeasuredConvergenceWithinTheBound) {
  // Theorem 4.1.2 / 4.2.2: the frustum must appear within the stated
  // number of time steps (and in practice does far earlier).
  Rng R(4242);
  for (int Trial = 0; Trial < 10; ++Trial) {
    DataflowGraph G = buildRandomLoopGraph(R, 3 + Trial % 5, 25);
    SdspPn Pn = buildSdspPn(Sdsp::standard(G));
    auto B = computeBounds(Pn);
    ASSERT_TRUE(B.has_value());
    auto F = detectFrustum(Pn.Net);
    ASSERT_TRUE(F.has_value());
    EXPECT_LE(F->RepeatTime, B->TimeStepBound) << "trial " << Trial;
  }
}

TEST(TheoryBounds, AcyclicNetHasNoBounds) {
  PetriNet Net;
  TransitionId A = Net.addTransition("a");
  TransitionId B = Net.addTransition("b");
  PlaceId P = Net.addPlace("p", 1);
  Net.addArc(A, P);
  Net.addArc(P, B);
  SdspPn Pn;
  Pn.Net = std::move(Net);
  EXPECT_FALSE(computeBounds(Pn).has_value());
}

} // namespace
