//===- tests/TraceTest.cpp - Trace-event capture schema --------------------===//
//
// Part of the SDSP project: a reproduction of Gao, Wong & Ning,
// "A Timed Petri-Net Model for Fine-Grain Loop Scheduling", PLDI 1991.
//
//===----------------------------------------------------------------------===//
//
// Golden-schema tests for support/Trace.h: the serialized capture is
// the Chrome trace-event JSON that CI validates with
// tools/tracecheck.py, so the invariants that script enforces (balanced
// B/E nesting, per-track monotone timestamps, instants carrying an
// explicit scope, metadata naming every track) are pinned here at the
// unit level too — plus the session integration: compiling a kernel
// with SessionConfig::Trace set records one balanced span per pass run.
//
//===----------------------------------------------------------------------===//

#include "support/Trace.h"

#include "core/Session.h"
#include "livermore/Livermore.h"

#include "gtest/gtest.h"

#include <sstream>
#include <string>
#include <vector>

using namespace sdsp;

namespace {

/// The trace is emitted one event per line; these string-level helpers
/// are deliberately parser-free (the full JSON validation runs in CI
/// through tracecheck.py).
std::vector<std::string> eventLines(const std::string &Json,
                                    const std::string &Phase) {
  std::vector<std::string> Out;
  std::istringstream SS(Json);
  std::string Line;
  std::string Needle = "\"ph\": \"" + Phase + "\"";
  while (std::getline(SS, Line))
    if (Line.find(Needle) != std::string::npos)
      Out.push_back(Line);
  return Out;
}

int64_t tsOf(const std::string &Line) {
  size_t P = Line.find("\"ts\": ");
  EXPECT_NE(P, std::string::npos) << Line;
  return std::stoll(Line.substr(P + 6));
}

std::string dump(const TraceCollector &C) {
  std::ostringstream OS;
  C.writeJson(OS);
  return OS.str();
}

TEST(TraceTest, SpansBalanceAndNest) {
  TraceCollector C;
  TraceTrack &T = C.track("session");
  T.beginSpan("outer");
  T.instant("tick", "event");
  T.beginSpan("inner");
  T.endSpan();
  T.argStr("resolved", "computed");
  T.endSpan();

  std::string Json = dump(C);
  auto Begins = eventLines(Json, "B");
  auto Ends = eventLines(Json, "E");
  ASSERT_EQ(Begins.size(), 2u);
  ASSERT_EQ(Ends.size(), 2u);
  // LIFO close order: the inner span's E comes first and carries the
  // arg attached right after its endSpan().
  EXPECT_NE(Ends[0].find("\"name\": \"inner\""), std::string::npos);
  EXPECT_NE(Ends[0].find("\"resolved\": \"computed\""),
            std::string::npos);
  EXPECT_NE(Ends[1].find("\"name\": \"outer\""), std::string::npos);
  // The instant survives inside the span without confusing E matching,
  // and carries the thread scope Perfetto requires.
  auto Instants = eventLines(Json, "i");
  ASSERT_EQ(Instants.size(), 1u);
  EXPECT_NE(Instants[0].find("\"s\": \"t\""), std::string::npos);
}

TEST(TraceTest, TimestampsMonotonePerTrack) {
  TraceCollector C;
  TraceTrack &T = C.track("t");
  for (int I = 0; I < 16; ++I) {
    T.beginSpan("s");
    T.endSpan();
  }
  std::string Json = dump(C);
  int64_t Last = -1;
  std::istringstream SS(Json);
  std::string Line;
  for (auto &L : eventLines(Json, "B")) {
    int64_t Ts = tsOf(L);
    EXPECT_GE(Ts, Last);
    Last = Ts;
  }
  (void)SS;
  (void)Line;
}

TEST(TraceTest, MetadataNamesProcessAndEveryTrack) {
  TraceCollector C;
  C.track("alpha");
  C.track("beta");
  std::string Json = dump(C);
  EXPECT_NE(Json.find("\"process_name\""), std::string::npos);
  EXPECT_NE(Json.find("\"name\": \"alpha\""), std::string::npos);
  EXPECT_NE(Json.find("\"name\": \"beta\""), std::string::npos);
  // Tracks get distinct, creation-ordered tids (1-based; tid 0 is the
  // process metadata row).
  auto Meta = eventLines(Json, "M");
  ASSERT_EQ(Meta.size(), 3u);
  EXPECT_NE(Meta[1].find("\"tid\": 1"), std::string::npos);
  EXPECT_NE(Meta[2].find("\"tid\": 2"), std::string::npos);
}

TEST(TraceTest, EscapesControlAndQuoteCharacters) {
  TraceCollector C;
  TraceTrack &T = C.track("quote\"track");
  T.instant("line\nbreak", "event");
  std::string Json = dump(C);
  EXPECT_NE(Json.find("quote\\\"track"), std::string::npos);
  EXPECT_NE(Json.find("line\\nbreak"), std::string::npos);
}

TEST(TraceTest, SessionCompileRecordsBalancedPassSpans) {
  const LivermoreKernel *K = findKernel("l1");
  ASSERT_NE(K, nullptr);
  TraceCollector C;
  SessionConfig Cfg;
  Cfg.Trace = &C.track("kernel:l1");
  CompilationSession Session(Cfg);
  PipelineOptions Opts;
  Opts.Verify = true;
  auto R = Session.compile(K->Source, Opts);
  ASSERT_TRUE(bool(R)) << R.status().str();

  std::string Json = dump(C);
  auto Begins = eventLines(Json, "B");
  auto Ends = eventLines(Json, "E");
  EXPECT_EQ(Begins.size(), Ends.size());
  EXPECT_GE(Begins.size(), 5u); // lower, sdsp, sdsp-pn, frustum, ...
  // Every close records how the pass resolved.
  for (const std::string &L : Ends)
    EXPECT_NE(L.find("\"resolved\": "), std::string::npos) << L;
  // The frustum pass emitted its repeat-point instant.
  std::string FrustumInstant;
  for (const std::string &L : eventLines(Json, "i"))
    if (L.find("\"frustum-repeat\"") != std::string::npos)
      FrustumInstant = L;
  ASSERT_FALSE(FrustumInstant.empty());
  EXPECT_NE(FrustumInstant.find("\"repeat\": "), std::string::npos);
}

} // namespace
