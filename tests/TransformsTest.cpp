//===- tests/TransformsTest.cpp - Dataflow optimization tests --------------===//
//
// Part of the SDSP project: a reproduction of Gao, Wong & Ning,
// "A Timed Petri-Net Model for Fine-Grain Loop Scheduling", PLDI 1991.
//
//===----------------------------------------------------------------------===//

#include "dataflow/Transforms.h"

#include "TestUtil.h"
#include "dataflow/Interpreter.h"
#include "dataflow/Validate.h"
#include "livermore/Livermore.h"
#include "loopir/Lowering.h"
#include "gtest/gtest.h"

#include <cmath>

using namespace sdsp;
using namespace sdsp::testutil;

namespace {

DataflowGraph compileSrc(const std::string &Src) {
  DiagnosticEngine Diags;
  auto G = compileLoop(Src, Diags);
  EXPECT_TRUE(G.has_value());
  return std::move(*G);
}

TEST(Transforms, FoldsConstantExpressions) {
  DataflowGraph G =
      compileSrc("doall i { A = X[i] + (2 + 3) * 4; out A; }");
  TransformStats Stats;
  DataflowGraph Opt = optimize(G, Stats);
  EXPECT_GE(Stats.ConstantsFolded, 2u) << "2+3 and *4";
  EXPECT_TRUE(isWellFormed(Opt));

  StreamMap In;
  In["X"] = {1, 2};
  InterpResult R = interpret(Opt, In, 2);
  EXPECT_DOUBLE_EQ(R.Outputs.at("A")[0], 21.0);
  EXPECT_DOUBLE_EQ(R.Outputs.at("A")[1], 22.0);
}

TEST(Transforms, CseMergesRepeatedSubexpressions) {
  DataflowGraph G = compileSrc(
      "doall i { A = (X[i] + Y[i]) * (X[i] + Y[i]); out A; }");
  size_t Before = G.numNodes();
  TransformStats Stats;
  DataflowGraph Opt = optimize(G, Stats);
  EXPECT_GE(Stats.SubexpressionsMerged, 1u);
  EXPECT_LT(Opt.numNodes(), Before);

  StreamMap In;
  In["X"] = {3};
  In["Y"] = {4};
  EXPECT_DOUBLE_EQ(interpret(Opt, In, 1).Outputs.at("A")[0], 49.0);
}

TEST(Transforms, CseKeepsDistinctFeedbackApart) {
  // s and t accumulate different streams: identical op kinds but
  // different operands must NOT merge.
  DataflowGraph G = compileSrc(
      "do i { init s = 0; init t = 0; s = s[i-1] + X[i]; "
      "t = t[i-1] + Y[i]; out s; out t; }");
  TransformStats Stats;
  DataflowGraph Opt = optimize(G, Stats);
  StreamMap In;
  In["X"] = {1, 2, 3};
  In["Y"] = {10, 20, 30};
  InterpResult R = interpret(Opt, In, 3);
  EXPECT_DOUBLE_EQ(R.Outputs.at("s")[2], 6.0);
  EXPECT_DOUBLE_EQ(R.Outputs.at("t")[2], 60.0);
}

TEST(Transforms, DceDropsUnusedChains) {
  // Build by hand: a used chain and an unused one.
  GraphBuilder B;
  auto X = B.input("x");
  auto Used = B.add(X, B.constant(1), "used");
  B.outputValue("y", Used);
  auto Dead = B.mul(X, B.constant(2), "dead");
  B.identity(Dead, "deader"); // dangling
  DataflowGraph G = B.graph();

  TransformStats Stats;
  DataflowGraph Opt = eliminateDeadCode(G, Stats);
  EXPECT_GE(Stats.DeadNodesRemoved, 2u);
  EXPECT_TRUE(isWellFormed(Opt));
  StreamMap In;
  In["x"] = {5};
  EXPECT_DOUBLE_EQ(interpret(Opt, In, 1).Outputs.at("y")[0], 6.0);
}

TEST(Transforms, SemanticsPreservedOnEveryKernel) {
  for (const LivermoreKernel &K : livermoreKernels()) {
    DataflowGraph G = compileSrc(K.Source);
    TransformStats Stats;
    DataflowGraph Opt = optimize(G, Stats);
    EXPECT_TRUE(isWellFormed(Opt)) << K.Name;
    EXPECT_LE(Opt.numNodes(), G.numNodes()) << K.Name;

    const size_t N = 24;
    StreamMap In = K.MakeInputs(N, 555);
    StreamMap Want = K.Reference(In, N);
    InterpResult Got = interpret(Opt, In, N);
    for (const auto &[Name, Values] : Want)
      for (size_t I = 0; I < Values.size(); ++I)
        EXPECT_NEAR(Got.Outputs.at(Name)[I], Values[I],
                    1e-9 * (1.0 + std::fabs(Values[I])))
            << K.Name << " " << Name << "[" << I << "]";
  }
}

TEST(Transforms, Loop7SharesScalarProducts) {
  // loop7 multiplies by r and q repeatedly; CSE should find at least
  // the repeated scalar loads (inputs are already deduped by the
  // frontend, so gains come from fold/DCE only if any); mostly this
  // guards that optimize() terminates and changes nothing semantically
  // on a large body.
  DataflowGraph G = compileSrc(findKernel("loop7")->Source);
  TransformStats Stats;
  DataflowGraph Opt = optimize(G, Stats);
  EXPECT_TRUE(isWellFormed(Opt));
  EXPECT_EQ(Stats.NodesBefore, G.numNodes());
  EXPECT_EQ(Stats.NodesAfter, Opt.numNodes());
}

TEST(Transforms, AlgebraBypassesNeutralElements) {
  DataflowGraph G = compileSrc(
      "doall i { A = (X[i] + 0) * 1 - 0; out A; }");
  TransformStats Stats;
  DataflowGraph Opt = optimize(G, Stats);
  EXPECT_GE(Stats.AlgebraicRewrites, 3u);
  // Everything collapses to out(X): only the input and output remain.
  size_t Compute = 0;
  for (NodeId N : Opt.nodeIds()) {
    OpKind K = Opt.node(N).Kind;
    if (K != OpKind::Input && K != OpKind::Const && K != OpKind::Output)
      ++Compute;
  }
  EXPECT_EQ(Compute, 0u);
  StreamMap In;
  In["X"] = {7.5};
  EXPECT_DOUBLE_EQ(interpret(Opt, In, 1).Outputs.at("A")[0], 7.5);
}

TEST(Transforms, AlgebraPreservesDummySemantics) {
  // Inside a conditional, `t * 1` on the unselected branch carries a
  // dummy; the rewrite forwards the dummy unchanged (x*0 -> 0 would
  // not, which is why it is not performed).
  GraphBuilder B;
  auto X = B.input("x");
  auto C = B.lt(X, B.constant(0));
  auto [T1, F1] = B.switchOn(C, X);
  auto Scaled = B.mul(T1, B.constant(1), "scaled");
  auto M = B.merge(C, B.neg(Scaled), F1, "abs");
  B.outputValue("abs", M);
  DataflowGraph G = B.take();

  TransformStats Stats;
  DataflowGraph Opt = optimize(G, Stats);
  EXPECT_GE(Stats.AlgebraicRewrites, 1u);
  StreamMap In;
  In["x"] = {-3, 4};
  InterpResult R = interpret(Opt, In, 2);
  EXPECT_DOUBLE_EQ(R.Outputs.at("abs")[0], 3.0);
  EXPECT_DOUBLE_EQ(R.Outputs.at("abs")[1], 4.0);
  EXPECT_FALSE(R.DummyMask.at("abs")[0]);
  EXPECT_FALSE(R.DummyMask.at("abs")[1]);
}

TEST(Transforms, FeedbackOperandBlocksBypass) {
  // s = s[i-1] + 0 is a pure delay; bypassing would change timing, so
  // the node must survive (and the loop still behaves like a delay).
  DataflowGraph G = compileSrc(
      "do i { init s = 5; s = s[i-1] + 0; out s; }");
  TransformStats Stats;
  DataflowGraph Opt = optimize(G, Stats);
  StreamMap In;
  InterpResult R = interpret(Opt, In, 3);
  EXPECT_DOUBLE_EQ(R.Outputs.at("s")[2], 5.0);
}

TEST(Transforms, IdempotentAtFixedPoint) {
  DataflowGraph G = compileSrc(
      "doall i { A = (X[i] + 0) * (X[i] + 0) + 2 * 3; out A; }");
  TransformStats S1;
  DataflowGraph Once = optimize(G, S1);
  TransformStats S2;
  DataflowGraph Twice = optimize(Once, S2);
  EXPECT_FALSE(S2.changedAnything());
  EXPECT_EQ(Once.numNodes(), Twice.numNodes());
}

TEST(Transforms, RandomGraphsSurviveOptimization) {
  Rng R(777);
  for (int Trial = 0; Trial < 15; ++Trial) {
    DataflowGraph G = buildRandomLoopGraph(R, 4 + Trial % 6, 25);
    TransformStats Stats;
    DataflowGraph Opt = optimize(G, Stats);
    ASSERT_TRUE(isWellFormed(Opt)) << "trial " << Trial;

    const size_t N = 12;
    StreamMap In;
    for (NodeId Node : G.nodeIds())
      if (G.node(Node).Kind == OpKind::Input) {
        std::vector<double> V(N);
        for (double &X : V)
          X = R.uniform();
        In[G.node(Node).Name] = V;
      }
    InterpResult Want = interpret(G, In, N);
    InterpResult Got = interpret(Opt, In, N);
    for (const auto &[Name, Values] : Want.Outputs) {
      ASSERT_EQ(Got.Outputs.count(Name), 1u) << Name;
      for (size_t I = 0; I < Values.size(); ++I)
        EXPECT_NEAR(Got.Outputs.at(Name)[I], Values[I], 1e-12)
            << "trial " << Trial;
    }
  }
}

} // namespace
