//===- tests/UnrollTest.cpp - Loop unrolling tests -------------------------===//
//
// Part of the SDSP project: a reproduction of Gao, Wong & Ning,
// "A Timed Petri-Net Model for Fine-Grain Loop Scheduling", PLDI 1991.
//
//===----------------------------------------------------------------------===//

#include "dataflow/Unroll.h"

#include "TestUtil.h"
#include "core/RateAnalysis.h"
#include "core/SdspPn.h"
#include "dataflow/Validate.h"
#include "livermore/Livermore.h"
#include "loopir/Lowering.h"
#include "gtest/gtest.h"

#include <cmath>

using namespace sdsp;
using namespace sdsp::testutil;

namespace {

TEST(Unroll, FactorOneIsIdentityShaped) {
  DataflowGraph G = buildL2Direct();
  DataflowGraph U = unrollLoop(G, 1);
  EXPECT_EQ(U.numNodes(), G.numNodes());
  EXPECT_EQ(U.numArcs(), G.numArcs());
}

TEST(Unroll, ReplicatesBodyAndRewiresFeedback) {
  DataflowGraph G = buildL2Direct();
  DataflowGraph U = unrollLoop(G, 3);
  EXPECT_EQ(U.numNodes(), 3 * G.numNodes());
  // Distance-1 feedback: copies 1,2 read the previous copy forward;
  // only copy 0 keeps a (distance-1) feedback arc.
  size_t Feedback = 0, Forward = 0;
  for (ArcId A : U.arcIds()) {
    if (U.arc(A).isFeedback()) {
      ++Feedback;
      EXPECT_EQ(U.arc(A).Distance, 1u);
    } else {
      ++Forward;
    }
  }
  EXPECT_EQ(Feedback, 1u);
  EXPECT_EQ(Forward, 3 * G.numArcs() - 1);
}

TEST(Unroll, SemanticsPreservedOnL2) {
  const LivermoreKernel *K = findKernel("l2");
  DiagnosticEngine Diags;
  auto G = compileLoop(K->Source, Diags);
  ASSERT_TRUE(G.has_value());

  const uint32_t U = 4;
  const size_t Macro = 8, N = Macro * U;
  StreamMap In = K->MakeInputs(N, 606);
  StreamMap Want = K->Reference(In, N);

  DataflowGraph Unrolled = unrollLoop(*G, U);
  StreamMap Got = interleaveOutputs(
      interpret(Unrolled, stridedStreams(In, U, Macro), Macro).Outputs,
      U);
  ASSERT_EQ(Got.at("E").size(), N);
  for (size_t I = 0; I < N; ++I)
    EXPECT_NEAR(Got.at("E")[I], Want.at("E")[I], 1e-9) << I;
}

TEST(Unroll, SemanticsPreservedOnDeepFeedback) {
  // y = x + y[i-3]: distance 3 unrolled by 2 -> mixed distances.
  DataflowGraph G;
  NodeId In = G.addNode(OpKind::Input, "x");
  NodeId A = G.addNode(OpKind::Add, "y");
  G.connect(In, 0, A, 0);
  G.connectFeedback(A, 0, A, 1, {10.0, 20.0, 30.0});
  NodeId Out = G.addNode(OpKind::Output, "y");
  G.connect(A, 0, Out, 0);

  const uint32_t U = 2;
  const size_t Macro = 6, N = Macro * U;
  StreamMap Inputs;
  Inputs["x"] = {1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12};
  StreamMap Want = interpret(G, Inputs, N).Outputs;

  DataflowGraph Unrolled = unrollLoop(G, U);
  StreamMap Got = interleaveOutputs(
      interpret(Unrolled, stridedStreams(Inputs, U, Macro), Macro)
          .Outputs,
      U);
  for (size_t I = 0; I < N; ++I)
    EXPECT_DOUBLE_EQ(Got.at("y")[I], Want.at("y")[I]) << I;
}

TEST(Unroll, RatePerOriginalIterationIsUnchanged) {
  // The paper's motivation, quantified: unrolling multiplies body size
  // and storage but the per-original-iteration optimum stays 1/3.
  DataflowGraph G = buildL2Direct();
  Rational PerIteration(1, 3);
  for (uint32_t U : {1u, 2u, 4u}) {
    Sdsp S = Sdsp::standard(unrollLoop(G, U));
    SdspPn Pn = buildSdspPn(S);
    RateReport R = analyzeRate(Pn);
    // Macro rate * U original iterations per macro iteration.
    EXPECT_EQ(R.OptimalRate * Rational(U), PerIteration) << "U=" << U;
    EXPECT_EQ(S.loopBodySize(), 5u * U);
  }
}

TEST(Unroll, RandomGraphsStayWellFormed) {
  Rng R(2468);
  for (int Trial = 0; Trial < 10; ++Trial) {
    DataflowGraph G = buildRandomLoopGraph(R, 3 + Trial % 5, 25);
    for (uint32_t U : {2u, 3u}) {
      DataflowGraph Unrolled = unrollLoop(G, U);
      EXPECT_TRUE(isWellFormed(Unrolled))
          << "trial " << Trial << " U=" << U;
      EXPECT_EQ(Unrolled.numNodes(), U * G.numNodes());
    }
  }
}

} // namespace
