# Runs one sdspc --batch invocation at -j 1 and -j 8 and asserts that
# stdout, stderr, exit code, and the --batch-json report are
# byte-identical — the batch layer's determinism contract
# (core/BatchCompiler.h).  The batch-determinism CI job repeats this
# over more emit modes; this ctest variant keeps the property pinned in
# every local run.
#
# Usage:
#   cmake -DSDSPC=<path> -DBATCH_ARGS=<;-list> -DWORK_DIR=<dir>
#         -P CheckBatchDeterminism.cmake

foreach(JOBS 1 8)
  execute_process(
    COMMAND ${SDSPC} ${BATCH_ARGS} -j ${JOBS}
            --batch-json=${WORK_DIR}/batch_j${JOBS}.json
    RESULT_VARIABLE EXIT_${JOBS}
    OUTPUT_VARIABLE OUT_${JOBS}
    ERROR_VARIABLE ERR_${JOBS})
endforeach()

if(NOT EXIT_1 EQUAL EXIT_8)
  message(FATAL_ERROR
    "batch exit codes differ: -j 1 -> ${EXIT_1}, -j 8 -> ${EXIT_8}")
endif()
if(NOT OUT_1 STREQUAL OUT_8)
  message(FATAL_ERROR
    "batch stdout differs between -j 1 and -j 8\n"
    "-j 1:\n${OUT_1}\n-j 8:\n${OUT_8}")
endif()
if(NOT ERR_1 STREQUAL ERR_8)
  message(FATAL_ERROR
    "batch stderr differs between -j 1 and -j 8\n"
    "-j 1:\n${ERR_1}\n-j 8:\n${ERR_8}")
endif()

file(READ ${WORK_DIR}/batch_j1.json JSON_1)
file(READ ${WORK_DIR}/batch_j8.json JSON_8)
if(NOT JSON_1 STREQUAL JSON_8)
  message(FATAL_ERROR
    "--batch-json differs between -j 1 and -j 8\n"
    "-j 1:\n${JSON_1}\n-j 8:\n${JSON_8}")
endif()

if(NOT EXIT_1 EQUAL 0)
  message(FATAL_ERROR "batch run failed (exit ${EXIT_1}):\n${ERR_1}")
endif()
