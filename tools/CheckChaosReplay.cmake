# Replays one faulted --batch-kernels run and asserts the fault
# schedule's determinism contract (docs/ROBUSTNESS.md): the same
# SDSP_FAULT_SPEC — injected through the environment channel, not the
# flag, so both channels stay covered — gives byte-identical stdout,
# stderr, exit code, and --batch-json report across runs, and because
# the spec names only thread-count-deterministic sites (pass:*,
# frustum:step, executor:dispatch), the whole report is also identical
# between -j 1 and -j 4.
#
# Usage:
#   cmake -DSDSPC=<path> -DFAULT_SPEC=<spec> -DWORK_DIR=<dir>
#         -P CheckChaosReplay.cmake

set(BASE_ARGS --batch-kernels --verify --retries=2)

foreach(TAG r1 r2 p4)
  if(TAG STREQUAL "p4")
    set(J 4)
  else()
    set(J 1)
  endif()
  execute_process(
    COMMAND ${CMAKE_COMMAND} -E env "SDSP_FAULT_SPEC=${FAULT_SPEC}"
            ${SDSPC} ${BASE_ARGS} -j ${J}
            --batch-json=${WORK_DIR}/chaos_${TAG}.json
    RESULT_VARIABLE EXIT_${TAG}
    OUTPUT_VARIABLE OUT_${TAG}
    ERROR_VARIABLE ERR_${TAG})
  file(READ ${WORK_DIR}/chaos_${TAG}.json JSON_${TAG})
endforeach()

# The schedule must actually have fired: a spec that silently never
# arrives would make every comparison below vacuous.
if(NOT OUT_r1 MATCHES "retried")
  message(FATAL_ERROR
    "fault spec '${FAULT_SPEC}' injected nothing (no retries):\n${OUT_r1}")
endif()

# Replay at the same thread count: byte-for-byte.
foreach(WHAT EXIT OUT ERR JSON)
  if(NOT "${${WHAT}_r1}" STREQUAL "${${WHAT}_r2}")
    message(FATAL_ERROR
      "faulted batch replay is not deterministic (${WHAT} differs)\n"
      "run 1:\n${${WHAT}_r1}\nrun 2:\n${${WHAT}_r2}")
  endif()
endforeach()

# Deterministic sites only, so -j 1 and -j 4 agree too.
foreach(WHAT EXIT OUT ERR JSON)
  if(NOT "${${WHAT}_r1}" STREQUAL "${${WHAT}_p4}")
    message(FATAL_ERROR
      "faulted batch differs between -j 1 and -j 4 (${WHAT})\n"
      "-j 1:\n${${WHAT}_r1}\n-j 4:\n${${WHAT}_p4}")
  endif()
endforeach()

if(NOT EXIT_r1 EQUAL 0)
  message(FATAL_ERROR
    "faulted batch did not recover (exit ${EXIT_r1}):\n${ERR_r1}")
endif()
