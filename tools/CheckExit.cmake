# Runs a sdspc invocation and asserts its exact exit code (and
# optionally a stderr regex).  ctest's PASS_REGULAR_EXPRESSION cannot
# distinguish exit 1 from exit 3, but the exit-code contract
# (docs/ERRORS.md) is exactly what the driver tests must pin down.
#
# Usage:
#   cmake -DSDSPC=<path> -DARGS=<;-list> -DEXPECT_EXIT=<n>
#         [-DEXPECT_STDERR=<regex>] [-DSTDIN_EMPTY=1]
#         -P CheckExit.cmake

separate_arguments(ARG_LIST UNIX_COMMAND "${ARGS}")

if(STDIN_EMPTY)
  # An empty stdin exercises the "empty source" frontend diagnostic.
  set(EMPTY_FILE "${CMAKE_CURRENT_BINARY_DIR}/empty_stdin.txt")
  file(WRITE "${EMPTY_FILE}" "")
  execute_process(
    COMMAND ${SDSPC} ${ARG_LIST}
    INPUT_FILE "${EMPTY_FILE}"
    RESULT_VARIABLE EXIT_CODE
    OUTPUT_VARIABLE OUT
    ERROR_VARIABLE ERR)
else()
  execute_process(
    COMMAND ${SDSPC} ${ARG_LIST}
    RESULT_VARIABLE EXIT_CODE
    OUTPUT_VARIABLE OUT
    ERROR_VARIABLE ERR)
endif()

if(NOT EXIT_CODE EQUAL EXPECT_EXIT)
  message(FATAL_ERROR
    "sdspc ${ARGS}: exit code ${EXIT_CODE}, expected ${EXPECT_EXIT}\n"
    "stdout:\n${OUT}\nstderr:\n${ERR}")
endif()

if(EXPECT_STDERR AND NOT ERR MATCHES "${EXPECT_STDERR}")
  message(FATAL_ERROR
    "sdspc ${ARGS}: stderr does not match '${EXPECT_STDERR}'\n"
    "stderr:\n${ERR}")
endif()
