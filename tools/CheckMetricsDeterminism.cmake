# Pins the determinism contract of `sdspc --metrics-json`
# (docs/OBSERVABILITY.md): the "counters" object — engine, state-table,
# cache, executor task counts — is byte-identical whatever -j, because
# the shared cache computes each key exactly once and shard assignment
# is a pure function of the key hash.  Gauges (queue depth peak, task
# wall seconds) are scheduling-dependent by design and are excluded.
#
# Usage:
#   cmake -DSDSPC=<path> -DWORK_DIR=<dir> [-DTAG=<suffix>]
#         [-DEXTRA_ARGS=<args>] -P CheckMetricsDeterminism.cmake
#
# TAG keeps the scratch files of concurrently running ctest variants
# (SIMD tiers, rate engines) from clobbering each other; EXTRA_ARGS is
# a ;-list appended to the sdspc command line (e.g.
# --rate-engine=enumerate).  SDSP_SIMD is inherited from the test
# environment and forwarded to the sdspc children automatically.

foreach(V SDSPC WORK_DIR)
  if(NOT DEFINED ${V})
    message(FATAL_ERROR "missing -D${V}=")
  endif()
endforeach()
if(NOT DEFINED TAG)
  set(TAG "")
endif()
if(NOT DEFINED EXTRA_ARGS)
  set(EXTRA_ARGS "")
endif()

foreach(J 1 8)
  execute_process(
    COMMAND ${SDSPC} --batch-kernels --verify -j ${J} ${EXTRA_ARGS}
            --metrics-json=${WORK_DIR}/metrics${TAG}_j${J}.json
    OUTPUT_QUIET ERROR_VARIABLE ERR RESULT_VARIABLE CODE)
  if(NOT CODE EQUAL 0)
    message(FATAL_ERROR "sdspc -j ${J} exited ${CODE}:\n${ERR}")
  endif()
  file(READ ${WORK_DIR}/metrics${TAG}_j${J}.json CONTENT)
  # The counters object holds one integer series per line and no nested
  # braces, so a non-greedy brace match lifts it whole.
  string(REGEX MATCH "\"counters\": {[^}]*}" COUNTERS_J${J} "${CONTENT}")
  if(COUNTERS_J${J} STREQUAL "")
    message(FATAL_ERROR
            "metrics${TAG}_j${J}.json has no \"counters\" object:\n${CONTENT}")
  endif()
endforeach()

if(NOT COUNTERS_J1 STREQUAL COUNTERS_J8)
  message(FATAL_ERROR "metrics counters differ between -j 1 and -j 8:\n"
                      "--- -j 1 ---\n${COUNTERS_J1}\n"
                      "--- -j 8 ---\n${COUNTERS_J8}")
endif()
message(STATUS "metrics counters identical across -j 1 / -j 8")
