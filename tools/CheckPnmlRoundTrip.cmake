# The PNML round-trip determinism gate (docs/INTEROP.md): canonical
# export must be a fixpoint of import.  For every SDSP-PN the bundled
# kernels and examples produce, and for every well-formed net in the
# fuzz corpus, export -> import -> export must be byte-identical, and
# `--pnml=NET --verify` must confirm the classification, the frustum
# rate, and round-trip stability in-process.  Malformed corpus nets
# must be *rejected* with the structured exit-code contract (1 for
# input, 2 for resource/transient) — never a crash (ASan/UBSan run
# this same script in CI).  Injected pnml:parse faults must replay
# byte-identically across runs and argument channels.
#
# Usage:
#   cmake -DSDSPC=<path> -DWORK_DIR=<dir> -DCORPUS_DIR=<dir>
#         [-DEXAMPLES_DIR=<dir>] [-DMODE=all|corpus]
#         -P CheckPnmlRoundTrip.cmake

if(NOT MODE)
  set(MODE all)
endif()
file(MAKE_DIRECTORY ${WORK_DIR}/pnml_roundtrip)
set(RT ${WORK_DIR}/pnml_roundtrip)

# Round-trips one exported PNML file: re-import + re-export must give
# the same bytes, and --verify must pass.
function(check_roundtrip NAME FIRST)
  execute_process(COMMAND ${SDSPC} --pnml=${FIRST} --emit=pnml
                  OUTPUT_FILE ${RT}/${NAME}.second.pnml
                  ERROR_VARIABLE ERR RESULT_VARIABLE CODE)
  if(NOT CODE EQUAL 0)
    message(FATAL_ERROR
      "${NAME}: exported PNML does not re-import (exit ${CODE}):\n${ERR}")
  endif()
  execute_process(COMMAND ${CMAKE_COMMAND} -E compare_files
                  ${FIRST} ${RT}/${NAME}.second.pnml
                  RESULT_VARIABLE DIFF)
  if(NOT DIFF EQUAL 0)
    message(FATAL_ERROR
      "${NAME}: export -> import -> export is not byte-identical\n"
      "first:  ${FIRST}\nsecond: ${RT}/${NAME}.second.pnml")
  endif()
  execute_process(COMMAND ${SDSPC} --pnml=${FIRST} --verify
                  OUTPUT_QUIET ERROR_VARIABLE VERR RESULT_VARIABLE VCODE)
  if(NOT VCODE EQUAL 0)
    message(FATAL_ERROR
      "${NAME}: --pnml --verify failed (exit ${VCODE}):\n${VERR}")
  endif()
  if(NOT VERR MATCHES "verify: ok")
    message(FATAL_ERROR "${NAME}: --verify printed no verify line:\n${VERR}")
  endif()
endfunction()

if(MODE STREQUAL "all")
  # Leg 1: every bundled kernel's SDSP-PN.
  foreach(KERNEL l1 l2 loop1 loop3 loop5 loop7 loop9 loop9lcd loop12)
    execute_process(COMMAND ${SDSPC} -k ${KERNEL} --emit=pnml
                    OUTPUT_FILE ${RT}/${KERNEL}.pnml
                    ERROR_VARIABLE ERR RESULT_VARIABLE CODE)
    if(NOT CODE EQUAL 0)
      message(FATAL_ERROR
        "kernel ${KERNEL}: --emit=pnml failed (exit ${CODE}):\n${ERR}")
    endif()
    check_roundtrip(kernel_${KERNEL} ${RT}/${KERNEL}.pnml)
  endforeach()

  # Leg 2: every example loop's SDSP-PN.
  if(EXAMPLES_DIR)
    file(GLOB EXAMPLES ${EXAMPLES_DIR}/*.loop)
    list(SORT EXAMPLES)
    foreach(LOOP ${EXAMPLES})
      get_filename_component(STEM ${LOOP} NAME_WE)
      execute_process(COMMAND ${SDSPC} ${LOOP} --emit=pnml
                      OUTPUT_FILE ${RT}/ex_${STEM}.pnml
                      ERROR_VARIABLE ERR RESULT_VARIABLE CODE)
      if(NOT CODE EQUAL 0)
        message(FATAL_ERROR
          "example ${STEM}: --emit=pnml failed (exit ${CODE}):\n${ERR}")
      endif()
      check_roundtrip(example_${STEM} ${RT}/ex_${STEM}.pnml)
    endforeach()
  endif()
endif()

# Leg 3: the fuzz corpus.  Every net must resolve to a contract exit
# code — 0 (accepted), 1 (structured rejection), 2 (resource) — and
# accepted nets must round-trip byte-stably through the canonical form.
file(GLOB CORPUS ${CORPUS_DIR}/*.pnml)
list(SORT CORPUS)
list(LENGTH CORPUS N)
if(N LESS 10)
  message(FATAL_ERROR "corpus at ${CORPUS_DIR} looks truncated (${N} files)")
endif()
set(ACCEPTED 0)
set(REJECTED 0)
foreach(NET ${CORPUS})
  get_filename_component(STEM ${NET} NAME_WE)
  execute_process(COMMAND ${SDSPC} --pnml=${NET}
                  OUTPUT_QUIET ERROR_VARIABLE ERR RESULT_VARIABLE CODE)
  if(CODE EQUAL 0)
    math(EXPR ACCEPTED "${ACCEPTED} + 1")
    execute_process(COMMAND ${SDSPC} --pnml=${NET} --emit=pnml
                    OUTPUT_FILE ${RT}/corpus_${STEM}.pnml
                    ERROR_QUIET RESULT_VARIABLE ECODE)
    if(NOT ECODE EQUAL 0)
      message(FATAL_ERROR "corpus ${STEM}: accepted but does not export")
    endif()
    check_roundtrip(corpus_${STEM} ${RT}/corpus_${STEM}.pnml)
  elseif(CODE EQUAL 1)
    math(EXPR REJECTED "${REJECTED} + 1")
    if(NOT ERR MATCHES "InvalidInput")
      message(FATAL_ERROR
        "corpus ${STEM}: rejection is not structured [InvalidInput]:\n${ERR}")
    endif()
  elseif(NOT CODE EQUAL 2)
    message(FATAL_ERROR
      "corpus ${STEM}: exit ${CODE} is outside the contract "
      "(crash or unstructured death):\n${ERR}")
  endif()
endforeach()
if(ACCEPTED EQUAL 0 OR REJECTED EQUAL 0)
  message(FATAL_ERROR
    "corpus is one-sided (${ACCEPTED} accepted, ${REJECTED} rejected); "
    "both halves must stay populated")
endif()
message(STATUS "pnml corpus: ${ACCEPTED} accepted, ${REJECTED} rejected")

if(MODE STREQUAL "all")
  # Leg 4: deterministic pnml:parse fault replay — same spec, same
  # bytes, whether armed by flag or by environment.
  set(RING ${CORPUS_DIR}/ring.pnml)
  execute_process(COMMAND ${SDSPC} --pnml=${RING} --emit=rate
                  --fault-spec=pnml:parse:fail@1
                  OUTPUT_VARIABLE OUT_f1 ERROR_VARIABLE ERR_f1
                  RESULT_VARIABLE EXIT_f1)
  execute_process(COMMAND ${SDSPC} --pnml=${RING} --emit=rate
                  --fault-spec=pnml:parse:fail@1
                  OUTPUT_VARIABLE OUT_f2 ERROR_VARIABLE ERR_f2
                  RESULT_VARIABLE EXIT_f2)
  execute_process(COMMAND ${CMAKE_COMMAND} -E env
                  "SDSP_FAULT_SPEC=pnml:parse:fail@1"
                  ${SDSPC} --pnml=${RING} --emit=rate
                  OUTPUT_VARIABLE OUT_f3 ERROR_VARIABLE ERR_f3
                  RESULT_VARIABLE EXIT_f3)
  if(NOT EXIT_f1 EQUAL 2)
    message(FATAL_ERROR
      "injected pnml:parse fault must exit 2, got ${EXIT_f1}:\n${ERR_f1}")
  endif()
  if(NOT ERR_f1 MATCHES "injected transient fault at pnml:parse")
    message(FATAL_ERROR "fault diagnostic missing:\n${ERR_f1}")
  endif()
  foreach(WHAT EXIT OUT ERR)
    if(NOT "${${WHAT}_f1}" STREQUAL "${${WHAT}_f2}" OR
       NOT "${${WHAT}_f1}" STREQUAL "${${WHAT}_f3}")
      message(FATAL_ERROR
        "pnml:parse fault replay is not deterministic (${WHAT} differs)")
    endif()
  endforeach()
endif()
