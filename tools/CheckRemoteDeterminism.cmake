# Proves `sdspc --remote` is byte-identical to local compilation
# (docs/SERVICE.md): starts an sdspd, runs a corpus of invocations both
# locally and through the daemon, and diffs stdout, stderr, exit code,
# and the --batch-json report.  A second, warm-restart leg restarts the
# daemon over the same --store-dir and asserts that (a) the remote
# output does not change and (b) the restarted daemon served cacheable
# passes from the persistent disk store (store.disk.hits > 0).
#
# Unix only (the daemon speaks a Unix-domain socket).
#
# Usage:
#   cmake -DSDSPC=<path> -DSDSPD=<path> -DWORK_DIR=<dir>
#         [-DEXAMPLES_DIR=<dir>] [-DEMITS=<;-list>]
#         -P CheckRemoteDeterminism.cmake

if(NOT DEFINED EMITS OR EMITS STREQUAL "")
  set(EMITS "rate;schedule;c")
endif()

# Sockets need a short path: sun_path caps out around 108 bytes, which
# deep build trees can exceed.
execute_process(COMMAND mktemp -d /tmp/sdsp-remote-XXXXXX
                OUTPUT_VARIABLE SCRATCH
                OUTPUT_STRIP_TRAILING_WHITESPACE
                RESULT_VARIABLE MKTEMP_EXIT)
if(NOT MKTEMP_EXIT EQUAL 0)
  message(FATAL_ERROR "mktemp failed")
endif()
set(SOCK ${SCRATCH}/d.sock)
set(STORE ${SCRATCH}/store)

function(cleanup)
  if(DEFINED DAEMON_PID AND NOT DAEMON_PID STREQUAL "")
    execute_process(COMMAND kill -KILL ${DAEMON_PID} ERROR_QUIET)
  endif()
  file(REMOVE_RECURSE ${SCRATCH})
endfunction()

macro(die)
  cleanup()
  message(FATAL_ERROR ${ARGV})
endmacro()

# Starts an sdspd (extra args in ${ARGN}) and waits for its readiness
# line; sets DAEMON_PID / DAEMON_ERR in the caller.
macro(start_daemon TAG)
  set(DAEMON_OUT ${SCRATCH}/daemon_${TAG}.out)
  set(DAEMON_ERR ${SCRATCH}/daemon_${TAG}.err)
  string(JOIN " " DAEMON_EXTRA ${ARGN})
  set(DAEMON_CMD "${SDSPD} --socket=${SOCK} ${DAEMON_EXTRA}")
  execute_process(
    COMMAND sh -c
      "${DAEMON_CMD} > ${DAEMON_OUT} 2> ${DAEMON_ERR} & echo $!"
    OUTPUT_VARIABLE DAEMON_PID
    OUTPUT_STRIP_TRAILING_WHITESPACE)
  set(READY FALSE)
  foreach(ATTEMPT RANGE 100)
    if(EXISTS ${DAEMON_OUT})
      file(READ ${DAEMON_OUT} DAEMON_STDOUT)
      string(FIND "${DAEMON_STDOUT}" "listening on" FOUND)
      if(NOT FOUND EQUAL -1)
        set(READY TRUE)
        break()
      endif()
    endif()
    execute_process(COMMAND ${CMAKE_COMMAND} -E sleep 0.2)
  endforeach()
  if(NOT READY)
    file(READ ${DAEMON_ERR} DAEMON_STDERR)
    die("sdspd (${TAG}) never became ready:\n${DAEMON_STDERR}")
  endif()
endmacro()

# SIGTERM + graceful-drain barrier: the shutdown line is printed after
# every in-flight request has answered and state is flushed.
macro(stop_daemon TAG)
  execute_process(COMMAND kill -TERM ${DAEMON_PID} ERROR_QUIET)
  set(STOPPED FALSE)
  foreach(ATTEMPT RANGE 150)
    if(EXISTS ${DAEMON_ERR})
      file(READ ${DAEMON_ERR} DAEMON_STDERR)
      string(FIND "${DAEMON_STDERR}" "shutting down" FOUND)
      if(NOT FOUND EQUAL -1)
        set(STOPPED TRUE)
        break()
      endif()
    endif()
    execute_process(COMMAND ${CMAKE_COMMAND} -E sleep 0.2)
  endforeach()
  if(NOT STOPPED)
    die("sdspd (${TAG}) did not drain after SIGTERM")
  endif()
  set(DAEMON_PID "")
endmacro()

# Runs ${ARGN} locally and through --remote and diffs every observable
# byte.  BATCH_JSON, when non-empty, additionally diffs that report.
macro(check_invocation LABEL BATCH_JSON)
  set(LOCAL_ARGS ${ARGN})
  set(REMOTE_ARGS --remote=${SOCK} ${ARGN})
  if(NOT "${BATCH_JSON}" STREQUAL "")
    list(APPEND LOCAL_ARGS --batch-json=${SCRATCH}/local.json)
    list(APPEND REMOTE_ARGS --batch-json=${SCRATCH}/remote.json)
  endif()
  execute_process(COMMAND ${SDSPC} ${LOCAL_ARGS}
                  RESULT_VARIABLE LOCAL_EXIT
                  OUTPUT_VARIABLE LOCAL_OUT
                  ERROR_VARIABLE LOCAL_ERR)
  execute_process(COMMAND ${SDSPC} ${REMOTE_ARGS}
                  RESULT_VARIABLE REMOTE_EXIT
                  OUTPUT_VARIABLE REMOTE_OUT
                  ERROR_VARIABLE REMOTE_ERR)
  if(NOT LOCAL_EXIT EQUAL REMOTE_EXIT)
    die("[${LABEL}] exit codes differ: local ${LOCAL_EXIT}, "
        "remote ${REMOTE_EXIT}\nremote stderr:\n${REMOTE_ERR}")
  endif()
  if(NOT LOCAL_OUT STREQUAL REMOTE_OUT)
    die("[${LABEL}] stdout differs between local and remote")
  endif()
  if(NOT LOCAL_ERR STREQUAL REMOTE_ERR)
    die("[${LABEL}] stderr differs between local and remote\n"
        "local:\n${LOCAL_ERR}\nremote:\n${REMOTE_ERR}")
  endif()
  if(NOT "${BATCH_JSON}" STREQUAL "")
    file(READ ${SCRATCH}/local.json LOCAL_JSON)
    file(READ ${SCRATCH}/remote.json REMOTE_JSON)
    if(NOT LOCAL_JSON STREQUAL REMOTE_JSON)
      die("[${LABEL}] --batch-json differs between local and remote")
    endif()
  endif()
endmacro()

#===---------------------------------------------------------------------===#
# Leg 1: cold daemon, full corpus.
#===---------------------------------------------------------------------===#

start_daemon(cold --store-dir=${STORE}
             --metrics-json=${SCRATCH}/metrics_cold.json)

foreach(EMIT ${EMITS})
  check_invocation("batch-kernels --emit=${EMIT}" json
                   --batch-kernels --emit=${EMIT} --verify)
  if(DEFINED EXAMPLES_DIR AND NOT EXAMPLES_DIR STREQUAL "")
    check_invocation("batch=examples --emit=${EMIT}" json
                     --batch=${EXAMPLES_DIR} --emit=${EMIT} --verify)
  endif()
endforeach()
check_invocation("single loop7" "" -k loop7 --verify)
check_invocation("diagnostics" "" -k nosuchkernel)

# Remember one remote output for the warm-restart diff.
execute_process(COMMAND ${SDSPC} --remote=${SOCK} --batch-kernels
                        --emit=schedule --verify
                RESULT_VARIABLE COLD_EXIT
                OUTPUT_VARIABLE COLD_OUT
                ERROR_VARIABLE COLD_ERR)
if(NOT COLD_EXIT EQUAL 0)
  die("cold reference run failed (exit ${COLD_EXIT}):\n${COLD_ERR}")
endif()

stop_daemon(cold)

#===---------------------------------------------------------------------===#
# Leg 2: warm restart over the same store directory.  The new daemon's
# memory tier is empty; only the persistent disk store can answer
# without recomputing.
#===---------------------------------------------------------------------===#

start_daemon(warm --store-dir=${STORE}
             --metrics-json=${SCRATCH}/metrics_warm.json)

execute_process(COMMAND ${SDSPC} --remote=${SOCK} --batch-kernels
                        --emit=schedule --verify
                RESULT_VARIABLE WARM_EXIT
                OUTPUT_VARIABLE WARM_OUT
                ERROR_VARIABLE WARM_ERR)
if(NOT WARM_EXIT EQUAL 0)
  die("warm-restart run failed (exit ${WARM_EXIT}):\n${WARM_ERR}")
endif()
if(NOT WARM_OUT STREQUAL COLD_OUT OR NOT WARM_ERR STREQUAL COLD_ERR)
  die("warm-restart output differs from the cold run")
endif()

stop_daemon(warm)

file(READ ${SCRATCH}/metrics_warm.json WARM_METRICS)
if(NOT WARM_METRICS MATCHES "\"store\\.disk\\.hits\": [1-9]")
  die("restarted daemon served nothing from the disk store:\n"
      "${WARM_METRICS}")
endif()
if(NOT WARM_METRICS MATCHES "\"store\\.disk\\.corrupt\": 0")
  die("restarted daemon rejected persisted objects as corrupt:\n"
      "${WARM_METRICS}")
endif()

cleanup()
message(STATUS "remote determinism: all invocations byte-identical; "
               "warm restart served from disk")
