//===- tools/DriverCore.cpp - Shared sdspc/sdspd driver core ---------------===//
//
// Part of the SDSP project: a reproduction of Gao, Wong & Ning,
// "A Timed Petri-Net Model for Fine-Grain Loop Scheduling", PLDI 1991.
//
//===----------------------------------------------------------------------===//

#include "tools/DriverCore.h"

#include "codegen/CEmitter.h"
#include "codegen/Vm.h"
#include "core/BatchCompiler.h"
#include "livermore/Livermore.h"
#include "petri/BehaviorGraph.h"
#include "petri/Pnml.h"
#include "support/CancelToken.h"
#include "support/FaultInjection.h"
#include "support/Metrics.h"
#include "support/Random.h"
#include "support/Trace.h"

#include <algorithm>
#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <functional>
#include <iostream>
#include <sstream>

using namespace sdsp;
using namespace sdsp::driver;

void driver::printUsage(std::ostream &OS) {
  OS << "usage: sdspc [options] [file.loop | -k kernel | -]\n"
        "  --emit=schedule|timeline|rate|program|c|dot-dataflow|dot-pn|"
        "dot-behavior|storage|\n"
        "         pnml|pnml-behavior|pnml-frustum\n"
        "  --pnml=FILE|-  analyze an external PNML net instead of a "
        "loop\n"
        "                 (--emit=classify|rate|frustum|dot-pn|pnml|"
        "pnml-behavior|pnml-frustum)\n"
        "  --opt --capacity=N --unroll=U --scp=L --pipelines=K\n"
        "  --optimize-storage --budget=N "
        "--engine=fast|reference|analytic\n"
        "  --rate-engine=auto|howard|enumerate\n"
        "  --timings --timings-json=FILE --trace=FILE "
        "--metrics-json=FILE\n"
        "  --verify --run=N --seed=S\n"
        "  --deadline-ms=N --fault-spec=SPEC\n"
        "  --store-dir=DIR --store-bytes=N --remote=SOCKET\n"
        "  --batch=DIR --batch-kernels -j N --batch-json=FILE "
        "--retries=N --keep-going --fail-fast\n"
        "  -k <id>   use a bundled kernel (l1 l2 loop1 loop3 loop5 "
        "loop7 loop9 loop9lcd loop12)\n"
        "exit codes: 0 ok, 1 input diagnostics, 2 resource/budget, "
        "3 internal error\n";
}

namespace {

/// Strict numeric parsing: digits only, no sign, no trailing junk.
/// atoi-style silent truncation turned "--unroll=-3" into a 4-billion
/// unroll request; now it is a diagnostic.
bool parseUint64(const std::string &V, const char *Flag, uint64_t &Out,
                 std::ostream &Err) {
  if (V.empty() || V.find_first_not_of("0123456789") != std::string::npos) {
    Err << "sdspc: invalid value '" << V << "' for " << Flag
        << " (expected a non-negative integer)\n";
    return false;
  }
  errno = 0;
  Out = std::strtoull(V.c_str(), nullptr, 10);
  if (errno == ERANGE) {
    Err << "sdspc: value '" << V << "' for " << Flag
        << " is out of range\n";
    return false;
  }
  return true;
}

bool parseUint32(const std::string &V, const char *Flag, uint32_t &Out,
                 std::ostream &Err) {
  uint64_t N = 0;
  if (!parseUint64(V, Flag, N, Err))
    return false;
  if (N > UINT32_MAX) {
    Err << "sdspc: value '" << V << "' for " << Flag
        << " is out of range\n";
    return false;
  }
  Out = static_cast<uint32_t>(N);
  return true;
}

} // namespace

ParseResult driver::parseArgs(const std::vector<std::string> &Args,
                              Options &Opts, std::ostream &Out,
                              std::ostream &Err) {
  for (size_t I = 0; I < Args.size(); ++I) {
    const std::string &Arg = Args[I];
    auto Value = [&](const char *Prefix) -> const char * {
      size_t Len = std::strlen(Prefix);
      return Arg.compare(0, Len, Prefix) == 0 ? Arg.c_str() + Len
                                              : nullptr;
    };
    if (const char *V = Value("--emit=")) {
      Opts.Emit = V;
      Opts.EmitGiven = true;
    } else if (const char *V = Value("--pnml=")) {
      if (!*V) {
        Err << "sdspc: --pnml needs a file path (or - for stdin)\n";
        return ParseResult::Error;
      }
      Opts.PnmlPath = V;
    } else if (const char *V = Value("--capacity=")) {
      if (!parseUint32(V, "--capacity", Opts.Pipe.Capacity, Err))
        return ParseResult::Error;
    } else if (const char *V = Value("--unroll=")) {
      if (!parseUint32(V, "--unroll", Opts.Pipe.Unroll, Err))
        return ParseResult::Error;
    } else if (const char *V = Value("--scp=")) {
      if (!parseUint32(V, "--scp", Opts.Pipe.ScpDepth, Err))
        return ParseResult::Error;
      Opts.ScpGiven = true;
    } else if (const char *V = Value("--pipelines=")) {
      if (!parseUint32(V, "--pipelines", Opts.Pipe.Pipelines, Err))
        return ParseResult::Error;
    } else if (const char *V = Value("--budget=")) {
      if (!parseUint64(V, "--budget", Opts.Pipe.FrustumBudgetSteps, Err))
        return ParseResult::Error;
      if (Opts.Pipe.FrustumBudgetSteps == 0) {
        // 0 is the internal "use the theory bound" sentinel, so an
        // explicit --budget=0 would silently mean "no budget" — the
        // opposite of what was asked.  Reject it at the boundary.
        Err << "sdspc: invalid value '0' for --budget (must be at least "
               "1 step; omit the flag for the theory bound)\n";
        return ParseResult::Error;
      }
    } else if (const char *V = Value("--engine=")) {
      std::string E = V;
      if (E == "fast")
        Opts.Pipe.Engine = FrustumEngine::Fast;
      else if (E == "reference")
        Opts.Pipe.Engine = FrustumEngine::Reference;
      else if (E == "analytic")
        Opts.Pipe.Engine = FrustumEngine::Analytic;
      else {
        Err << "sdspc: invalid value '" << E
            << "' for --engine (expected fast, reference, or analytic)\n";
        return ParseResult::Error;
      }
    } else if (const char *V = Value("--rate-engine=")) {
      std::string E = V;
      if (E == "auto")
        Opts.Pipe.Rate = RateEngine::Auto;
      else if (E == "howard")
        Opts.Pipe.Rate = RateEngine::Howard;
      else if (E == "enumerate")
        Opts.Pipe.Rate = RateEngine::Enumerate;
      else {
        Err << "sdspc: invalid value '" << E
            << "' for --rate-engine (expected auto, howard or "
               "enumerate)\n";
        return ParseResult::Error;
      }
    } else if (Arg == "--timings") {
      Opts.Timings = true;
    } else if (const char *V = Value("--timings-json=")) {
      Opts.TimingsJsonPath = V;
    } else if (const char *V = Value("--trace=")) {
      Opts.TracePath = V;
    } else if (const char *V = Value("--metrics-json=")) {
      Opts.MetricsJsonPath = V;
    } else if (const char *V = Value("--batch=")) {
      Opts.BatchDir = V;
    } else if (Arg == "--batch-kernels") {
      Opts.BatchKernels = true;
    } else if (const char *V = Value("--batch-json=")) {
      Opts.BatchJsonPath = V;
    } else if (const char *V = Value("--deadline-ms=")) {
      if (!parseUint64(V, "--deadline-ms", Opts.DeadlineMillis, Err))
        return ParseResult::Error;
      Opts.DeadlineGiven = true;
    } else if (const char *V = Value("--fault-spec=")) {
      Opts.FaultSpec = V;
    } else if (const char *V = Value("--retries=")) {
      if (!parseUint32(V, "--retries", Opts.Retries, Err))
        return ParseResult::Error;
    } else if (Arg == "--keep-going") {
      Opts.KeepGoing = true;
    } else if (Arg == "--fail-fast") {
      Opts.KeepGoing = false;
    } else if (const char *V = Value("--store-dir=")) {
      Opts.StoreDir = V;
    } else if (const char *V = Value("--store-bytes=")) {
      if (!parseUint64(V, "--store-bytes", Opts.StoreBytes, Err))
        return ParseResult::Error;
    } else if (const char *V = Value("--remote=")) {
      Opts.RemoteSocket = V;
    } else if (const char *V = Value("--jobs=")) {
      if (!parseUint32(V, "--jobs", Opts.Jobs, Err))
        return ParseResult::Error;
    } else if (Arg == "-j" || (Arg.size() > 2 && Arg.compare(0, 2, "-j") == 0)) {
      // Both -j8 and -j 8 (make style).
      std::string V;
      if (Arg == "-j") {
        if (++I >= Args.size()) {
          Err << "sdspc: -j needs a thread count\n";
          return ParseResult::Error;
        }
        V = Args[I];
      } else {
        V = Arg.substr(2);
      }
      if (!parseUint32(V, "-j", Opts.Jobs, Err))
        return ParseResult::Error;
    } else if (Arg == "--opt") {
      Opts.Pipe.Optimize = true;
    } else if (Arg == "--optimize-storage") {
      Opts.Pipe.OptimizeStorage = true;
    } else if (Arg == "--verify") {
      Opts.Pipe.Verify = true;
    } else if (const char *V = Value("--run=")) {
      if (!parseUint64(V, "--run", Opts.RunIterations, Err))
        return ParseResult::Error;
    } else if (const char *V = Value("--seed=")) {
      if (!parseUint64(V, "--seed", Opts.Seed, Err))
        return ParseResult::Error;
    } else if (Arg == "-k") {
      if (++I >= Args.size()) {
        Err << "sdspc: -k needs a kernel id\n";
        return ParseResult::Error;
      }
      Opts.KernelId = Args[I];
    } else if (Arg == "--help" || Arg == "-h") {
      printUsage(Out);
      return ParseResult::Help;
    } else if (!Arg.empty() && Arg[0] == '-' && Arg != "-") {
      Err << "sdspc: unknown option '" << Arg << "'\n";
      return ParseResult::Error;
    } else {
      Opts.InputPath = Arg;
    }
  }
  return ParseResult::Ok;
}

bool driver::makeStoreStack(const Options &Opts, StoreStack &Stack,
                            std::ostream &Err) {
  std::string Dir = Opts.StoreDir;
  if (Dir.empty())
    if (const char *E = std::getenv("SDSP_STORE_DIR"); E && *E)
      Dir = E;
  if (Dir.empty())
    return true; // No persistent store configured.
  std::error_code EC;
  std::filesystem::create_directories(Dir, EC);
  if (EC) {
    Err << "sdspc: cannot create store directory '" << Dir
        << "': " << EC.message() << "\n";
    return false;
  }
  Stack.Disk = std::make_unique<DiskStore>(
      DiskStore::Config{Dir, Opts.StoreBytes});
  Stack.Memory = std::make_unique<MemoryStore>();
  Stack.Tiered = std::make_unique<TieredStore>(*Stack.Memory, *Stack.Disk);
  return true;
}

namespace {

std::optional<std::string> readSource(const Options &Opts, const Env &E,
                                      std::ostream &Err) {
  if (!Opts.KernelId.empty()) {
    const LivermoreKernel *K = findKernel(Opts.KernelId);
    if (!K) {
      Err << "sdspc: unknown kernel '" << Opts.KernelId << "'\n";
      return std::nullopt;
    }
    return K->Source;
  }
  if (Opts.InputPath.empty() || Opts.InputPath == "-") {
    std::ostringstream SS;
    if (E.In)
      SS << E.In->rdbuf();
    return SS.str();
  }
  std::ifstream File(Opts.InputPath);
  if (!File) {
    Err << "sdspc: cannot open '" << Opts.InputPath << "'\n";
    return std::nullopt;
  }
  std::ostringstream SS;
  SS << File.rdbuf();
  return SS.str();
}

/// Reports \p St (frontend failures print their diagnostics verbatim)
/// and returns the contract exit code plus the error class the batch
/// retry policy folds on.
RenderResult reportFailure(const Status &St, const DiagnosticEngine &Diags,
                           std::ostream &Err) {
  if (St.stage() == "frontend" && Diags.hasErrors())
    Diags.print(Err);
  else
    Err << "sdspc: " << St.str() << "\n";
  return {exitCodeFor(St), St.code()};
}

/// The fault schedule for one run: --fault-spec parses into a
/// run-owned schedule (so concurrent daemon requests never race on the
/// process-wide slot), else the SDSP_FAULT_SPEC environment variable
/// via the process-wide schedule.
struct ResolvedFaults {
  const FaultSchedule *Sched = nullptr;
  FaultSchedule Owned;
};

bool resolveFaultSchedule(const Options &Opts, ResolvedFaults &Out,
                          std::ostream &Err) {
  if (!Opts.FaultSpec.empty()) {
    Expected<FaultSchedule> S = FaultSchedule::parse(Opts.FaultSpec);
    if (!S) {
      Err << "sdspc: " << S.status().str() << "\n";
      return false;
    }
    Out.Owned = std::move(*S);
    Out.Sched = &Out.Owned;
    return true;
  }
  Expected<const FaultSchedule *> P = FaultSchedule::process();
  if (!P) {
    Err << "sdspc: " << P.status().str() << "\n";
    return false;
  }
  Out.Sched = *P;
  return true;
}

/// Re-derives the codegen inputs through the session — all cache hits
/// when the cache is on, since compile() already ran them — and runs
/// the codegen pass (ideal machine only; the SCP path never reaches
/// codegen).
Expected<ArtifactRef<LoopProgram>>
buildProgram(CompilationSession &Session, const std::string &Source,
             const PipelineOptions &Pipe) {
  Expected<ArtifactRef<DataflowGraph>> G = Session.lower(Source);
  if (!G)
    return G.status();
  ArtifactRef<DataflowGraph> Graph = *G;
  if (Pipe.Optimize || Pipe.Unroll > 1) {
    Expected<ArtifactRef<TransformedGraph>> T =
        Session.transform(Graph, Pipe.Optimize, Pipe.Unroll);
    if (!T)
      return T.status();
    Graph = Session.transformedGraph(*T);
  }
  Expected<ArtifactRef<SdspArtifact>> S =
      Session.buildSdsp(Graph, Pipe.Capacity, Pipe.OptimizeStorage);
  if (!S)
    return S.status();
  Expected<ArtifactRef<SdspPn>> Pn = Session.buildPn(*S);
  if (!Pn)
    return Pn.status();
  Expected<ArtifactRef<FrustumInfo>> F = Session.searchFrustum(
      *Pn, FrustumOptions{Pipe.FrustumBudgetSteps, Pipe.Engine});
  if (!F)
    return F.status();
  Expected<ArtifactRef<SoftwarePipelineSchedule>> Sched =
      Session.deriveSchedule(*S, *Pn, *F, Pipe.ValidateIterations);
  if (!Sched)
    return Sched.status();
  return Session.generateProgram(*S, *Pn, *Sched);
}

/// Re-derives the SDSP-PN ref through the session (all cache hits, as
/// in buildProgram) and runs the export-pnml pass for \p Flavor.  The
/// behavior/frustum flavors also re-derive the frustum ref; both are
/// ideal-machine only (the caller rejects --scp).
Expected<ArtifactRef<PnmlText>>
buildPnmlExport(CompilationSession &Session, const std::string &Source,
                const PipelineOptions &Pipe, PnmlFlavor Flavor) {
  Expected<ArtifactRef<DataflowGraph>> G = Session.lower(Source);
  if (!G)
    return G.status();
  ArtifactRef<DataflowGraph> Graph = *G;
  if (Pipe.Optimize || Pipe.Unroll > 1) {
    Expected<ArtifactRef<TransformedGraph>> T =
        Session.transform(Graph, Pipe.Optimize, Pipe.Unroll);
    if (!T)
      return T.status();
    Graph = Session.transformedGraph(*T);
  }
  Expected<ArtifactRef<SdspArtifact>> S =
      Session.buildSdsp(Graph, Pipe.Capacity, Pipe.OptimizeStorage);
  if (!S)
    return S.status();
  Expected<ArtifactRef<SdspPn>> Pn = Session.buildPn(*S);
  if (!Pn)
    return Pn.status();
  if (Flavor == PnmlFlavor::Net)
    return Session.exportPnml(*Pn);
  Expected<ArtifactRef<FrustumInfo>> F = Session.searchFrustum(
      *Pn, FrustumOptions{Pipe.FrustumBudgetSteps, Pipe.Engine});
  if (!F)
    return F.status();
  return Session.exportPnml(*Pn, *F, Flavor);
}

/// Compiles \p Source through \p Session and emits the requested
/// artifact to \p Out (diagnostics and notes to \p Err).  Single runs
/// pass the caller's stdout/stderr; batch jobs pass per-job string
/// streams so results can be replayed in input order whatever thread
/// ran them.
RenderResult compileAndEmit(CompilationSession &Session, const Options &Opts,
                            const std::string &SourceText, std::ostream &Out,
                            std::ostream &Err) {
  const std::string *Source = &SourceText;

  // An explicit --scp=0 is a machine that can never issue, not a
  // request for the ideal machine.
  if (Opts.ScpGiven && Opts.Pipe.ScpDepth == 0)
    return reportFailure(
        Status::error(ErrorCode::ResourceConflict, "scp",
                      "a zero-stage pipeline cannot issue instructions "
                      "(--scp needs a depth >= 1)"),
        DiagnosticEngine(), Err);

  PipelineOptions Pipe = Opts.Pipe;
  bool NeedsRun = Opts.RunIterations > 0;
  if (Opts.Emit == "dot-dataflow")
    Pipe.StopAfter = PipelineStage::Frontend;
  else if (Opts.Emit == "storage")
    Pipe.StopAfter = PipelineStage::Storage;
  else if (Opts.Emit == "dot-pn" || Opts.Emit == "rate" ||
           Opts.Emit == "pnml")
    Pipe.StopAfter = PipelineStage::Petri;
  else if (Opts.Emit == "dot-behavior" || Opts.Emit == "pnml-behavior" ||
           Opts.Emit == "pnml-frustum")
    Pipe.StopAfter = PipelineStage::Frustum;
  else if (Opts.Emit == "schedule" || Opts.Emit == "timeline" ||
           Opts.Emit == "c" || Opts.Emit == "program")
    Pipe.StopAfter = PipelineStage::Schedule;
  else if (NeedsRun)
    Pipe.StopAfter = PipelineStage::Schedule;
  else {
    Err << "sdspc: unknown --emit mode '" << Opts.Emit << "'\n";
    return {1, ErrorCode::InvalidInput};
  }
  // --verify's headline check is frustum rate vs analytic rate, so it
  // needs the full pipeline even when the emit mode stops early.
  if (Pipe.Verify)
    Pipe.StopAfter = PipelineStage::Schedule;

  DiagnosticEngine Diags;
  Expected<CompiledLoop> Result = Session.compile(*Source, Pipe, &Diags);
  if (!Result)
    return reportFailure(Result.status(), Diags, Err);
  CompiledLoop &CL = *Result;

  if (Pipe.Optimize && CL.OptStats.changedAnything())
    Err << "opt: folded " << CL.OptStats.ConstantsFolded
        << ", merged " << CL.OptStats.SubexpressionsMerged
        << ", removed " << CL.OptStats.DeadNodesRemoved << " (nodes "
        << CL.OptStats.NodesBefore << " -> "
        << CL.OptStats.NodesAfter << ")\n";
  if (CL.Storage)
    Err << "storage: " << CL.Storage->Before << " -> "
        << CL.Storage->After << " locations (rate "
        << CL.Storage->OptimalRate << ")\n";
  if (CL.Verified) {
    Err << "verify: ok";
    if (CL.Frustum && CL.Rate)
      Err << " (rate " << CL.Rate->OptimalRate << ", frustum within "
          << (CL.FrustumWithinEmpiricalBound ? "empirical 2n"
                                             : "theory")
          << " bound)";
    Err << "\n";
  }

  if (Opts.Emit == "dot-dataflow") {
    CL.Graph.printDot(Out, "dataflow");
    return {0, ErrorCode::Ok};
  }

  if (Opts.Emit == "storage") {
    const Sdsp &S = *CL.S;
    Out << "loop body: " << S.loopBodySize()
        << " operations\nstorage: " << S.storageLocations()
        << " locations\n";
    const DataflowGraph &Graph = S.graph();
    for (const Sdsp::Ack &A : S.acks()) {
      Out << "  ack " << Graph.node(Graph.arc(A.Path.back()).To).Name
          << " -> "
          << Graph.node(Graph.arc(A.Path.front()).From).Name
          << " covering";
      for (ArcId Arc : A.Path)
        Out << " [" << Graph.node(Graph.arc(Arc).From).Name << "->"
            << Graph.node(Graph.arc(Arc).To).Name << "]";
      Out << " slots=" << A.Slots << "\n";
    }
    return {0, ErrorCode::Ok};
  }
  if (Opts.Emit == "dot-pn") {
    CL.Pn->Net.printDot(Out, "sdsp_pn");
    return {0, ErrorCode::Ok};
  }
  if (Opts.Emit == "rate") {
    const RateReport &R = *CL.Rate;
    Out << "operations:        " << CL.Pn->Net.numTransitions()
        << "\n"
        << "cycle time alpha*: " << R.CycleTime << "\n"
        << "optimal rate:      " << R.OptimalRate
        << " iterations/cycle\n"
        << "critical ops:      ";
    for (TransitionId T : R.CriticalTransitions)
      Out << CL.Pn->Net.transition(T).Name << " ";
    Out << "\ncritical cycles:   " << R.NumCriticalCycles << "\n";
    return {0, ErrorCode::Ok};
  }
  if (Opts.Emit == "pnml") {
    Expected<ArtifactRef<PnmlText>> P =
        buildPnmlExport(Session, *Source, Pipe, PnmlFlavor::Net);
    if (!P)
      return reportFailure(P.status(), Diags, Err);
    Out << (*P)->Text;
    return {0, ErrorCode::Ok};
  }

  const FrustumInfo &F = *CL.Frustum;

  if (Opts.Emit == "pnml-behavior" || Opts.Emit == "pnml-frustum") {
    if (CL.Scp) {
      Err << "sdspc: --emit=" << Opts.Emit
          << " renders the ideal-machine execution only (drop --scp)\n";
      return {1, ErrorCode::InvalidInput};
    }
    Expected<ArtifactRef<PnmlText>> P = buildPnmlExport(
        Session, *Source, Pipe,
        Opts.Emit == "pnml-behavior" ? PnmlFlavor::Behavior
                                     : PnmlFlavor::Frustum);
    if (!P)
      return reportFailure(P.status(), Diags, Err);
    Out << (*P)->Text;
    return {0, ErrorCode::Ok};
  }

  if (Opts.Emit == "dot-behavior") {
    const PetriNet &Net = CL.machineNet();
    if (CL.Policy)
      CL.Policy->reset();
    EarliestFiringEngine Engine(Net, CL.Policy.get());
    BehaviorGraph BG(Net);
    while (Engine.now() < F.RepeatTime)
      BG.recordStep(Engine.fireAndAdvance());
    BG.printDot(Out, "behavior", F.StartTime, F.RepeatTime);
    return {0, ErrorCode::Ok};
  }

  if (CL.Scp) {
    // Schedules on the SCP model: report the measured pattern.
    const ScpPn &Scp = *CL.Scp;
    Out << "SCP machine, l = " << Scp.PipelineDepth << ": frustum ["
        << F.StartTime << ", " << F.RepeatTime << "), rate "
        << F.computationRate(Scp.SdspTransitions.front())
        << ", usage " << processorUsage(Scp, F) << "\n";
    if (Opts.Emit != "schedule")
      Err << "sdspc: --scp supports --emit=schedule only\n";
    std::vector<std::string> Names;
    for (TransitionId T : Scp.Net.transitionIds())
      Names.push_back(Scp.Net.transition(T).Name);
    // Print the issue slots of SDSP transitions per kernel cycle.
    for (TimeStep T = F.StartTime; T < F.RepeatTime; ++T) {
      Out << "  t+" << (T - F.StartTime) << ":";
      for (const StepRecord &Rec : F.Trace)
        if (Rec.Time == T)
          for (TransitionId Fired : Rec.Fired)
            if (Scp.IsSdspTransition[Fired.index()])
              Out << " " << Names[Fired.index()];
      Out << "\n";
    }
    return {0, ErrorCode::Ok};
  }

  const SdspPn &Pn = *CL.Pn;
  const SoftwarePipelineSchedule &Sched = *CL.Schedule;

  // One codegen-pass run covers --emit=c/program and --run (the cache
  // also dedupes across them when both are requested).
  ArtifactRef<LoopProgram> Program;
  if (Opts.Emit == "c" || Opts.Emit == "program" || NeedsRun) {
    Expected<ArtifactRef<LoopProgram>> P =
        buildProgram(Session, *Source, Pipe);
    if (!P)
      return reportFailure(P.status(), Diags, Err);
    Program = *P;
  }

  if (Opts.Emit == "schedule" || Opts.Emit == "timeline") {
    std::vector<std::string> Names;
    std::vector<uint32_t> Taus;
    for (TransitionId T : Pn.Net.transitionIds()) {
      Names.push_back(Pn.Net.transition(T).Name);
      Taus.push_back(Pn.Net.transition(T).ExecTime);
    }
    Sched.print(Out, Names);
    if (Opts.Emit == "timeline") {
      Out << "\n";
      Sched.printTimeline(Out, Names, Taus,
                          Sched.prologueEnd() + 4 * Sched.kernelLength());
    }
  } else if (Opts.Emit == "c") {
    CEmission E = emitC(*Program, "sdsp_kernel");
    Out << E.Source;
  } else if (Opts.Emit == "program") {
    Program->print(Out);
  }

  if (NeedsRun) {
    // Random input streams, deterministic per seed.
    Rng R(Opts.Seed);
    StreamMap In;
    for (NodeId N : CL.Graph.nodeIds())
      if (CL.Graph.node(N).Kind == OpKind::Input) {
        std::vector<double> V(Opts.RunIterations);
        for (double &X : V)
          X = R.uniform() * 2.0 - 1.0;
        In[CL.Graph.node(N).Name] = V;
      }
    VmResult Result = executeLoopProgram(*Program, In, Opts.RunIterations);
    Out << "executed " << Opts.RunIterations << " iterations in "
        << Result.Cycles << " cycles\n";
    for (const auto &[Name, Values] : Result.Outputs) {
      Out << Name << ":";
      for (double V : Values)
        Out << " " << V;
      Out << "\n";
    }
  }
  return {0, ErrorCode::Ok};
}

/// Routes a file output: captured into Env.Files for remote runs,
/// written to the filesystem otherwise.  Returns false (with the
/// diagnostic on \p Err) when a real file cannot be opened.
bool writeOutput(const Env &E, const std::string &Path,
                 const std::function<void(std::ostream &)> &Emit,
                 std::ostream &Err) {
  if (E.Files) {
    std::ostringstream SS;
    Emit(SS);
    (*E.Files)[Path] = SS.str();
    return true;
  }
  std::ofstream File(Path);
  if (!File) {
    Err << "sdspc: cannot write '" << Path << "'\n";
    return false;
  }
  Emit(File);
  return true;
}

/// Flushes whatever store tiers \p E carries before a metrics report.
void flushEnvStoreMetrics(const Env &E) {
  if (E.Memory)
    driver::flushMemoryStoreMetrics(*E.Memory);
  if (E.Disk)
    driver::flushDiskStoreMetrics(*E.Disk);
}

} // namespace

/// Shared-cache counters land in the global registry as the aggregate
/// cache.* series, plus cache.shardNN.* for shards that saw any
/// traffic.  Shard assignment is a pure function of the key hash, so
/// every one of these is thread-count-invariant.
void driver::flushMemoryStoreMetrics(const MemoryStore &Cache) {
  MetricsRegistry &MR = MetricsRegistry::global();
  SharedArtifactCache::CounterSnapshot C = Cache.counters();
  MR.add("cache.hits", C.Hits);
  MR.add("cache.misses", C.Misses);
  MR.add("cache.inserts", C.Inserts);
  MR.add("cache.evictions", C.Evictions);
  MR.add("cache.abandons", C.Abandons);
  MR.add("cache.entries", C.Entries);
  MR.add("cache.bytes", C.Bytes);
  std::vector<SharedArtifactCache::CounterSnapshot> Shards =
      Cache.shardCounters();
  for (size_t I = 0; I < Shards.size(); ++I) {
    const SharedArtifactCache::CounterSnapshot &S = Shards[I];
    if (S.Hits + S.Misses + S.Inserts + S.Evictions + S.Abandons == 0)
      continue;
    char Prefix[48];
    std::snprintf(Prefix, sizeof(Prefix), "cache.shard%02zu.", I);
    MR.add(std::string(Prefix) + "hits", S.Hits);
    MR.add(std::string(Prefix) + "misses", S.Misses);
    MR.add(std::string(Prefix) + "inserts", S.Inserts);
    MR.add(std::string(Prefix) + "entries", S.Entries);
    MR.add(std::string(Prefix) + "bytes", S.Bytes);
  }
}

namespace {

/// The shared tail of a single (or PNML) run: the --timings table plus
/// the --timings-json / --trace / --metrics-json file outputs.  Returns
/// \p Code, bumped to 1 when an output file cannot be written and the
/// run itself succeeded.
int finishRunOutputs(const Options &Opts, const Env &E,
                     CompilationSession &Session, TraceCollector &Collector,
                     int Code, std::ostream &Err) {
  // Timings are reported on failure too: the table shows how far the
  // pipeline got (failed passes count under "fail", never cached).
  if (Opts.Timings)
    Session.trace().printTable(Err);
  if (!Opts.TimingsJsonPath.empty()) {
    PipelineTrace T = Session.trace();
    if (!writeOutput(
            E, Opts.TimingsJsonPath,
            [&](std::ostream &OS) { T.writeJson(OS); }, Err))
      Code = Code ? Code : 1;
  }
  if (!Opts.TracePath.empty())
    if (!writeOutput(
            E, Opts.TracePath,
            [&](std::ostream &OS) { Collector.writeJson(OS); }, Err))
      Code = Code ? Code : 1;
  if (!Opts.MetricsJsonPath.empty()) {
    flushEnvStoreMetrics(E);
    if (!writeOutput(
            E, Opts.MetricsJsonPath,
            [](std::ostream &OS) {
              MetricsRegistry::writeJson(
                  MetricsRegistry::global().snapshot(), OS);
            },
            Err))
      Code = Code ? Code : 1;
  }
  return Code;
}

int runSingle(const Options &Opts, const Env &E, std::ostream &Out,
              std::ostream &Err) {
  std::optional<std::string> Source = readSource(Opts, E, Err);
  if (!Source)
    return 1;
  ResolvedFaults Faults;
  if (!resolveFaultSchedule(Opts, Faults, Err))
    return 1;
  TraceCollector Collector;
  SessionConfig Cfg;
  Cfg.Store = E.Store;
  std::string Scope = !Opts.KernelId.empty() ? "kernel:" + Opts.KernelId
                      : !Opts.InputPath.empty() ? Opts.InputPath
                                                : "stdin";
  if (!Opts.TracePath.empty())
    Cfg.Trace = &Collector.track(Scope);
  // The whole single run is one fault scope and one deadline window,
  // mirroring a batch job.
  FaultContext FC(Faults.Sched, Scope, Cfg.Trace);
  if (Faults.Sched && !Faults.Sched->empty())
    Cfg.Faults = &FC;
  if (Opts.DeadlineGiven)
    Cfg.Cancel = CancelSource::withDeadline(
                     std::chrono::milliseconds(Opts.DeadlineMillis))
                     .token();
  CompilationSession Session(Cfg);
  int Code = compileAndEmit(Session, Opts, *Source, Out, Err).ExitCode;
  return finishRunOutputs(Opts, E, Session, Collector, Code, Err);
}

//===----------------------------------------------------------------------===//
// External-net (PNML) mode
//===----------------------------------------------------------------------===//

const char *yesNo(bool B) { return B ? "yes" : "no"; }

/// --verify for an external net: the classification's internal
/// implications, the canonical export's round-trip byte-stability, and
/// (for live marked graphs) the frustum's uniform transition count and
/// its measured rate against the analytic optimal rate (Thm A.5.3 and
/// Section 3.4).  Any mismatch is an InternalInvariant (exit 3) — these
/// are theorems, not input properties.
RenderResult verifyExternalNet(CompilationSession &Session,
                               const ArtifactRef<ExternalNet> &Ext,
                               const FrustumOptions &FO, RateEngine Engine,
                               std::ostream &Err) {
  auto Broken = [&](const std::string &What) {
    Status St = Status::error(ErrorCode::InternalInvariant, "pnml-verify",
                              What + " (net '" + Ext->NetId + "')");
    Err << "sdspc: " << St.str() << "\n";
    return RenderResult{exitCodeFor(St), St.code()};
  };

  const NetClassification &C = Ext->Class;
  if ((C.Live || C.Safe || C.StronglyConnected) && !C.MarkedGraph)
    return Broken("liveness/safeness claimed for a non-marked-graph");
  if (C.Safe && !C.Live)
    return Broken("safeness claimed for a non-live net");
  if (C.MarkedGraph && !C.Consistent)
    return Broken("marked graph without a uniform T-invariant");

  // Round-trip stability: the canonical export must re-import to a net
  // that exports to the same bytes (the CI gate's in-process leg).
  Expected<ArtifactRef<PnmlText>> P = Session.exportPnml(Ext);
  if (!P)
    return {exitCodeFor(P.status()), P.status().code()};
  Expected<PnmlNet> Again = parsePnml((*P)->Text);
  if (!Again)
    return Broken("canonical export does not re-import: " +
                  Again.status().str());
  if (pnmlString(Again->Net, Again->NetId) != (*P)->Text)
    return Broken("canonical export is not round-trip byte-stable");

  if (!(C.MarkedGraph && C.Live)) {
    Err << "verify: ok (classification consistent, round-trip stable)\n";
    return {0, ErrorCode::Ok};
  }

  Expected<ArtifactRef<RateReport>> R = Session.computeRate(Ext, Engine);
  if (!R)
    return {exitCodeFor(R.status()), R.status().code()};
  Expected<ArtifactRef<FrustumInfo>> F = Session.searchFrustum(Ext, FO);
  if (!F)
    return {exitCodeFor(F.status()), F.status().code()};
  std::vector<TransitionId> Ts;
  for (TransitionId T : Ext->Net.transitionIds())
    Ts.push_back(T);
  if (!(*F)->hasUniformCount(Ts))
    return Broken("frustum transition counts are not uniform");
  if ((*F)->computationRate(Ts.front()) != (*R)->OptimalRate)
    return Broken("frustum rate disagrees with the analytic optimal rate");
  Err << "verify: ok (rate " << (*R)->OptimalRate
      << ", frustum uniform, round-trip stable)\n";
  return {0, ErrorCode::Ok};
}

/// Emits one external net per the --pnml emit grammar (classify when
/// --emit is absent).  Import, classification, rate, frustum, and
/// export all run as session passes, so caching / tracing / fault
/// injection / metrics behave exactly as in loop mode.
RenderResult emitExternalNet(CompilationSession &Session, const Options &Opts,
                             const std::string &Text, std::ostream &Out,
                             std::ostream &Err) {
  std::string Emit = Opts.EmitGiven ? Opts.Emit : "classify";
  if (Emit != "classify" && Emit != "rate" && Emit != "frustum" &&
      Emit != "dot-pn" && Emit != "pnml" && Emit != "pnml-behavior" &&
      Emit != "pnml-frustum") {
    Err << "sdspc: unknown --emit mode '" << Emit
        << "' for --pnml (classify, rate, frustum, dot-pn, pnml, "
           "pnml-behavior, pnml-frustum)\n";
    return {1, ErrorCode::InvalidInput};
  }

  Expected<ArtifactRef<ExternalNet>> Imported = Session.importPnml(Text);
  if (!Imported)
    return reportFailure(Imported.status(), DiagnosticEngine(), Err);
  ArtifactRef<ExternalNet> Ext = *Imported;
  const PetriNet &Net = Ext->Net;
  const NetClassification &C = Ext->Class;
  FrustumOptions FO{Opts.Pipe.FrustumBudgetSteps, Opts.Pipe.Engine};

  RenderResult RR{0, ErrorCode::Ok};
  if (Emit == "classify") {
    size_t Arcs = 0;
    for (TransitionId T : Net.transitionIds())
      Arcs += Net.transition(T).InputPlaces.size() +
              Net.transition(T).OutputPlaces.size();
    Out << "net: " << Ext->NetId << " (" << Net.numPlaces() << " places, "
        << Net.numTransitions() << " transitions, " << Arcs << " arcs)\n"
        << "marked graph:       " << yesNo(C.MarkedGraph) << "\n"
        << "live:               "
        << (C.MarkedGraph ? yesNo(C.Live) : "n/a") << "\n"
        << "safe:               "
        << (C.MarkedGraph && C.Live ? yesNo(C.Safe) : "n/a") << "\n"
        << "strongly connected: "
        << (C.MarkedGraph ? yesNo(C.StronglyConnected) : "n/a") << "\n"
        << "persistent:         " << yesNo(C.Persistent) << "\n"
        << "consistent:         " << yesNo(C.Consistent) << "\n";
    if (C.MarkedGraph && C.Live) {
      Expected<ArtifactRef<RateReport>> R =
          Session.computeRate(Ext, Opts.Pipe.Rate);
      if (!R)
        return reportFailure(R.status(), DiagnosticEngine(), Err);
      Out << "cycle time alpha*:  " << (*R)->CycleTime << "\n"
          << "optimal rate:       " << (*R)->OptimalRate
          << " iterations/cycle\n";
      if (C.Safe)
        Out << "place bound:        1 token (safe)\n";
    }
  } else if (Emit == "rate") {
    Expected<ArtifactRef<RateReport>> R =
        Session.computeRate(Ext, Opts.Pipe.Rate);
    if (!R)
      return reportFailure(R.status(), DiagnosticEngine(), Err);
    Out << "operations:        " << Net.numTransitions() << "\n"
        << "cycle time alpha*: " << (*R)->CycleTime << "\n"
        << "optimal rate:      " << (*R)->OptimalRate
        << " iterations/cycle\n"
        << "critical ops:      ";
    for (TransitionId T : (*R)->CriticalTransitions)
      Out << Net.transition(T).Name << " ";
    Out << "\ncritical cycles:   " << (*R)->NumCriticalCycles << "\n";
  } else if (Emit == "frustum") {
    Expected<ArtifactRef<FrustumInfo>> F = Session.searchFrustum(Ext, FO);
    if (!F)
      return reportFailure(F.status(), DiagnosticEngine(), Err);
    const FrustumInfo &Frustum = **F;
    Out << "frustum: [" << Frustum.StartTime << ", " << Frustum.RepeatTime
        << "), length " << Frustum.length() << "\n";
    for (TransitionId T : Net.transitionIds())
      Out << "  " << Net.transition(T).Name << ": "
          << Frustum.transitionCount(T) << " firings, rate "
          << Frustum.computationRate(T) << "\n";
  } else if (Emit == "dot-pn") {
    Net.printDot(Out, "pnml_net");
  } else if (Emit == "pnml") {
    Expected<ArtifactRef<PnmlText>> P = Session.exportPnml(Ext);
    if (!P)
      return reportFailure(P.status(), DiagnosticEngine(), Err);
    Out << (*P)->Text;
  } else { // pnml-behavior | pnml-frustum
    Expected<ArtifactRef<FrustumInfo>> F = Session.searchFrustum(Ext, FO);
    if (!F)
      return reportFailure(F.status(), DiagnosticEngine(), Err);
    Expected<ArtifactRef<PnmlText>> P = Session.exportPnml(
        Ext, *F,
        Emit == "pnml-behavior" ? PnmlFlavor::Behavior
                                : PnmlFlavor::Frustum);
    if (!P)
      return reportFailure(P.status(), DiagnosticEngine(), Err);
    Out << (*P)->Text;
  }

  if (Opts.Pipe.Verify) {
    RenderResult V =
        verifyExternalNet(Session, Ext, FO, Opts.Pipe.Rate, Err);
    if (V.ExitCode)
      return V;
  }
  return RR;
}

int runPnml(const Options &Opts, const Env &E, std::ostream &Out,
            std::ostream &Err) {
  if (Opts.batchMode() || !Opts.KernelId.empty() ||
      !Opts.InputPath.empty()) {
    Err << "sdspc: --pnml cannot be combined with --batch, -k, or a "
           "loop input\n";
    return 1;
  }
  if (Opts.RunIterations > 0 || Opts.ScpGiven) {
    Err << "sdspc: --pnml analyzes the net itself; --run and --scp "
           "need a compiled loop\n";
    return 1;
  }
  std::optional<std::string> Text;
  if (Opts.PnmlPath == "-") {
    std::ostringstream SS;
    if (E.In)
      SS << E.In->rdbuf();
    Text = SS.str();
  } else {
    std::ifstream File(Opts.PnmlPath);
    if (!File) {
      Err << "sdspc: cannot open '" << Opts.PnmlPath << "'\n";
      return 1;
    }
    std::ostringstream SS;
    SS << File.rdbuf();
    Text = SS.str();
  }
  ResolvedFaults Faults;
  if (!resolveFaultSchedule(Opts, Faults, Err))
    return 1;
  TraceCollector Collector;
  SessionConfig Cfg;
  Cfg.Store = E.Store;
  std::string Scope =
      "pnml:" + (Opts.PnmlPath == "-" ? std::string("stdin")
                                      : Opts.PnmlPath);
  if (!Opts.TracePath.empty())
    Cfg.Trace = &Collector.track(Scope);
  FaultContext FC(Faults.Sched, Scope, Cfg.Trace);
  if (Faults.Sched && !Faults.Sched->empty())
    Cfg.Faults = &FC;
  if (Opts.DeadlineGiven)
    Cfg.Cancel = CancelSource::withDeadline(
                     std::chrono::milliseconds(Opts.DeadlineMillis))
                     .token();
  CompilationSession Session(Cfg);
  int Code = emitExternalNet(Session, Opts, *Text, Out, Err).ExitCode;
  return finishRunOutputs(Opts, E, Session, Collector, Code, Err);
}

//===----------------------------------------------------------------------===//
// Batch mode
//===----------------------------------------------------------------------===//

void batchJsonEscape(std::ostream &OS, const std::string &S) {
  for (char C : S) {
    if (C == '"' || C == '\\')
      OS << '\\' << C;
    else if (C == '\n')
      OS << "\\n";
    else
      OS << C;
  }
}

/// The deterministic batch report: independent of the thread count, so
/// the batch-determinism CI job can diff it across -j values.
void writeBatchJson(std::ostream &OS, const BatchOutcome &Outcome) {
  size_t Failed = 0;
  for (const BatchResult &R : Outcome.Results)
    Failed += R.ExitCode != 0;
  OS << "{\n"
     << "  \"schema\": \"sdsp-batch-v1\",\n"
     << "  \"jobs\": " << Outcome.Results.size() << ",\n"
     << "  \"failed\": " << Failed << ",\n"
     << "  \"retries\": " << Outcome.Retries << ",\n"
     << "  \"exit_code\": " << Outcome.ExitCode << ",\n"
     << "  \"results\": [\n";
  bool First = true;
  for (const BatchResult &R : Outcome.Results) {
    if (!First)
      OS << ",\n";
    First = false;
    OS << "    {\"name\": \"";
    batchJsonEscape(OS, R.Name);
    OS << "\", \"exit_code\": " << R.ExitCode << ", \"attempts\": "
       << R.Attempts << ", \"ok\": "
       << (R.ExitCode == 0 ? "true" : "false") << "}";
  }
  OS << "\n  ]\n}\n";
}

/// Gathers batch jobs: every *.loop under --batch=DIR (sorted by path,
/// non-recursive), then every bundled kernel under --batch-kernels.
bool collectBatchJobs(const Options &Opts, std::vector<BatchJob> &Jobs,
                      std::ostream &Err) {
  namespace fs = std::filesystem;
  if (!Opts.BatchDir.empty()) {
    std::vector<fs::path> Paths;
    std::error_code EC;
    for (fs::directory_iterator It(Opts.BatchDir, EC), End;
         !EC && It != End; It.increment(EC)) {
      if (It->is_regular_file() && It->path().extension() == ".loop")
        Paths.push_back(It->path());
    }
    if (EC) {
      Err << "sdspc: cannot scan '" << Opts.BatchDir
          << "': " << EC.message() << "\n";
      return false;
    }
    // Directory iteration order is filesystem-dependent; the batch
    // contract is deterministic input order.
    std::sort(Paths.begin(), Paths.end());
    for (const fs::path &P : Paths) {
      std::ifstream File(P);
      if (!File) {
        Err << "sdspc: cannot open '" << P.string() << "'\n";
        return false;
      }
      std::ostringstream SS;
      SS << File.rdbuf();
      Jobs.push_back(BatchJob{P.string(), SS.str()});
    }
  }
  if (Opts.BatchKernels)
    for (const LivermoreKernel &K : livermoreKernels())
      Jobs.push_back(BatchJob{"kernel:" + K.Id, K.Source});

  // A job's identity in batch output is its basename, so two inputs
  // reducing to the same stem would collide silently (last wins in any
  // downstream keyed artifact).  Reject it up front, naming both.
  std::map<std::string, const BatchJob *> Stems;
  for (const BatchJob &J : Jobs) {
    std::string Stem = J.Name.rfind("kernel:", 0) == 0
                           ? J.Name.substr(7)
                           : fs::path(J.Name).stem().string();
    auto [It, Inserted] = Stems.emplace(std::move(Stem), &J);
    if (!Inserted) {
      Status St = Status::error(ErrorCode::InvalidInput, "batch",
                                "duplicate loop basename '" + It->first +
                                    "': '" + It->second->Name + "' and '" +
                                    J.Name + "'");
      Err << "sdspc: " << St.str() << "\n";
      return false;
    }
  }
  return true;
}

int runBatch(const Options &Opts, const Env &E, std::ostream &Out,
             std::ostream &Err) {
  if (!Opts.InputPath.empty() || !Opts.KernelId.empty()) {
    Err << "sdspc: --batch cannot be combined with an input file "
           "or -k\n";
    return 1;
  }
  std::vector<BatchJob> Jobs;
  if (!collectBatchJobs(Opts, Jobs, Err))
    return 1;
  if (Jobs.empty()) {
    Status St = Status::error(ErrorCode::InvalidInput, "batch",
                              "directory '" + Opts.BatchDir +
                                  "' contains no *.loop files");
    Err << "sdspc: " << St.str() << "\n";
    return exitCodeFor(St);
  }

  ResolvedFaults Faults;
  if (!resolveFaultSchedule(Opts, Faults, Err))
    return 1;

  TraceCollector Collector;
  BatchOptions BO;
  BO.Threads = Opts.Jobs;
  BO.Store = E.Store;
  if (!Opts.TracePath.empty())
    BO.Trace = &Collector;
  BO.MaxRetries = Opts.Retries;
  BO.KeepGoing = Opts.KeepGoing;
  BO.JobDeadlineMillis = Opts.DeadlineMillis;
  // An explicit zero deadline is already expired: cancel the whole
  // batch up front (the per-job field treats 0 as "none").
  if (Opts.DeadlineGiven && !Opts.DeadlineMillis)
    BO.Cancel =
        CancelSource::withDeadline(std::chrono::milliseconds(0)).token();
  BO.Faults = Faults.Sched;
  BatchCompiler Batch(BO);
  BatchOutcome Outcome = Batch.run(
      Jobs, [&Opts](CompilationSession &Session, const BatchJob &Job,
                    std::ostream &JobOut, std::ostream &JobErr) {
        return compileAndEmit(Session, Opts, Job.Source, JobOut, JobErr);
      });

  // Replay per-job output in input order: byte-identical whatever the
  // thread count (the batch-determinism CI job pins this).
  size_t Failed = 0;
  for (const BatchResult &R : Outcome.Results) {
    Out << "=== " << R.Name << " ===\n" << R.Out;
    if (!R.TaskStatus)
      Err << "=== " << R.Name << " ===\n"
          << "sdspc: " << R.TaskStatus.str() << "\n";
    else if (!R.Err.empty())
      Err << "=== " << R.Name << " ===\n" << R.Err;
    Failed += R.ExitCode != 0;
  }
  Out << "batch: " << Outcome.Results.size() << " jobs, " << Failed
      << " failed";
  if (Outcome.Retries)
    Out << ", " << Outcome.Retries << " retried";
  Out << "\n";

  int Code = Outcome.ExitCode;
  if (Opts.Timings)
    Outcome.MergedTrace.printTable(Err);
  if (!Opts.TimingsJsonPath.empty())
    if (!writeOutput(
            E, Opts.TimingsJsonPath,
            [&](std::ostream &OS) { Outcome.MergedTrace.writeJson(OS); },
            Err))
      Code = Code ? Code : 1;
  if (!Opts.TracePath.empty())
    if (!writeOutput(
            E, Opts.TracePath,
            [&](std::ostream &OS) { Collector.writeJson(OS); }, Err))
      Code = Code ? Code : 1;
  if (!Opts.MetricsJsonPath.empty()) {
    // With an external store the batch's built-in cache sat idle; the
    // cache.* series then reports the shared memory tier instead.
    if (E.Store)
      flushEnvStoreMetrics(E);
    else
      driver::flushMemoryStoreMetrics(Batch.cache());
    if (!writeOutput(
            E, Opts.MetricsJsonPath,
            [](std::ostream &OS) {
              MetricsRegistry::writeJson(
                  MetricsRegistry::global().snapshot(), OS);
            },
            Err))
      Code = Code ? Code : 1;
  }
  if (!Opts.BatchJsonPath.empty())
    if (!writeOutput(
            E, Opts.BatchJsonPath,
            [&](std::ostream &OS) { writeBatchJson(OS, Outcome); }, Err))
      return Code ? Code : 1;
  return Code;
}

} // namespace

void driver::flushDiskStoreMetrics(const DiskStore &Disk) {
  MetricsRegistry &MR = MetricsRegistry::global();
  DiskStore::Counters C = Disk.counters();
  MR.add("store.disk.hits", C.Hits);
  MR.add("store.disk.misses", C.Misses);
  MR.add("store.disk.writes", C.Writes);
  MR.add("store.disk.evictions", C.Evictions);
  MR.add("store.disk.corrupt", C.Corrupt);
  MR.add("store.disk.entries", Disk.entries());
  MR.add("store.disk.bytes", Disk.bytes());
}

int driver::run(const Options &Opts, const Env &E, std::ostream &Out,
                std::ostream &Err) {
  if (Opts.pnmlMode())
    return runPnml(Opts, E, Out, Err);
  return Opts.batchMode() ? runBatch(Opts, E, Out, Err)
                          : runSingle(Opts, E, Out, Err);
}
