//===- tools/DriverCore.h - Shared sdspc/sdspd driver core ------*- C++ -*-===//
//
// Part of the SDSP project: a reproduction of Gao, Wong & Ning,
// "A Timed Petri-Net Model for Fine-Grain Loop Scheduling", PLDI 1991.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The compile-and-emit driver shared by the local CLI (tools/sdspc.cpp)
/// and the compile service (tools/sdspd.cpp).  Everything a run can
/// observe is parameterized:
///
///   - stdout/stderr are ostreams (the CLI passes std::cout/std::cerr,
///     the daemon per-request string streams),
///   - the source-on-stdin stream is an istream (the daemon substitutes
///     the request's "stdin" field),
///   - file outputs (--trace, --metrics-json, --timings-json,
///     --batch-json) can be captured into a string map instead of
///     written to disk (the daemon ships them back in the response),
///   - the artifact store is injected, so daemon requests share one
///     tiered memory+disk store across their whole lifetime.
///
/// Because both binaries execute exactly this code, a remote compile's
/// stdout/stderr/exit code is byte-identical to the same invocation run
/// locally — the remote-determinism CI job diffs the two.
///
//===----------------------------------------------------------------------===//

#ifndef SDSP_TOOLS_DRIVERCORE_H
#define SDSP_TOOLS_DRIVERCORE_H

#include "core/ArtifactStore.h"
#include "core/Session.h"
#include "core/SharedArtifactCache.h"

#include <iosfwd>
#include <map>
#include <memory>
#include <string>
#include <vector>

namespace sdsp {
namespace driver {

/// Parsed sdspc command line.  One struct for both binaries: the daemon
/// parses request argv through the same grammar, then rejects the
/// host-only flags (--remote, --store-dir) it cannot honor per request.
struct Options {
  std::string Emit = "schedule";
  /// --emit= appeared explicitly (external-net mode defaults to
  /// "classify" instead of "schedule" when it did not).
  bool EmitGiven = false;
  PipelineOptions Pipe;
  uint64_t RunIterations = 0;
  uint64_t Seed = 1;
  std::string InputPath;
  std::string KernelId;
  /// --pnml=FILE|-: compile nothing — import an external PNML net and
  /// classify/analyze/re-export it (docs/INTEROP.md).
  std::string PnmlPath;
  std::string TimingsJsonPath;
  std::string TracePath;
  std::string MetricsJsonPath;
  bool Timings = false;
  /// --scp appeared explicitly (so --scp=0 is a rejected machine, not
  /// "no machine model").
  bool ScpGiven = false;
  /// Batch mode (core/BatchCompiler.h).
  std::string BatchDir;
  bool BatchKernels = false;
  uint32_t Jobs = 1;
  std::string BatchJsonPath;
  /// Robustness controls (docs/ROBUSTNESS.md).
  std::string FaultSpec;
  uint64_t DeadlineMillis = 0;
  /// --deadline-ms appeared explicitly (so --deadline-ms=0 is an
  /// already-expired deadline, not "no deadline").
  bool DeadlineGiven = false;
  uint32_t Retries = 2;
  bool KeepGoing = true;
  /// Persistent artifact store (docs/SERVICE.md): --store-dir, or the
  /// SDSP_STORE_DIR environment variable when the flag is absent.
  std::string StoreDir;
  uint64_t StoreBytes = 0;
  /// --remote=SOCK: ship this invocation to an sdspd at SOCK instead of
  /// compiling in-process (tools/sdspc.cpp).
  std::string RemoteSocket;

  bool batchMode() const { return !BatchDir.empty() || BatchKernels; }
  bool pnmlMode() const { return !PnmlPath.empty(); }
};

void printUsage(std::ostream &OS);

enum class ParseResult {
  Ok,
  /// A diagnostic was printed to Err; the caller prints usage and
  /// exits 1.
  Error,
  /// --help: usage was printed to Out; the caller exits 0.
  Help,
};

/// Parses \p Args (argv[1..]) into \p Opts.  Diagnostics go to \p Err,
/// --help output to \p Out; never exits.
ParseResult parseArgs(const std::vector<std::string> &Args, Options &Opts,
                      std::ostream &Out, std::ostream &Err);

/// The tiered storage stack a host builds from --store-dir: a
/// process-local memory tier over the persistent content-addressed disk
/// tier.  All-null when no store directory is configured.
struct StoreStack {
  std::unique_ptr<DiskStore> Disk;
  std::unique_ptr<MemoryStore> Memory;
  std::unique_ptr<TieredStore> Tiered;

  ArtifactStore *store() const { return Tiered.get(); }
};

/// Builds the stack for \p Opts (creating the directory).  Returns
/// false (diagnostic on \p Err) when the directory cannot be created.
/// Leaves \p Stack empty when Opts names no store directory.
bool makeStoreStack(const Options &Opts, StoreStack &Stack,
                    std::ostream &Err);

/// Everything environmental a run needs beyond its Options.
struct Env {
  /// Source text for "-" / empty-path input; the CLI passes std::cin.
  std::istream *In = nullptr;
  /// Shared artifact store, or null for per-run caching only.
  ArtifactStore *Store = nullptr;
  /// The store's tiers, for --metrics-json counter flushes (either or
  /// both may be null).
  MemoryStore *Memory = nullptr;
  DiskStore *Disk = nullptr;
  /// When set, file outputs are captured here (path -> content) instead
  /// of written to the filesystem — the daemon returns them in the
  /// response and the remote client writes them client-side.
  std::map<std::string, std::string> *Files = nullptr;
};

/// Compiles per \p Opts (single or batch) and returns the process exit
/// code (docs/ERRORS.md).  Never reads Opts.RemoteSocket — remoting is
/// the CLI's job.
int run(const Options &Opts, const Env &E, std::ostream &Out,
        std::ostream &Err);

/// Flushes disk-tier counters into the global metrics registry as
/// store.disk.* (docs/OBSERVABILITY.md).
void flushDiskStoreMetrics(const DiskStore &Disk);

/// Flushes memory-tier counters into the global metrics registry as
/// cache.* plus per-shard cache.shardNN.* series.
void flushMemoryStoreMetrics(const MemoryStore &Memory);

} // namespace driver
} // namespace sdsp

#endif // SDSP_TOOLS_DRIVERCORE_H
