#!/usr/bin/env python3
"""Benchmark JSON aggregation for the SDSP perf gate.

Runs the google-benchmark binaries with --benchmark_out, then distills
their JSON into the committed artifacts at the repo root:

  BENCH_frustum.json   scaling_frustum: optimized vs reference frustum
                       detection, with the derived speedup per scale and
                       the n~=2048 gate verdict (>= 5x required).
  BENCH_pipeline.json  pipeline_verify: verified end-to-end pipeline
                       times on the six Livermore kernels.
  BENCH_passes.json    session_sweep: per-pass wall time, invocation /
                       cache-hit counters, and artifact sizes from the
                       CompilationSession's PipelineTrace (schema
                       sdsp-pipeline-trace-v1, docs/ARCHITECTURE.md),
                       captured via SDSP_TRACE_JSON during the SCP-depth
                       ablation sweep.

Also provides --smoke, which runs every binary under <build>/bench once
with a short min-time and fails on any crash or benchmark error (the CI
perf-smoke job's crash detector).

Standard library only; works with both old (plain float min-time) and
new ("0.05s") google-benchmark flag syntax by passing the value through
verbatim.
"""

import argparse
import json
import os
import subprocess
import sys

FRUSTUM_BENCH = "scaling_frustum"
PIPELINE_BENCH = "pipeline_verify"
SESSION_BENCH = "session_sweep"
TRACE_SCHEMA = "sdsp-pipeline-trace-v1"
GATE_ARG = "682"  # 682 chains -> 2050 transitions, the paper-scale n=2048 point
GATE_THRESHOLD = 5.0


def run_bench(binary, out_json, min_time):
    """Runs one benchmark binary, writing google-benchmark JSON."""
    cmd = [
        binary,
        "--benchmark_out=%s" % out_json,
        "--benchmark_out_format=json",
        "--benchmark_min_time=%s" % min_time,
    ]
    proc = subprocess.run(cmd, stdout=subprocess.PIPE,
                          stderr=subprocess.STDOUT)
    if proc.returncode != 0:
        sys.stderr.write(proc.stdout.decode("utf-8", "replace"))
        raise SystemExit("benchmark binary failed: %s (exit %d)" %
                         (binary, proc.returncode))
    with open(out_json) as f:
        return json.load(f)


def series_of(report, prefix):
    """name -> real_time (ns) for non-aggregate entries named prefix/..."""
    out = {}
    for b in report.get("benchmarks", []):
        if b.get("run_type") == "aggregate":
            continue
        name = b["name"]
        if name.split("/")[0] != prefix:
            continue
        if b.get("error_occurred"):
            raise SystemExit("benchmark %s reported an error: %s" %
                             (name, b.get("error_message", "?")))
        out[name] = {
            "real_time_ns": b["real_time"],
            "cpu_time_ns": b["cpu_time"],
            "iterations": b["iterations"],
        }
    return out


def arg_of(name):
    """Trailing /N argument of a benchmark name, or None."""
    parts = name.split("/")
    return parts[-1] if len(parts) > 1 and parts[-1].isdigit() else None


def frustum_report(report):
    opt = series_of(report, "benchFrustumAtScale")
    ref = series_of(report, "benchFrustumReferenceAtScale")
    opt_by_arg = {arg_of(n): v for n, v in opt.items() if arg_of(n)}
    ref_by_arg = {arg_of(n): v for n, v in ref.items() if arg_of(n)}
    speedup = {}
    for arg, rv in sorted(ref_by_arg.items(), key=lambda kv: int(kv[0])):
        ov = opt_by_arg.get(arg)
        if ov and ov["real_time_ns"] > 0:
            speedup[arg] = round(rv["real_time_ns"] / ov["real_time_ns"], 3)
    gate_speedup = speedup.get(GATE_ARG)
    return {
        "benchmark": FRUSTUM_BENCH,
        "generated_by": "tools/benchreport.py",
        "context": report.get("context", {}),
        "optimized": opt,
        "reference": ref,
        "speedup_by_chains": speedup,
        "gate": {
            "chains": int(GATE_ARG),
            "description": "detectFrustumChecked vs detectFrustumReference "
                           "wall time at n~=2048 transitions",
            "threshold": GATE_THRESHOLD,
            "speedup": gate_speedup,
            "pass": bool(gate_speedup and gate_speedup >= GATE_THRESHOLD),
        },
    }


def pipeline_report(report):
    series = series_of(report, "benchPipelineVerify")
    return {
        "benchmark": PIPELINE_BENCH,
        "generated_by": "tools/benchreport.py",
        "context": report.get("context", {}),
        "kernels": series,
    }


def passes_report(bench_dir, out_dir, min_time):
    """Runs session_sweep with SDSP_TRACE_JSON set and distills the
    emitted PipelineTrace into the BENCH_passes.json shape."""
    binary = os.path.join(bench_dir, SESSION_BENCH)
    if not os.path.isfile(binary):
        raise SystemExit("missing bench binary: %s" % binary)
    trace_path = os.path.join(out_dir, "BENCH_passes.json.raw")
    env = dict(os.environ, SDSP_TRACE_JSON=trace_path)
    proc = subprocess.run(
        [binary, "--benchmark_min_time=%s" % min_time],
        stdout=subprocess.PIPE, stderr=subprocess.STDOUT, env=env)
    if proc.returncode != 0:
        sys.stderr.write(proc.stdout.decode("utf-8", "replace"))
        raise SystemExit("benchmark binary failed: %s (exit %d)" %
                         (binary, proc.returncode))
    with open(trace_path) as f:
        trace = json.load(f)
    os.remove(trace_path)
    if trace.get("schema") != TRACE_SCHEMA:
        raise SystemExit("unexpected trace schema in %s: %r" %
                         (trace_path, trace.get("schema")))
    passes = {}
    for row in trace.get("passes", []):
        invocations = row.get("invocations", 0)
        if invocations == 0:
            continue
        hits = row.get("cache_hits", 0)
        passes[row["pass"]] = {
            "inputs": row.get("inputs"),
            "output": row.get("output"),
            "invocations": invocations,
            "cache_hits": hits,
            "computed": invocations - hits,
            "failures": row.get("failures", 0),
            "wall_seconds": row.get("wall_seconds", 0.0),
            "artifact_bytes": row.get("artifact_bytes", 0),
        }
    return {
        "benchmark": SESSION_BENCH,
        "generated_by": "tools/benchreport.py",
        "schema": trace.get("schema"),
        "cache_enabled": trace.get("cache_enabled"),
        "total_wall_seconds": trace.get("total_wall_seconds"),
        "passes": passes,
    }


def smoke(bench_dir, min_time):
    """Runs every bench binary once; any crash fails the job."""
    failures = []
    for name in sorted(os.listdir(bench_dir)):
        path = os.path.join(bench_dir, name)
        if not (os.path.isfile(path) and os.access(path, os.X_OK)):
            continue
        print("[smoke] %s" % name, flush=True)
        proc = subprocess.run([path, "--benchmark_min_time=%s" % min_time],
                              stdout=subprocess.PIPE,
                              stderr=subprocess.STDOUT)
        if proc.returncode != 0:
            sys.stderr.write(proc.stdout.decode("utf-8", "replace"))
            failures.append("%s (exit %d)" % (name, proc.returncode))
    if failures:
        raise SystemExit("bench smoke failures: " + ", ".join(failures))
    print("[smoke] all bench binaries ran clean")


def main():
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("--build-dir", default="build",
                    help="CMake build tree holding bench/ binaries")
    ap.add_argument("--out-dir", default=".",
                    help="where BENCH_*.json are written (repo root)")
    ap.add_argument("--min-time", default="0.05",
                    help="--benchmark_min_time value, passed verbatim")
    ap.add_argument("--smoke", action="store_true",
                    help="run every bench binary once, fail on crashes")
    ap.add_argument("--skip-report", action="store_true",
                    help="with --smoke: skip the JSON aggregation step")
    args = ap.parse_args()

    os.makedirs(args.out_dir, exist_ok=True)
    bench_dir = os.path.join(args.build_dir, "bench")
    if not os.path.isdir(bench_dir):
        raise SystemExit("no bench directory at %s (build with "
                         "-DSDSP_BUILD_BENCHMARKS=ON)" % bench_dir)

    if args.smoke:
        smoke(bench_dir, args.min_time)
        if args.skip_report:
            return

    jobs = [
        (FRUSTUM_BENCH, frustum_report, "BENCH_frustum.json"),
        (PIPELINE_BENCH, pipeline_report, "BENCH_pipeline.json"),
    ]
    for binary, distill, out_name in jobs:
        path = os.path.join(bench_dir, binary)
        if not os.path.isfile(path):
            raise SystemExit("missing bench binary: %s" % path)
        raw = os.path.join(args.out_dir, out_name + ".raw")
        report = distill(run_bench(path, raw, args.min_time))
        os.remove(raw)
        out_path = os.path.join(args.out_dir, out_name)
        with open(out_path, "w") as f:
            json.dump(report, f, indent=2, sort_keys=True)
            f.write("\n")
        print("wrote %s" % out_path)

    passes = passes_report(bench_dir, args.out_dir, args.min_time)
    passes_path = os.path.join(args.out_dir, "BENCH_passes.json")
    with open(passes_path, "w") as f:
        json.dump(passes, f, indent=2, sort_keys=True)
        f.write("\n")
    print("wrote %s" % passes_path)

    gate = json.load(open(os.path.join(args.out_dir, "BENCH_frustum.json")))
    g = gate["gate"]
    print("frustum gate: %sx at %s chains (threshold %sx) -> %s" %
          (g["speedup"], g["chains"], g["threshold"],
           "PASS" if g["pass"] else "FAIL"))


if __name__ == "__main__":
    main()
