#!/usr/bin/env python3
"""Benchmark JSON aggregation for the SDSP perf gate.

Runs the google-benchmark binaries with --benchmark_out, then distills
their JSON into the committed artifacts at the repo root:

  BENCH_frustum.json   scaling_frustum: optimized vs reference frustum
                       detection, with the derived speedup per scale and
                       three gate verdicts: the n~=2048 linear-family
                       gate (>= 5x), the at-scale wide-family gate
                       (>= 20x, measured at n=65536 and power-law
                       extrapolated at n=262144), the analytic-engine
                       gate (detectFrustumAnalytic >= 10x vs the
                       reference simulator on the pinned
                       single-critical-cycle wide family, gated at the
                       extrapolated n=262144 arm), and the rate-engine
                       gate (Howard's policy iteration >= 10x vs
                       Johnson-cycle enumeration on dense-cycle nets).

Every capture records its build provenance (the `sdsp_build_type`
custom context SDSP_BENCH_MAIN stamps from the project's own NDEBUG;
google-benchmark's `library_build_type` only describes libbenchmark
itself).  A capture from a non-Release build is refused, because
unoptimized timings must never feed the committed gates; pass
--allow-debug to generate such reports anyway with every gate loudly
marked non-gating.
  BENCH_pipeline.json  pipeline_verify: verified end-to-end pipeline
                       times on the six Livermore kernels.
  BENCH_passes.json    session_sweep: per-pass wall time, invocation /
                       cache-hit counters, and artifact sizes from the
                       CompilationSession's PipelineTrace (schema
                       sdsp-pipeline-trace-v1, docs/ARCHITECTURE.md),
                       captured via SDSP_TRACE_JSON during the SCP-depth
                       ablation sweep.
  BENCH_batch.json     batch_throughput: wall-clock batch compilation
                       across 1/2/4/8 worker threads (shared cache on
                       and off), the speedup over the 1-thread arm, and
                       the 8-thread gate verdict (>= 2.5x required;
                       recorded as skipped on hosts with fewer than 8
                       CPUs, where the target is unmeetable by
                       construction).
  BENCH_metrics.json   counter deltas from `sdspc --batch-kernels
                       --verify --metrics-json` (schema sdsp-metrics-v1,
                       docs/OBSERVABILITY.md): engine firings,
                       enabled-set rebuilds, state-table probes, cache
                       hit/miss counts.  Unlike wall times these are
                       exact work counts, so --compare diffs them for
                       equality — any drift means the pipeline is doing
                       different work, not that the machine is slower.
  BENCH_store.json     store_throughput: the six Livermore kernels
                       compiled through the persistent tiered artifact
                       store (core/ArtifactStore.h, docs/SERVICE.md)
                       over an empty directory (cold fill) vs a
                       pre-populated one (warm replay, the
                       restarted-daemon shape), and the warm-over-cold
                       speedup — the machine-relative ratio --compare
                       tracks.

Also provides --smoke, which runs every binary under <build>/bench once
with a short min-time and fails on any crash or benchmark error (the CI
perf-smoke job's crash detector), and --compare BASELINE_DIR, which
diffs freshly generated reports against the committed baselines and
fails on a >25% regression of any machine-relative metric (speedups and
per-kernel time shares; absolute nanoseconds are machine-specific and
never compared).  Every schema failure under --compare names the exact
BENCH_*.json (fresh or baseline) the missing key came from.

Standard library only; works with both old (plain float min-time) and
new ("0.05s") google-benchmark flag syntax by passing the value through
verbatim.
"""

import argparse
import json
import math
import os
import subprocess
import sys

FRUSTUM_BENCH = "scaling_frustum"
PIPELINE_BENCH = "pipeline_verify"
SESSION_BENCH = "session_sweep"
BATCH_BENCH = "batch_throughput"
STORE_BENCH = "store_throughput"
TRACE_SCHEMA = "sdsp-pipeline-trace-v1"
GATE_ARG = "682"  # 682 chains -> 2050 transitions, the paper-scale n=2048 point
GATE_THRESHOLD = 5.0
# At-scale arms (bench/ScalingFrustum.cpp): args >= this are
# transition-count targets on the wide multi-cycle family; smaller args
# are chain counts on the linear paper family.
AT_SCALE_WIDE_MIN = 4096
AT_SCALE_GATE_ARG = "65536"       # reference measured directly
AT_SCALE_EXTRAP_ARG = "262144"    # reference extrapolated by power law
AT_SCALE_THRESHOLD = 20.0
# Analytic-engine gate: detectFrustumAnalytic vs the reference
# simulator on the pinned single-critical-cycle wide family, gated at
# the extrapolated 262144 arm (the reference's superlinear growth vs
# the analytic engine's near-linear cost is the asymptotic claim; the
# measured 65536 ratio is committed alongside as context).
ANALYTIC_GATE_THRESHOLD = 10.0
RATE_GATE_ARG = "24"
RATE_GATE_THRESHOLD = 10.0
BATCH_GATE_THREADS = "8"
BATCH_GATE_THRESHOLD = 2.5
COMPARE_TOLERANCE = 0.25  # Relative regression allowed before failing.

# Set by main() from --allow-debug: a debug capture then produces
# reports whose gates are loudly marked non-gating instead of being
# refused outright.
ALLOW_DEBUG = False


def provenance_of(report):
    """Build provenance of the code under test.  SDSP_BENCH_MAIN stamps
    `sdsp_build_type` from the project's own NDEBUG; google-benchmark's
    `library_build_type` only describes how *libbenchmark* was built
    (routinely "debug" for distro packages even under -O2 -DNDEBUG
    project builds), so it is just the fallback for old captures."""
    ctx = report.get("context", {})
    return ctx.get("sdsp_build_type", ctx.get("library_build_type", "unknown"))


def check_provenance(report, what):
    """Refuses a non-Release capture (or, with --allow-debug, lets it
    through loudly).  Returns the provenance string to record in the
    distilled report; gates from a non-release capture are marked
    non-gating so nothing downstream treats their numbers as binding."""
    prov = provenance_of(report)
    if prov == "release":
        return prov
    msg = ("%s was captured from a non-Release build (provenance %r): "
           "timings from unoptimized code must not feed the perf gates. "
           "Rebuild with -DCMAKE_BUILD_TYPE=Release "
           "-DSDSP_ENABLE_ASSERTIONS=OFF and recapture" % (what, prov))
    if not ALLOW_DEBUG:
        raise SystemExit(msg + " (or pass --allow-debug to generate "
                         "non-gating reports).")
    sys.stderr.write("WARNING: %s -- continuing because --allow-debug "
                     "was given; all gates in this report are marked "
                     "non-gating.\n" % msg)
    return prov


def fit_power_law(points):
    """Least-squares log-log fit of [(n, t), ...] -> (coeff, exponent)
    with t ~ coeff * n**exponent.  Needs >= 2 distinct n."""
    xs = [math.log(n) for n, _ in points]
    ys = [math.log(t) for _, t in points]
    k = len(points)
    mx, my = sum(xs) / k, sum(ys) / k
    denom = sum((x - mx) ** 2 for x in xs)
    if denom <= 0:
        raise SystemExit("power-law fit needs at least two distinct "
                         "scales, got %r" % ([n for n, _ in points],))
    exponent = sum((x - mx) * (y - my) for x, y in zip(xs, ys)) / denom
    coeff = math.exp(my - exponent * mx)
    return coeff, exponent


def run_bench(binary, out_json, min_time):
    """Runs one benchmark binary, writing google-benchmark JSON."""
    cmd = [
        binary,
        "--benchmark_out=%s" % out_json,
        "--benchmark_out_format=json",
        "--benchmark_min_time=%s" % min_time,
    ]
    proc = subprocess.run(cmd, stdout=subprocess.PIPE,
                          stderr=subprocess.STDOUT)
    if proc.returncode != 0:
        sys.stderr.write(proc.stdout.decode("utf-8", "replace"))
        raise SystemExit("benchmark binary failed: %s (exit %d)" %
                         (binary, proc.returncode))
    with open(out_json) as f:
        return json.load(f)


def series_of(report, prefix):
    """name -> real_time (ns) for non-aggregate entries named prefix/..."""
    out = {}
    for b in report.get("benchmarks", []):
        if b.get("run_type") == "aggregate":
            continue
        name = b["name"]
        if name.split("/")[0] != prefix:
            continue
        if b.get("error_occurred"):
            raise SystemExit("benchmark %s reported an error: %s" %
                             (name, b.get("error_message", "?")))
        out[name] = {
            "real_time_ns": b["real_time"],
            "cpu_time_ns": b["cpu_time"],
            "iterations": b["iterations"],
        }
    return out


def arg_of(name):
    """The /N argument of a benchmark name, or None.  UseRealTime
    benchmarks append a "/real_time" suffix after the argument."""
    parts = name.split("/")
    for part in reversed(parts[1:]):
        if part.isdigit():
            return part
    return None


def frustum_report(report):
    prov = check_provenance(report, "BENCH_frustum capture")
    gating = prov == "release"
    opt = series_of(report, "benchFrustumAtScale")
    ref = series_of(report, "benchFrustumReferenceAtScale")
    opt_by_arg = {arg_of(n): v for n, v in opt.items() if arg_of(n)}
    ref_by_arg = {arg_of(n): v for n, v in ref.items() if arg_of(n)}
    speedup = {}
    for arg, rv in sorted(ref_by_arg.items(), key=lambda kv: int(kv[0])):
        ov = opt_by_arg.get(arg)
        if ov and ov["real_time_ns"] > 0:
            speedup[arg] = round(rv["real_time_ns"] / ov["real_time_ns"], 3)
    gate_speedup = speedup.get(GATE_ARG)

    # At-scale gate: the reference detector runs the wide multi-cycle
    # family directly up to the 65536 arm (that ratio is measured); at
    # 262144 only the optimized engine runs, and the reference's cost
    # there is extrapolated by the power law fitted to its measured
    # wide arms.  The fast engine scales *better* than the reference on
    # this family, so a power-law extrapolation of the reference is the
    # conservative choice: underfitting it only understates the ratio.
    wide_ref = sorted((int(a), v["real_time_ns"])
                      for a, v in ref_by_arg.items()
                      if int(a) >= AT_SCALE_WIDE_MIN)
    extrapolation = None
    extrap_speedup = None
    if len(wide_ref) >= 2:
        coeff, exponent = fit_power_law(wide_ref)
        target = int(AT_SCALE_EXTRAP_ARG)
        # Anchor at the largest measured arm rather than the global
        # fit's absolute level: scale its measured time by the fitted
        # exponent, so the prediction is exact at the anchor.
        anchor_n, anchor_t = wide_ref[-1]
        ref_at_target = anchor_t * (target / anchor_n) ** exponent
        ov = opt_by_arg.get(AT_SCALE_EXTRAP_ARG)
        if ov and ov["real_time_ns"] > 0:
            extrap_speedup = round(ref_at_target / ov["real_time_ns"], 3)
        extrapolation = {
            "fitted_exponent": round(exponent, 3),
            "fitted_points": [[n, t] for n, t in wide_ref],
            "anchor_transitions": anchor_n,
            "extrapolated_reference_ns": round(ref_at_target, 1),
            "transitions": target,
        }
    measured_at_scale = speedup.get(AT_SCALE_GATE_ARG)
    at_scale_pass = bool(
        measured_at_scale and measured_at_scale >= AT_SCALE_THRESHOLD
        and extrap_speedup and extrap_speedup >= AT_SCALE_THRESHOLD)

    # Analytic-engine gate: detectFrustumAnalytic vs the reference
    # simulator on the *pinned* wide family (chain 0's multiplies
    # slowed so exactly one critical cycle survives and the analytic
    # bar qualifies).  Same shape as the at-scale gate: the reference
    # is measured directly up to 65536 (beyond that it cannot hold the
    # per-instant interned states in memory), and its cost at 262144 is
    # power-law extrapolated from its measured arms, anchored at the
    # largest.  The gate binds at the extrapolated arm -- the analytic
    # engine's edge over simulation is asymptotic (near-linear
    # construction vs superlinear stepping), so the biggest arm carries
    # the claim -- with the measured 65536 ratio and the fast-engine
    # comparison committed alongside as context, not enforced.
    ana = series_of(report, "benchFrustumAnalyticAtScale")
    ana_sim = series_of(report, "benchFrustumAnalyticSimAtScale")
    ana_ref = series_of(report, "benchFrustumAnalyticReferenceAtScale")
    ana_by_arg = {arg_of(n): v for n, v in ana.items() if arg_of(n)}
    ana_sim_by_arg = {arg_of(n): v for n, v in ana_sim.items() if arg_of(n)}
    ana_ref_by_arg = {arg_of(n): v for n, v in ana_ref.items() if arg_of(n)}
    ana_measured = None
    av = ana_by_arg.get(AT_SCALE_GATE_ARG)
    arv = ana_ref_by_arg.get(AT_SCALE_GATE_ARG)
    if av and arv and av["real_time_ns"] > 0:
        ana_measured = round(arv["real_time_ns"] / av["real_time_ns"], 3)
    ana_vs_fast = None
    asv = ana_sim_by_arg.get(AT_SCALE_GATE_ARG)
    if av and asv and av["real_time_ns"] > 0:
        ana_vs_fast = round(asv["real_time_ns"] / av["real_time_ns"], 3)
    ana_wide_ref = sorted((int(a), v["real_time_ns"])
                          for a, v in ana_ref_by_arg.items()
                          if int(a) >= AT_SCALE_WIDE_MIN)
    ana_extrapolation = None
    ana_extrap_speedup = None
    if len(ana_wide_ref) >= 2:
        _, ana_exponent = fit_power_law(ana_wide_ref)
        target = int(AT_SCALE_EXTRAP_ARG)
        anchor_n, anchor_t = ana_wide_ref[-1]
        ana_ref_at_target = anchor_t * (target / anchor_n) ** ana_exponent
        av_big = ana_by_arg.get(AT_SCALE_EXTRAP_ARG)
        if av_big and av_big["real_time_ns"] > 0:
            ana_extrap_speedup = round(
                ana_ref_at_target / av_big["real_time_ns"], 3)
        ana_extrapolation = {
            "fitted_exponent": round(ana_exponent, 3),
            "fitted_points": [[n, t] for n, t in ana_wide_ref],
            "anchor_transitions": anchor_n,
            "extrapolated_reference_ns": round(ana_ref_at_target, 1),
            "transitions": target,
        }

    # Rate-engine gate: Howard's policy iteration vs Johnson-cycle
    # enumeration on the dense-cycle marked graph.
    howard = series_of(report, "benchRateHoward")
    enum = series_of(report, "benchRateEnumerate")
    howard_by_arg = {arg_of(n): v for n, v in howard.items() if arg_of(n)}
    enum_by_arg = {arg_of(n): v for n, v in enum.items() if arg_of(n)}
    rate_speedup = None
    hv = howard_by_arg.get(RATE_GATE_ARG)
    ev = enum_by_arg.get(RATE_GATE_ARG)
    if hv and ev and hv["real_time_ns"] > 0:
        rate_speedup = round(ev["real_time_ns"] / hv["real_time_ns"], 3)

    return {
        "benchmark": FRUSTUM_BENCH,
        "generated_by": "tools/benchreport.py",
        "provenance": prov,
        "context": report.get("context", {}),
        "optimized": opt,
        "reference": ref,
        "rate_howard": howard,
        "rate_enumerate": enum,
        "speedup_by_chains": speedup,
        "gate": {
            "chains": int(GATE_ARG),
            "description": "detectFrustumChecked vs detectFrustumReference "
                           "wall time at n~=2048 transitions",
            "threshold": GATE_THRESHOLD,
            "speedup": gate_speedup,
            "gating": gating,
            "pass": bool(gate_speedup and gate_speedup >= GATE_THRESHOLD),
        },
        "at_scale_gate": {
            "description": "fast engine vs reference at the wide "
                           "multi-cycle family: measured ratio at n=%s, "
                           "power-law-extrapolated reference at n=%s" %
                           (AT_SCALE_GATE_ARG, AT_SCALE_EXTRAP_ARG),
            "threshold": AT_SCALE_THRESHOLD,
            "measured_speedup_at_%s" % AT_SCALE_GATE_ARG: measured_at_scale,
            "extrapolated_speedup_at_%s" % AT_SCALE_EXTRAP_ARG:
                extrap_speedup,
            "extrapolation": extrapolation,
            "gating": gating,
            "pass": at_scale_pass,
        },
        "analytic": ana,
        "analytic_sim": ana_sim,
        "analytic_reference": ana_ref,
        "analytic_gate": {
            "description": "detectFrustumAnalytic vs detectFrustumReference "
                           "at the pinned single-critical-cycle wide family: "
                           "measured ratio at n=%s (context), "
                           "power-law-extrapolated reference at n=%s "
                           "(binding)" %
                           (AT_SCALE_GATE_ARG, AT_SCALE_EXTRAP_ARG),
            "threshold": ANALYTIC_GATE_THRESHOLD,
            "measured_speedup_at_%s" % AT_SCALE_GATE_ARG: ana_measured,
            "extrapolated_speedup_at_%s" % AT_SCALE_EXTRAP_ARG:
                ana_extrap_speedup,
            # Honest context: the leap-based fast engine over the
            # analytic engine at the measured arm.  The pinned family's
            # frustum window is short, so the fast simulator is still
            # competitive here; the analytic engine's claim is against
            # step-per-instant simulation, not against the leap engine.
            "fast_engine_over_analytic_at_%s" % AT_SCALE_GATE_ARG:
                ana_vs_fast,
            "extrapolation": ana_extrapolation,
            "gating": gating,
            "pass": bool(ana_extrap_speedup and
                         ana_extrap_speedup >= ANALYTIC_GATE_THRESHOLD),
        },
        "rate_gate": {
            "description": "maxCycleRatioHoward vs "
                           "criticalCycleByEnumeration on the dense-cycle "
                           "marked graph (N=%s, chords=%s)" %
                           (RATE_GATE_ARG, RATE_GATE_ARG),
            "threshold": RATE_GATE_THRESHOLD,
            "speedup": rate_speedup,
            "gating": gating,
            "pass": bool(rate_speedup and
                         rate_speedup >= RATE_GATE_THRESHOLD),
        },
    }


def pipeline_report(report):
    series = series_of(report, "benchPipelineVerify")
    return {
        "benchmark": PIPELINE_BENCH,
        "generated_by": "tools/benchreport.py",
        "provenance": check_provenance(report, "BENCH_pipeline capture"),
        "context": report.get("context", {}),
        "kernels": series,
    }


def passes_report(bench_dir, out_dir, min_time):
    """Runs session_sweep with SDSP_TRACE_JSON set and distills the
    emitted PipelineTrace into the BENCH_passes.json shape."""
    binary = os.path.join(bench_dir, SESSION_BENCH)
    if not os.path.isfile(binary):
        raise SystemExit("missing bench binary: %s" % binary)
    trace_path = os.path.join(out_dir, "BENCH_passes.json.raw")
    env = dict(os.environ, SDSP_TRACE_JSON=trace_path)
    proc = subprocess.run(
        [binary, "--benchmark_min_time=%s" % min_time],
        stdout=subprocess.PIPE, stderr=subprocess.STDOUT, env=env)
    if proc.returncode != 0:
        sys.stderr.write(proc.stdout.decode("utf-8", "replace"))
        raise SystemExit("benchmark binary failed: %s (exit %d)" %
                         (binary, proc.returncode))
    with open(trace_path) as f:
        trace = json.load(f)
    os.remove(trace_path)
    if trace.get("schema") != TRACE_SCHEMA:
        raise SystemExit("unexpected trace schema in %s: %r" %
                         (trace_path, trace.get("schema")))
    passes = {}
    for row in trace.get("passes", []):
        invocations = row.get("invocations", 0)
        if invocations == 0:
            continue
        hits = row.get("cache_hits", 0)
        passes[row["pass"]] = {
            "inputs": row.get("inputs"),
            "output": row.get("output"),
            "invocations": invocations,
            "cache_hits": hits,
            "computed": invocations - hits,
            "failures": row.get("failures", 0),
            "wall_seconds": row.get("wall_seconds", 0.0),
            "artifact_bytes": row.get("artifact_bytes", 0),
        }
    return {
        "benchmark": SESSION_BENCH,
        "generated_by": "tools/benchreport.py",
        "schema": trace.get("schema"),
        "cache_enabled": trace.get("cache_enabled"),
        "total_wall_seconds": trace.get("total_wall_seconds"),
        "passes": passes,
    }


def batch_report(report):
    shared = series_of(report, "benchBatchShared")
    private = series_of(report, "benchBatchPrivate")
    shared_by_arg = {arg_of(n): v for n, v in shared.items() if arg_of(n)}
    base = shared_by_arg.get("1")
    speedup = {}
    if base and base["real_time_ns"] > 0:
        for arg, v in sorted(shared_by_arg.items(), key=lambda kv: int(kv[0])):
            if v["real_time_ns"] > 0:
                speedup[arg] = round(base["real_time_ns"] / v["real_time_ns"],
                                     3)
    num_cpus = report.get("context", {}).get("num_cpus", 0)
    gate_speedup = speedup.get(BATCH_GATE_THREADS)
    skipped = num_cpus < int(BATCH_GATE_THREADS)
    prov = check_provenance(report, "BENCH_batch capture")
    return {
        "benchmark": BATCH_BENCH,
        "generated_by": "tools/benchreport.py",
        "provenance": prov,
        "context": report.get("context", {}),
        "shared_cache": shared,
        "private_cache": private,
        "speedup_by_threads": speedup,
        "gate": {
            "threads": int(BATCH_GATE_THREADS),
            "description": "batch wall-clock speedup of -j 8 over -j 1 "
                           "(shared cache) on the Livermore+synthetic "
                           "batch",
            "threshold": BATCH_GATE_THRESHOLD,
            "num_cpus": num_cpus,
            "speedup": gate_speedup,
            # An N-thread speedup target is unmeetable on < N CPUs;
            # record the fact instead of a vacuous failure (the same
            # quiet-hardware policy as the committed PERF.md baselines).
            "skipped": skipped,
            "gating": prov == "release",
            "pass": bool(skipped or
                         (gate_speedup and
                          gate_speedup >= BATCH_GATE_THRESHOLD)),
        },
    }


def store_report(report):
    """Distills store_throughput (bench/StoreThroughput.cpp) into the
    BENCH_store.json shape: cold fill vs warm replay of the Livermore
    kernels through the persistent tiered store, and their ratio."""
    prov = check_provenance(report, "BENCH_store capture")
    cold = series_of(report, "benchStoreCold")
    warm = series_of(report, "benchStoreWarm")

    def only(series, label):
        if len(series) != 1:
            raise SystemExit("BENCH_store capture has %d '%s' entries, "
                             "expected exactly 1" % (len(series), label))
        return next(iter(series.values()))

    cold_ns = only(cold, "benchStoreCold")["real_time_ns"]
    warm_ns = only(warm, "benchStoreWarm")["real_time_ns"]
    warm_speedup = round(cold_ns / warm_ns, 3) if warm_ns > 0 else None
    return {
        "benchmark": STORE_BENCH,
        "generated_by": "tools/benchreport.py",
        "provenance": prov,
        "context": report.get("context", {}),
        "cold_fill": cold,
        "warm_replay": warm,
        "warm_speedup": warm_speedup,
    }


def metrics_report(build_dir, out_dir):
    """Runs the deterministic batch workload under --metrics-json and
    keeps the machine-independent counters.  Per-shard series (a
    std::hash layout detail) and byte-size estimates (ABI-dependent)
    are dropped; everything left is an exact work count that must not
    drift between hosts running the same code."""
    sdspc = os.path.join(build_dir, "tools", "sdspc")
    if not os.path.isfile(sdspc):
        raise SystemExit("missing sdspc binary: %s (build the sdspc "
                         "target)" % sdspc)
    raw = os.path.join(out_dir, "BENCH_metrics.json.raw")
    proc = subprocess.run(
        [sdspc, "--batch-kernels", "--verify", "-j", "2",
         "--metrics-json=%s" % raw],
        stdout=subprocess.PIPE, stderr=subprocess.STDOUT)
    if proc.returncode != 0:
        sys.stderr.write(proc.stdout.decode("utf-8", "replace"))
        raise SystemExit("sdspc --batch-kernels failed (exit %d)" %
                         proc.returncode)
    with open(raw) as f:
        metrics = json.load(f)
    os.remove(raw)
    if metrics.get("schema") != "sdsp-metrics-v1":
        raise SystemExit("unexpected metrics schema: %r" %
                         metrics.get("schema"))
    counters = {
        name: value
        for name, value in metrics.get("counters", {}).items()
        if not name.startswith("cache.shard")
        and not name.endswith(".bytes")
    }
    return {
        "benchmark": "sdspc --batch-kernels --verify --metrics-json",
        "generated_by": "tools/benchreport.py",
        "schema": "sdsp-metrics-v1",
        "counters": counters,
    }


def smoke(bench_dir, min_time):
    """Runs every bench binary once; any crash fails the job."""
    failures = []
    for name in sorted(os.listdir(bench_dir)):
        path = os.path.join(bench_dir, name)
        if not (os.path.isfile(path) and os.access(path, os.X_OK)):
            continue
        print("[smoke] %s" % name, flush=True)
        proc = subprocess.run([path, "--benchmark_min_time=%s" % min_time],
                              stdout=subprocess.PIPE,
                              stderr=subprocess.STDOUT)
        if proc.returncode != 0:
            sys.stderr.write(proc.stdout.decode("utf-8", "replace"))
            failures.append("%s (exit %d)" % (name, proc.returncode))
    if failures:
        raise SystemExit("bench smoke failures: " + ", ".join(failures))
    print("[smoke] all bench binaries ran clean")


def load_pair(fresh_dir, base_dir, name):
    fresh_path = os.path.join(fresh_dir, name)
    base_path = os.path.join(base_dir, name)
    for p in (fresh_path, base_path):
        if not os.path.isfile(p):
            raise SystemExit("--compare: missing report %s (regenerate "
                             "baselines with tools/benchreport.py)" % p)
    reports = []
    for p in (fresh_path, base_path):
        with open(p) as f:
            try:
                reports.append(json.load(f))
            except json.JSONDecodeError as e:
                raise SystemExit("--compare: %s is not valid JSON: %s" %
                                 (p, e))
    return reports[0], reports[1]


def require(report, key, name):
    """A missing key in a report is a schema mismatch (usually a stale
    baseline), not a crash site: fail with the fix spelled out."""
    if key not in report:
        raise SystemExit("--compare: %s has no '%s' key -- the baseline "
                         "predates the current report schema; regenerate "
                         "it with tools/benchreport.py" % (name, key))
    return report[key]


def compare_ratios(label, fresh_ratios, base_ratios, failures,
                   higher_is_better=True):
    """Flags entries of a name->ratio map that regressed by more than
    COMPARE_TOLERANCE relative to the baseline.  Ratios are
    machine-relative (speedups, shares), so they are comparable across
    hosts in a way raw nanoseconds are not.  Every key that cannot be
    compared -- missing on one side, non-numeric, or anchored on a
    non-positive baseline -- gets an explicit note; silence here would
    read as a pass."""
    if fresh_ratios is None or base_ratios is None:
        print("[compare] %s: %s ratios unavailable -- NOT COMPARED" %
              (label, "fresh" if fresh_ratios is None else "baseline"))
        return
    for key in sorted(set(fresh_ratios) | set(base_ratios)):
        if key not in base_ratios:
            print("[compare] %s %s: no baseline entry -- NOT COMPARED "
                  "(new arm? regenerate the baseline)" % (label, key))
            continue
        if key not in fresh_ratios:
            print("[compare] %s %s: no fresh entry -- NOT COMPARED "
                  "(removed arm? stale baseline)" % (label, key))
            continue
        fresh, base = fresh_ratios[key], base_ratios[key]
        if not isinstance(fresh, (int, float)) or \
                not isinstance(base, (int, float)):
            print("[compare] %s %s: non-numeric ratio (baseline %r, "
                  "current %r) -- NOT COMPARED" % (label, key, base, fresh))
            continue
        if base <= 0:
            # A non-positive baseline ratio cannot anchor a relative
            # comparison; say so rather than silently passing.
            print("[compare] %s %s: baseline ratio %.3f is not "
                  "comparable -- NOT COMPARED" % (label, key, base))
            continue
        if higher_is_better:
            regressed = fresh < base * (1.0 - COMPARE_TOLERANCE)
        else:
            regressed = fresh > base * (1.0 + COMPARE_TOLERANCE)
        verdict = "REGRESSED" if regressed else "ok"
        print("[compare] %s %s: baseline %.3f, current %.3f -> %s" %
              (label, key, base, fresh, verdict))
        if regressed:
            failures.append("%s %s: %.3f -> %.3f (tolerance %d%%)" %
                            (label, key, base, fresh,
                             int(COMPARE_TOLERANCE * 100)))


def kernel_shares(report, name):
    """Per-kernel fraction of the summed pipeline time: relative cost
    structure, stable across machines of different absolute speed.
    \p name says which BENCH file the report came from, so a schema
    mismatch points at the offending file instead of leaving the
    reader to guess among the committed baselines."""
    kernels = require(report, "kernels", name)
    total = 0
    for kernel, v in kernels.items():
        if not isinstance(v, dict) or "real_time_ns" not in v:
            raise SystemExit("--compare: %s kernel '%s' has no "
                             "'real_time_ns' key -- the report is "
                             "malformed; regenerate it with "
                             "tools/benchreport.py" % (name, kernel))
        total += v["real_time_ns"]
    if total <= 0:
        # Zero summed time means the capture is broken (or empty); a
        # share map would divide by zero, and an empty map would make
        # the comparison vacuously pass.  Return None so compare_ratios
        # prints an explicit NOT COMPARED note instead.
        print("[compare] %s: kernel times sum to %s ns -- per-kernel "
              "shares are undefined" % (name, total))
        return None
    return {n: v["real_time_ns"] / total for n, v in kernels.items()}


def compare_reports(fresh_dir, base_dir):
    """Diffs fresh reports against committed baselines; exits nonzero
    on any >25% regression of a comparable metric."""
    failures = []

    def enforce_gate(gate, label):
        """A failing gate fails the comparison -- unless the capture
        was marked non-gating (debug provenance), which is loud but
        not binding.  Skipped gates and non-gating passes say so
        explicitly: a bare "no regressions" line after a gate that
        never ran (or ran on unoptimized code) is a misleading PASS."""
        if gate.get("skipped"):
            print("[compare] %s SKIPPED on this host -- NOT ENFORCED "
                  "(its pass flag is vacuous, not evidence)" % label)
            return
        if gate.get("pass"):
            if not gate.get("gating", True):
                print("[compare] %s passed on a NON-GATING (non-release) "
                      "capture -- not evidence of performance" % label)
            return
        if not gate.get("gating", True):
            print("[compare] %s FAILED but is marked non-gating "
                  "(non-release capture) -- not enforced" % label)
            return
        failures.append("%s failed: %s" % (label, json.dumps(
            {k: v for k, v in gate.items()
             if k not in ("description", "extrapolation")})))

    fresh, base = load_pair(fresh_dir, base_dir, "BENCH_frustum.json")
    compare_ratios("frustum speedup @",
                   require(fresh, "speedup_by_chains",
                           "fresh BENCH_frustum.json"),
                   require(base, "speedup_by_chains",
                           "baseline BENCH_frustum.json"), failures)
    enforce_gate(require(fresh, "gate", "fresh BENCH_frustum.json"),
                 "frustum gate")
    enforce_gate(require(fresh, "at_scale_gate", "fresh BENCH_frustum.json"),
                 "frustum at-scale gate")
    enforce_gate(require(fresh, "analytic_gate", "fresh BENCH_frustum.json"),
                 "frustum analytic gate")
    enforce_gate(require(fresh, "rate_gate", "fresh BENCH_frustum.json"),
                 "rate-engine gate")

    fresh, base = load_pair(fresh_dir, base_dir, "BENCH_pipeline.json")
    compare_ratios("pipeline share",
                   kernel_shares(fresh, "fresh BENCH_pipeline.json"),
                   kernel_shares(base, "baseline BENCH_pipeline.json"),
                   failures, higher_is_better=False)

    # The store's warm-over-cold ratio is machine-relative (both arms
    # run on the same host), but its magnitude rides on artifact-decode
    # vs analysis cost, which swings with host load far more than the
    # frustum or batch ratios.  So the binding check is the invariant --
    # a warm replay must never lose to a cold recompute -- and the
    # baseline delta is reported for the record, not enforced.
    fresh, base = load_pair(fresh_dir, base_dir, "BENCH_store.json")
    fresh_speedup = require(fresh, "warm_speedup", "fresh BENCH_store.json")
    base_speedup = require(base, "warm_speedup", "baseline BENCH_store.json")
    floor = 1.0 - COMPARE_TOLERANCE
    # warm_speedup is None when the warm arm measured zero time, i.e.
    # the capture itself is broken.  Coercing that to 0.0 used to
    # produce the misleading "warm replay lost to cold recompute";
    # report the real defect instead (and only note, never enforce, a
    # broken *baseline*).
    if not isinstance(base_speedup, (int, float)):
        print("[compare] store warm_speedup: baseline value %r is not "
              "numeric -- NOT COMPARED against it (regenerate the "
              "baseline)" % (base_speedup,))
    if not isinstance(fresh_speedup, (int, float)):
        failures.append("store warm_speedup is %r in the fresh report: "
                        "the warm-replay arm measured no time, so the "
                        "capture is broken" % (fresh_speedup,))
    else:
        base_str = ("%.3f" % base_speedup
                    if isinstance(base_speedup, (int, float)) else
                    repr(base_speedup))
        verdict = "REGRESSED" if fresh_speedup < floor else "ok"
        print("[compare] store warm_speedup: baseline %s, current %.3f, "
              "floor %.2f -> %s" % (base_str, fresh_speedup, floor,
                                    verdict))
        if fresh_speedup < floor:
            failures.append("store warm_speedup %.3f: warm replay lost to "
                            "cold recompute (floor %.2f)" %
                            (fresh_speedup, floor))

    fresh, base = load_pair(fresh_dir, base_dir, "BENCH_batch.json")
    gate = require(fresh, "gate", "fresh BENCH_batch.json")
    batch_gate = gate
    # Thread-speedups are only meaningful up to the CPU count, and only
    # comparable up to the smaller of the two hosts'.
    fresh_cpus = gate.get("num_cpus", 0)
    base_cpus = require(base, "gate",
                        "baseline BENCH_batch.json").get("num_cpus", 0)
    cpu_floor = min(fresh_cpus, base_cpus)
    if cpu_floor <= 0:
        # A zero/missing CPU count would filter *every* thread arm out
        # of both maps and the comparison would pass vacuously.
        print("[compare] batch speedups: NOT COMPARED (num_cpus is %s "
              "fresh, %s baseline -- no thread arm is comparable)" %
              (fresh_cpus, base_cpus))
    else:
        comparable = lambda m: {k: v for k, v in m.items()
                                if int(k) <= cpu_floor}
        compare_ratios("batch speedup @",
                       comparable(require(fresh, "speedup_by_threads",
                                          "fresh BENCH_batch.json")),
                       comparable(require(base, "speedup_by_threads",
                                          "baseline BENCH_batch.json")),
                       failures)
    enforce_gate(batch_gate, "batch gate")

    # Counters are exact: the slightest delta means the pipeline did
    # different work than the baseline run, which is a semantic change
    # (or a baseline in need of regeneration), never machine noise.
    fresh, base = load_pair(fresh_dir, base_dir, "BENCH_metrics.json")
    fc = require(fresh, "counters", "fresh BENCH_metrics.json")
    bc = require(base, "counters", "baseline BENCH_metrics.json")
    for key in sorted(set(fc) | set(bc)):
        fv, bv = fc.get(key), bc.get(key)
        if fv != bv:
            failures.append("counter %s: baseline %s, current %s "
                            "(exact match required)" % (key, bv, fv))
        else:
            print("[compare] counter %s: %s == %s -> ok" % (key, bv, fv))

    if failures:
        raise SystemExit("perf regressions vs %s:\n  " % base_dir +
                         "\n  ".join(failures))
    print("[compare] no regressions beyond %d%% vs %s" %
          (int(COMPARE_TOLERANCE * 100), base_dir))


def main():
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("--build-dir", default="build",
                    help="CMake build tree holding bench/ binaries")
    ap.add_argument("--out-dir", default=".",
                    help="where BENCH_*.json are written (repo root)")
    ap.add_argument("--min-time", default="0.05",
                    help="--benchmark_min_time value, passed verbatim")
    ap.add_argument("--smoke", action="store_true",
                    help="run every bench binary once, fail on crashes")
    ap.add_argument("--skip-report", action="store_true",
                    help="with --smoke: skip the JSON aggregation step")
    ap.add_argument("--compare", metavar="BASELINE_DIR",
                    help="after generating reports into --out-dir, diff "
                         "them against the committed BENCH_*.json in "
                         "BASELINE_DIR and fail on >25%% regression")
    ap.add_argument("--allow-debug", action="store_true",
                    help="accept captures from non-Release builds; their "
                         "gates are loudly marked non-gating instead of "
                         "the capture being refused")
    args = ap.parse_args()
    global ALLOW_DEBUG
    ALLOW_DEBUG = args.allow_debug

    os.makedirs(args.out_dir, exist_ok=True)
    bench_dir = os.path.join(args.build_dir, "bench")
    if not os.path.isdir(bench_dir):
        raise SystemExit("no bench directory at %s (build with "
                         "-DSDSP_BUILD_BENCHMARKS=ON)" % bench_dir)

    if args.smoke:
        smoke(bench_dir, args.min_time)
        if args.skip_report:
            return

    jobs = [
        (FRUSTUM_BENCH, frustum_report, "BENCH_frustum.json"),
        (PIPELINE_BENCH, pipeline_report, "BENCH_pipeline.json"),
        (BATCH_BENCH, batch_report, "BENCH_batch.json"),
        (STORE_BENCH, store_report, "BENCH_store.json"),
    ]
    for binary, distill, out_name in jobs:
        path = os.path.join(bench_dir, binary)
        if not os.path.isfile(path):
            raise SystemExit("missing bench binary: %s" % path)
        raw = os.path.join(args.out_dir, out_name + ".raw")
        report = distill(run_bench(path, raw, args.min_time))
        os.remove(raw)
        out_path = os.path.join(args.out_dir, out_name)
        with open(out_path, "w") as f:
            json.dump(report, f, indent=2, sort_keys=True)
            f.write("\n")
        print("wrote %s" % out_path)

    passes = passes_report(bench_dir, args.out_dir, args.min_time)
    passes_path = os.path.join(args.out_dir, "BENCH_passes.json")
    with open(passes_path, "w") as f:
        json.dump(passes, f, indent=2, sort_keys=True)
        f.write("\n")
    print("wrote %s" % passes_path)

    metrics = metrics_report(args.build_dir, args.out_dir)
    metrics_path = os.path.join(args.out_dir, "BENCH_metrics.json")
    with open(metrics_path, "w") as f:
        json.dump(metrics, f, indent=2, sort_keys=True)
        f.write("\n")
    print("wrote %s" % metrics_path)

    frustum = json.load(open(os.path.join(args.out_dir,
                                          "BENCH_frustum.json")))
    g = frustum["gate"]
    nongating = "" if g.get("gating", True) else " [NON-GATING capture]"
    print("frustum gate: %sx at %s chains (threshold %sx) -> %s%s" %
          (g["speedup"], g["chains"], g["threshold"],
           "PASS" if g["pass"] else "FAIL", nongating))
    asg = frustum["at_scale_gate"]
    print("at-scale gate: measured %sx at n=%s, extrapolated %sx at "
          "n=%s (threshold %sx) -> %s%s" %
          (asg.get("measured_speedup_at_%s" % AT_SCALE_GATE_ARG),
           AT_SCALE_GATE_ARG,
           asg.get("extrapolated_speedup_at_%s" % AT_SCALE_EXTRAP_ARG),
           AT_SCALE_EXTRAP_ARG, asg["threshold"],
           "PASS" if asg["pass"] else "FAIL", nongating))
    ag = frustum["analytic_gate"]
    print("analytic gate: measured %sx at n=%s (fast engine %sx over "
          "analytic there), extrapolated %sx at n=%s (threshold %sx) "
          "-> %s%s" %
          (ag.get("measured_speedup_at_%s" % AT_SCALE_GATE_ARG),
           AT_SCALE_GATE_ARG,
           ag.get("fast_engine_over_analytic_at_%s" % AT_SCALE_GATE_ARG),
           ag.get("extrapolated_speedup_at_%s" % AT_SCALE_EXTRAP_ARG),
           AT_SCALE_EXTRAP_ARG, ag["threshold"],
           "PASS" if ag["pass"] else "FAIL", nongating))
    rg = frustum["rate_gate"]
    print("rate gate: Howard %sx vs enumeration at N=%s (threshold "
          "%sx) -> %s%s" %
          (rg["speedup"], RATE_GATE_ARG, rg["threshold"],
           "PASS" if rg["pass"] else "FAIL", nongating))

    bg = json.load(open(os.path.join(args.out_dir,
                                     "BENCH_batch.json")))["gate"]
    print("batch gate: %sx at %s threads (threshold %sx, %s CPUs) -> %s" %
          (bg["speedup"], bg["threads"], bg["threshold"], bg["num_cpus"],
           "SKIPPED (num_cpus < %s)" % bg["threads"] if bg["skipped"]
           else ("PASS" if bg["pass"] else "FAIL")))

    store = json.load(open(os.path.join(args.out_dir, "BENCH_store.json")))
    print("store: warm replay %sx over cold fill" % store["warm_speedup"])

    if args.compare:
        compare_reports(args.out_dir, args.compare)


if __name__ == "__main__":
    main()
