#!/usr/bin/env python3
"""Self-test for tools/benchreport.py's --compare paths.

Synthesizes hostile BENCH_*.json fixture pairs -- zero baselines,
skipped gates, None warm_speedup, one-sided keys, non-numeric ratios,
missing CPU counts -- and asserts that every non-comparable metric gets
an explicit note instead of a silent (vacuous) pass, and that genuinely
broken fresh captures fail with a message naming the real defect.

Each check here pins a bug that existed in earlier versions of the
comparator:

  * set-intersection key matching silently dropped arms present on only
    one side;
  * kernel_shares() returned {} when the summed kernel time was zero,
    making the pipeline-share comparison vacuously pass;
  * enforce_gate() printed nothing for skipped gates (whose "pass" flag
    is true by construction) and nothing for gates that passed on a
    --allow-debug (non-gating) capture;
  * a None warm_speedup was coerced to 0.0 and reported as "warm replay
    lost to cold recompute" -- a plausible-sounding lie about a broken
    capture;
  * a zero/missing num_cpus filtered every thread arm out of both batch
    maps, so the batch comparison passed without comparing anything.

Standard library only; pytest-style test_* functions run by a tiny
driver so ctest can invoke this file directly.
"""

import contextlib
import copy
import io
import json
import os
import sys
import tempfile

sys.path.insert(0, os.path.dirname(os.path.abspath(__file__)))
import benchreport


def default_reports():
    """A minimal, mutually consistent fresh/baseline report set that
    compares clean: every gate passes, every ratio matches."""
    gate_common = {"threshold": 1.0, "gating": True, "pass": True}
    frustum = {
        "speedup_by_chains": {"682": 8.0, "65536": 30.0},
        "gate": dict(gate_common, speedup=8.0),
        "at_scale_gate": dict(gate_common, speedup=30.0),
        "analytic_gate": dict(gate_common, speedup=12.0),
        "rate_gate": dict(gate_common, speedup=15.0),
    }
    pipeline = {"kernels": {"loop1": {"real_time_ns": 1000.0},
                            "loop2": {"real_time_ns": 3000.0}}}
    store = {"warm_speedup": 2.0}
    batch = {"speedup_by_threads": {"1": 1.0, "2": 1.8, "4": 3.1, "8": 4.0},
             "gate": dict(gate_common, num_cpus=8, skipped=False,
                          speedup=4.0)}
    metrics = {"counters": {"engine.firings": 42}}
    return {
        "BENCH_frustum.json": frustum,
        "BENCH_pipeline.json": pipeline,
        "BENCH_store.json": store,
        "BENCH_batch.json": batch,
        "BENCH_metrics.json": metrics,
    }


def run_compare(mutate_fresh=None, mutate_base=None):
    """Writes a fixture pair (after optional mutation) and runs
    compare_reports, returning (stdout_text, SystemExit_or_None)."""
    with tempfile.TemporaryDirectory() as tmp:
        fresh_dir = os.path.join(tmp, "fresh")
        base_dir = os.path.join(tmp, "base")
        os.makedirs(fresh_dir)
        os.makedirs(base_dir)
        fresh = default_reports()
        base = copy.deepcopy(fresh)
        if mutate_fresh:
            mutate_fresh(fresh)
        if mutate_base:
            mutate_base(base)
        for d, reports in ((fresh_dir, fresh), (base_dir, base)):
            for name, content in reports.items():
                with open(os.path.join(d, name), "w") as f:
                    json.dump(content, f)
        out = io.StringIO()
        err = None
        with contextlib.redirect_stdout(out):
            try:
                benchreport.compare_reports(fresh_dir, base_dir)
            except SystemExit as e:
                err = e
        return out.getvalue(), err


def test_clean_pair_passes():
    out, err = run_compare()
    assert err is None, "clean fixture pair must compare clean: %s" % err
    assert "no regressions" in out


def test_one_sided_keys_are_noted():
    # An arm present only in the fresh report and another present only
    # in the baseline: both must be NOT COMPARED, loudly, not dropped.
    def fresh(r):
        r["BENCH_frustum.json"]["speedup_by_chains"]["262144"] = 25.0
    def base(r):
        r["BENCH_frustum.json"]["speedup_by_chains"]["4096"] = 11.0
    out, err = run_compare(fresh, base)
    assert err is None, "one-sided keys must not fail the compare: %s" % err
    assert "262144: no baseline entry -- NOT COMPARED" in out
    assert "4096: no fresh entry -- NOT COMPARED" in out


def test_non_numeric_ratio_is_noted_not_crashed():
    def base(r):
        r["BENCH_frustum.json"]["speedup_by_chains"]["682"] = None
    out, err = run_compare(mutate_base=base)
    assert err is None, "a None ratio must not raise: %s" % err
    assert "682: non-numeric ratio" in out
    assert "NOT COMPARED" in out


def test_zero_baseline_ratio_is_noted():
    def base(r):
        r["BENCH_frustum.json"]["speedup_by_chains"]["682"] = 0.0
    out, err = run_compare(mutate_base=base)
    assert err is None
    assert "baseline ratio 0.000 is not comparable -- NOT COMPARED" in out


def test_zero_kernel_total_is_not_a_silent_pass():
    def base(r):
        for v in r["BENCH_pipeline.json"]["kernels"].values():
            v["real_time_ns"] = 0.0
    out, err = run_compare(mutate_base=base)
    assert err is None
    assert "kernel times sum to" in out
    assert "baseline ratios unavailable -- NOT COMPARED" in out


def test_skipped_gate_is_announced():
    # A skipped batch gate has pass=True by construction; the compare
    # must say it was skipped rather than implying it was checked.
    def both(r):
        r["BENCH_batch.json"]["gate"].update(skipped=True, speedup=None,
                                            num_cpus=2)
    out, err = run_compare(both, both)
    assert err is None
    assert "batch gate SKIPPED on this host -- NOT ENFORCED" in out


def test_non_gating_pass_is_announced():
    def fresh(r):
        for g in ("gate", "at_scale_gate", "analytic_gate", "rate_gate"):
            r["BENCH_frustum.json"][g]["gating"] = False
    out, err = run_compare(fresh)
    assert err is None
    assert "NON-GATING (non-release) capture -- not evidence" in out


def test_non_gating_failure_is_not_enforced():
    def fresh(r):
        r["BENCH_frustum.json"]["analytic_gate"].update({"pass": False,
                                                        "gating": False})
    out, err = run_compare(fresh)
    assert err is None, "non-gating failure must not be enforced: %s" % err
    assert "frustum analytic gate FAILED but is marked non-gating" in out


def test_failing_analytic_gate_is_enforced():
    def fresh(r):
        r["BENCH_frustum.json"]["analytic_gate"]["pass"] = False
    out, err = run_compare(fresh)
    assert err is not None, "a failing analytic gate must fail the compare"
    assert "frustum analytic gate failed" in str(err)


def test_none_warm_speedup_names_the_real_defect():
    def fresh(r):
        r["BENCH_store.json"]["warm_speedup"] = None
    out, err = run_compare(fresh)
    assert err is not None, "a broken store capture must fail the compare"
    msg = str(err)
    assert "capture is broken" in msg
    assert "lost to cold recompute" not in msg, \
        "None must not be coerced into a fake 0.0 speedup verdict"


def test_none_baseline_warm_speedup_is_only_noted():
    def base(r):
        r["BENCH_store.json"]["warm_speedup"] = None
    out, err = run_compare(mutate_base=base)
    assert err is None, "a broken *baseline* must not fail the compare: %s" \
        % err
    assert "baseline value None is not numeric -- NOT COMPARED" in out


def test_missing_num_cpus_is_not_a_vacuous_batch_pass():
    def base(r):
        r["BENCH_batch.json"]["gate"]["num_cpus"] = 0
    out, err = run_compare(mutate_base=base)
    assert err is None
    assert "batch speedups: NOT COMPARED" in out
    assert "no thread arm is comparable" in out


def test_real_regression_still_fails():
    # Sanity: the comparator still catches an actual >25% speedup drop.
    def fresh(r):
        r["BENCH_frustum.json"]["speedup_by_chains"]["682"] = 5.0
    out, err = run_compare(fresh)
    assert err is not None, "a 8.0 -> 5.0 speedup drop must fail"
    assert "682" in str(err)


def test_counter_drift_still_fails():
    def fresh(r):
        r["BENCH_metrics.json"]["counters"]["engine.firings"] = 43
    out, err = run_compare(fresh)
    assert err is not None, "counter drift must fail the compare"
    assert "exact match required" in str(err)


def main():
    tests = sorted((name, fn) for name, fn in globals().items()
                   if name.startswith("test_") and callable(fn))
    failed = []
    for name, fn in tests:
        try:
            fn()
            print("PASS %s" % name)
        except AssertionError as e:
            failed.append(name)
            print("FAIL %s: %s" % (name, e))
    if failed:
        raise SystemExit("benchreport selftest failures: %s" %
                         ", ".join(failed))
    print("benchreport selftest: %d tests passed" % len(tests))


if __name__ == "__main__":
    main()
