#!/usr/bin/env python3
"""Integration checks for the sdspd compile service (docs/SERVICE.md).

Run as:  daemontest.py SDSPC SDSPD

Four suites, each against a freshly started daemon on a scratch socket:

  equality      a matrix of invocations (kernels, emit modes, stdin
                source, diagnostics, file outputs) run locally and
                through `sdspc --remote` must match byte for byte on
                stdout, stderr, and exit code;
  compute-once  two concurrent clients compiling the same kernel share
                the daemon's store: the shutdown metrics report
                cache hits, i.e. the second request replayed the
                first's artifacts instead of recomputing;
  accept-fault  with daemon:accept:fail@1 armed, the first client gets
                a transport failure (exit 2) and a diagnostic, the
                second is served normally, and the daemon's drain
                reports exactly one drop;
  persistence   a --store-dir daemon is stopped and restarted: the
                second incarnation answers every cacheable pass from
                the disk store (store.disk.hits > 0, writes == 0) with
                byte-identical client output.

Exits nonzero with a diagnostic on the first violated invariant.
"""

import json
import os
import shutil
import signal
import subprocess
import sys
import tempfile
import threading


def fail(msg):
    sys.stderr.write("daemontest: FAIL: %s\n" % msg)
    sys.exit(1)


class Daemon:
    """One sdspd on a scratch socket; a context manager that always
    tears the process down."""

    def __init__(self, sdspd, sock, *extra):
        self.proc = subprocess.Popen(
            [sdspd, "--socket=" + sock, *extra],
            stdout=subprocess.PIPE,
            stderr=subprocess.PIPE,
            text=True,
        )
        self.sock = sock
        # The readiness line is the connect barrier: the socket is bound
        # and listening before it is printed.
        line = self.proc.stdout.readline()
        if "listening on" not in line:
            self.proc.kill()
            fail("daemon never became ready (got %r)" % line)

    def stop(self, expect_drops=0, sig=signal.SIGTERM):
        if self.proc.poll() is None and sig is not None:
            self.proc.send_signal(sig)
        try:
            _, err = self.proc.communicate(timeout=60)
        except subprocess.TimeoutExpired:
            self.proc.kill()
            fail("daemon did not drain within 60s")
        if self.proc.returncode != 0:
            fail("daemon exited %d: %s" % (self.proc.returncode, err))
        if "(%d dropped)" % expect_drops not in err:
            fail("daemon drain line %r does not report %d drops"
                 % (err.strip(), expect_drops))

    def __enter__(self):
        return self

    def __exit__(self, *exc):
        if self.proc.poll() is None:
            self.proc.kill()
            self.proc.wait()


def run(cmd, stdin_text=None, cwd=None):
    p = subprocess.run(cmd, input=stdin_text, capture_output=True,
                       text=True, timeout=120, cwd=cwd)
    return p.returncode, p.stdout, p.stderr


def check_equality(sdspc, sdspd, scratch):
    matrix = [
        (["-k", "loop7", "--verify"], None),
        (["-k", "l2", "--emit=timeline"], None),
        (["-k", "loop3", "--emit=c", "--opt"], None),
        (["-k", "loop5", "--emit=rate", "--rate-engine=enumerate"], None),
        (["-k", "loop9", "--scp=4", "--pipelines=2"], None),
        (["-k", "loop1", "--run=4", "--seed=7"], None),
        (["-k", "nosuchkernel"], None),          # Diagnostics, exit 1.
        (["--emit=rate", "-"],                    # Source on stdin.
         "do i { y = x[i] + x[i-1]; out y; }"),
        (["--badflag"], None),                    # Usage error, exit 1.
    ]
    sock = os.path.join(scratch, "eq.sock")
    with Daemon(sdspd, sock) as d:
        for args, stdin_text in matrix:
            lrc, lout, lerr = run([sdspc, *args], stdin_text)
            rrc, rout, rerr = run([sdspc, "--remote=" + sock, *args],
                                  stdin_text)
            if (lrc, lout, lerr) != (rrc, rout, rerr):
                fail("remote output diverges for %s:\n"
                     "  local  exit=%d\n  remote exit=%d\n"
                     "  stdout diff: %r vs %r\n  stderr diff: %r vs %r"
                     % (args, lrc, rrc, lout[:200], rout[:200],
                        lerr[:200], rerr[:200]))

        # File outputs compose with --remote: the daemon captures them
        # server-side and the client writes them locally.
        trace = os.path.join(scratch, "remote_trace.json")
        rc, _, err = run([sdspc, "--remote=" + sock, "-k", "loop7",
                          "--trace=" + trace])
        if rc != 0:
            fail("remote --trace run exited %d: %s" % (rc, err))
        with open(trace) as f:
            if "traceEvents" not in json.load(f):
                fail("remote --trace did not produce a trace capture")

        # Host-only flags are rejected per request, not silently obeyed.
        rc, _, err = run([sdspc, "--remote=" + sock, "-k", "loop1",
                          "--store-dir=" + scratch])
        if rc != 1 or "daemon owns the store" not in err:
            fail("remote --store-dir was not rejected (exit %d: %s)"
                 % (rc, err))
        d.stop()


def check_compute_once(sdspc, sdspd, scratch):
    sock = os.path.join(scratch, "co.sock")
    metrics = os.path.join(scratch, "co_metrics.json")
    with Daemon(sdspd, sock, "-j", "2",
                "--metrics-json=" + metrics) as d:
        results = [None, None]

        def client(i):
            results[i] = run([sdspc, "--remote=" + sock, "-k", "loop7",
                              "--verify"])

        threads = [threading.Thread(target=client, args=(i,))
                   for i in range(2)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        for i, (rc, _, err) in enumerate(results):
            if rc != 0:
                fail("concurrent client %d exited %d: %s" % (i, rc, err))
        if results[0] != results[1]:
            fail("concurrent clients saw different outputs")
        d.stop()
    with open(metrics) as f:
        counters = json.load(f)["counters"]
    if counters.get("daemon.requests") != 2:
        fail("expected 2 requests, metrics say %s"
             % counters.get("daemon.requests"))
    # The second request replayed the first's artifacts from the shared
    # memory tier instead of recomputing.
    if counters.get("cache.hits", 0) < 1:
        fail("no cache hits across concurrent requests: %s" % counters)


def check_accept_fault(sdspc, sdspd, scratch):
    sock = os.path.join(scratch, "af.sock")
    with Daemon(sdspd, sock, "--fault-spec=daemon:accept:fail@1",
                "--max-requests=2") as d:
        rc1, _, err1 = run([sdspc, "--remote=" + sock, "-k", "l1",
                            "--emit=rate"])
        if rc1 != 2:
            fail("dropped client exited %d, want 2 (%s)" % (rc1, err1))
        if "sdspc: remote:" not in err1:
            fail("dropped client printed no transport diagnostic: %r"
                 % err1)
        rc2, out2, err2 = run([sdspc, "--remote=" + sock, "-k", "l1",
                               "--emit=rate"])
        if rc2 != 0:
            fail("post-fault client exited %d: %s" % (rc2, err2))
        if not out2:
            fail("post-fault client produced no output")
        # --max-requests=2 already stops the daemon; just reap it.
        d.stop(expect_drops=1, sig=None)


def check_persistence(sdspc, sdspd, scratch):
    store = os.path.join(scratch, "store")
    sock = os.path.join(scratch, "ps.sock")
    m1 = os.path.join(scratch, "ps_m1.json")
    m2 = os.path.join(scratch, "ps_m2.json")
    args = ["-k", "loop7", "--verify"]

    with Daemon(sdspd, sock, "--store-dir=" + store,
                "--metrics-json=" + m1) as d:
        rc, out_cold, err_cold = run([sdspc, "--remote=" + sock, *args])
        if rc != 0:
            fail("cold store run exited %d: %s" % (rc, err_cold))
        d.stop()
    with open(m1) as f:
        c1 = json.load(f)["counters"]
    if c1.get("store.disk.writes", 0) < 1:
        fail("cold daemon wrote nothing to the store: %s" % c1)

    # The restarted daemon has an empty memory tier; only the disk
    # store can answer without recomputing.
    with Daemon(sdspd, sock, "--store-dir=" + store,
                "--metrics-json=" + m2) as d:
        rc, out_warm, err_warm = run([sdspc, "--remote=" + sock, *args])
        if rc != 0:
            fail("warm store run exited %d: %s" % (rc, err_warm))
        d.stop()
    if (out_warm, err_warm) != (out_cold, err_cold):
        fail("warm-restart output differs from cold output")
    with open(m2) as f:
        c2 = json.load(f)["counters"]
    if c2.get("store.disk.hits", 0) < 1:
        fail("restarted daemon served nothing from disk: %s" % c2)
    if c2.get("store.disk.writes", 0) != 0:
        fail("restarted daemon recomputed and rewrote objects: %s" % c2)
    if c2.get("store.disk.corrupt", 0) != 0:
        fail("restarted daemon rejected objects as corrupt: %s" % c2)


def main():
    if len(sys.argv) != 3:
        fail("usage: daemontest.py SDSPC SDSPD")
    sdspc, sdspd = sys.argv[1], sys.argv[2]
    # Sockets live in a short mkdtemp path: sun_path caps out around
    # 108 bytes, which deep build trees can exceed.
    scratch = tempfile.mkdtemp(prefix="sdspd-test-")
    try:
        check_equality(sdspc, sdspd, scratch)
        check_compute_once(sdspc, sdspd, scratch)
        check_accept_fault(sdspc, sdspd, scratch)
        check_persistence(sdspc, sdspd, scratch)
    finally:
        shutil.rmtree(scratch, ignore_errors=True)
    print("daemontest: all checks passed")


if __name__ == "__main__":
    main()
