//===- tools/sdspc.cpp - The SDSP loop compiler driver ---------------------===//
//
// Part of the SDSP project: a reproduction of Gao, Wong & Ning,
// "A Timed Petri-Net Model for Fine-Grain Loop Scheduling", PLDI 1991.
//
//===----------------------------------------------------------------------===//
//
// sdspc: compile a loop (file, stdin, or bundled kernel) through a
// compilation session (core/Session.h) and emit the requested artifact.
//
//   sdspc [options] [file.loop | -k kernel-id | -]
//
//   --emit=schedule      prologue + kernel table (default)
//   --emit=timeline      schedule plus an ASCII Gantt view
//   --emit=rate          rate analysis only
//   --emit=program       register-transfer listing (codegen)
//   --emit=c             self-contained C99 function (software-
//                        pipelined structure, registers = storage)
//   --emit=dot-dataflow  Graphviz of the dataflow graph
//   --emit=dot-pn        Graphviz of the SDSP-PN
//   --emit=dot-behavior  Graphviz of the behavior graph (frustum shaded)
//   --emit=storage       acknowledgement/storage report
//   --emit=pnml          canonical PNML of the SDSP-PN
//                        (docs/INTEROP.md)
//   --emit=pnml-behavior canonical PNML of the behavior graph's
//                        occurrence net (ideal machine)
//   --emit=pnml-frustum  same, restricted to the cyclic frustum window
//   --pnml=FILE|-        import an external PNML net instead of
//                        compiling a loop, classify it (marked graph /
//                        live / safe / persistent / strongly connected
//                        / consistent), and emit per --emit=classify
//                        (default) | rate | frustum | dot-pn | pnml |
//                        pnml-behavior | pnml-frustum; --verify
//                        re-checks the classification, round-trip
//                        byte-stability, and the frustum rate
//   --opt                run constant folding + CSE + DCE first
//   --capacity=N         buffer capacity per arc (default 1)
//   --unroll=U           unroll the loop body U times first
//   --scp=L              schedule onto clean L-stage pipeline(s)
//   --pipelines=K        number of clean pipelines (with --scp)
//   --optimize-storage   run the Section 6 minimizer first
//   --budget=N           frustum search budget in time steps
//                        (0 = the Thm 4.1.1-4.2.2 theory bound, default)
//   --engine=fast|reference
//                        frustum detector: the incremental engine
//                        (default) or the retained naive oracle
//   --rate-engine=auto|howard|enumerate
//                        max-cycle-ratio algorithm for the rate pass:
//                        auto (enumeration at paper scale, Howard's
//                        policy iteration above 64 vertices, default),
//                        howard (always policy iteration), enumerate
//                        (always the Johnson-cycle oracle)
//   --deadline-ms=N      wall-clock deadline (per job in batch mode);
//                        an expired run reports DeadlineExceeded
//   --fault-spec=SPEC    arm deterministic fault injection
//                        (docs/ROBUSTNESS.md; overrides the
//                        SDSP_FAULT_SPEC environment variable), e.g.
//                        pass:frustum:fail@2,cache:publish:delay=50ms
//   --retries=N          batch retries per job for TransientFault
//                        failures (default 2)
//   --keep-going         keep compiling after a batch job fails
//                        (default); --fail-fast cancels the rest of
//                        the batch on the first failure instead
//   --store-dir=DIR      persist pass artifacts in a content-addressed
//                        store under DIR (docs/SERVICE.md); later runs
//                        serve cacheable passes from disk.  The
//                        SDSP_STORE_DIR environment variable is the
//                        flag's default.
//   --store-bytes=N      disk-store byte budget (LRU eviction; 0 =
//                        unbounded, default)
//   --remote=SOCKET      ship this invocation to the sdspd daemon
//                        listening on the Unix socket; stdout, stderr
//                        and the exit code are byte-identical to the
//                        same invocation run locally
//   --timings            print the per-pass wall-time/cache-hit table
//                        (PipelineTrace) to stderr before exiting
//                        (with --batch: the merged batch trace)
//   --timings-json=FILE  write the PipelineTrace JSON
//                        ("sdsp-pipeline-trace-v1") to FILE
//   --trace=FILE         write a Chrome trace-event / Perfetto JSON
//                        capture: one track per session, a span per
//                        pass, instants for cache publish/abandon and
//                        frustum repeats (docs/OBSERVABILITY.md)
//   --metrics-json=FILE  write the "sdsp-metrics-v1" counter/gauge
//                        report (engine, state table, cache, executor,
//                        disk store); counters are byte-identical
//                        across -j
//   --batch=DIR          compile every *.loop file under DIR (sorted,
//                        non-recursive), one session per file, sharing
//                        one cross-session artifact cache
//   --batch-kernels      add every bundled kernel to the batch
//   -j N, --jobs=N       batch worker threads (default 1); the output
//                        is byte-identical for any N
//   --batch-json=FILE    write the deterministic batch report
//                        ("sdsp-batch-v1") to FILE
//   --verify             re-check net properties and cross-check the
//                        frustum rate against the analytic cycle ratio
//   --run=N              execute N iterations on the VM with random
//                        inputs (seeded by --seed, default 1) and print
//                        the outputs
//   --seed=S             input seed for --run
//
// Exit codes (docs/ERRORS.md):
//   0  success
//   1  input diagnostics (bad source, option, graph, or net)
//   2  resource or budget exhaustion, cancellation, deadline expiry,
//      an injected transient fault, or a remote-transport failure
//   3  internal invariant failure (a compiler bug)
//
//===----------------------------------------------------------------------===//

#include "tools/DriverCore.h"

#include <fstream>
#include <iostream>
#include <sstream>

#ifndef _WIN32
#include "support/Json.h"
#include "support/Wire.h"

#include <csignal>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>
#endif

using namespace sdsp;

namespace {

#ifndef _WIN32

/// Ships the invocation to an sdspd (docs/SERVICE.md): one frame out
/// carrying argv (minus --remote) and any stdin the compile would read,
/// one frame back carrying exit/stdout/stderr plus file outputs, which
/// are written client-side so `--remote` composes with --trace,
/// --metrics-json and friends.
int runRemote(const driver::Options &Opts,
              const std::vector<std::string> &Args) {
  auto Fail = [](const std::string &Msg) {
    std::cerr << "sdspc: remote: " << Msg << "\n";
    return 2;
  };

  json::Value Req = json::Value::object();
  Req.set("schema", json::Value::string("sdsp-request-v1"));
  json::Value Argv = json::Value::array();
  for (const std::string &A : Args)
    if (A.compare(0, 9, "--remote=") != 0)
      Argv.push(json::Value::string(A));
  Req.set("argv", std::move(Argv));
  // A compile that would read stdin locally reads it here and ships the
  // bytes — the daemon has no access to this process's stdin.  In PNML
  // mode only --pnml=- reads stdin.
  if (Opts.pnmlMode()
          ? Opts.PnmlPath == "-"
          : !Opts.batchMode() && Opts.KernelId.empty() &&
                (Opts.InputPath.empty() || Opts.InputPath == "-")) {
    std::ostringstream SS;
    SS << std::cin.rdbuf();
    Req.set("stdin", json::Value::string(SS.str()));
  }

  // A daemon that drops the connection (shutdown race, injected accept
  // fault) must surface as a transport diagnostic, not a SIGPIPE death.
  std::signal(SIGPIPE, SIG_IGN);
  int Fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (Fd < 0)
    return Fail("cannot create socket");
  sockaddr_un Addr{};
  Addr.sun_family = AF_UNIX;
  if (Opts.RemoteSocket.size() >= sizeof(Addr.sun_path)) {
    ::close(Fd);
    return Fail("socket path too long: '" + Opts.RemoteSocket + "'");
  }
  std::snprintf(Addr.sun_path, sizeof(Addr.sun_path), "%s",
                Opts.RemoteSocket.c_str());
  if (::connect(Fd, reinterpret_cast<sockaddr *>(&Addr), sizeof(Addr)) <
      0) {
    ::close(Fd);
    return Fail("cannot connect to '" + Opts.RemoteSocket + "'");
  }

  Status St = writeFrame(Fd, json::serialize(Req));
  if (!St) {
    ::close(Fd);
    return Fail(St.str());
  }
  std::string Payload;
  bool CleanClose = false;
  St = readFrame(Fd, Payload, CleanClose);
  ::close(Fd);
  if (!St)
    return Fail(CleanClose ? "daemon closed the connection (dropped by "
                             "an injected accept fault?)"
                           : St.str());

  json::Value Resp;
  std::string Error;
  if (!json::parse(Payload, Resp, Error))
    return Fail("malformed response: " + Error);
  const json::Value *Exit = Resp.find("exit");
  const json::Value *Out = Resp.find("stdout");
  const json::Value *Err = Resp.find("stderr");
  if (!Exit || !Exit->isInt() || !Out || !Out->isString() || !Err ||
      !Err->isString())
    return Fail("response is missing exit/stdout/stderr");
  if (const json::Value *Files = Resp.find("files");
      Files && Files->isObject())
    for (const auto &[Path, Content] : Files->members()) {
      std::ofstream File(Path);
      if (!File || !(File << Content.asString()))
        return Fail("cannot write '" + Path + "'");
    }
  std::cout << Out->asString();
  std::cerr << Err->asString();
  return static_cast<int>(Exit->asInt());
}

#endif // !_WIN32

} // namespace

int main(int argc, char **argv) {
  std::vector<std::string> Args(argv + 1, argv + argc);
  driver::Options Opts;
  switch (driver::parseArgs(Args, Opts, std::cout, std::cerr)) {
  case driver::ParseResult::Help:
    return 0;
  case driver::ParseResult::Error:
    driver::printUsage(std::cerr);
    return 1;
  case driver::ParseResult::Ok:
    break;
  }
  if (!Opts.RemoteSocket.empty()) {
#ifndef _WIN32
    return runRemote(Opts, Args);
#else
    std::cerr << "sdspc: --remote is not supported on this platform\n";
    return 1;
#endif
  }
  driver::StoreStack Stack;
  if (!driver::makeStoreStack(Opts, Stack, std::cerr))
    return 1;
  driver::Env Env;
  Env.In = &std::cin;
  Env.Store = Stack.store();
  Env.Memory = Stack.Memory.get();
  Env.Disk = Stack.Disk.get();
  return driver::run(Opts, Env, std::cout, std::cerr);
}
