//===- tools/sdspc.cpp - The SDSP loop compiler driver ---------------------===//
//
// Part of the SDSP project: a reproduction of Gao, Wong & Ning,
// "A Timed Petri-Net Model for Fine-Grain Loop Scheduling", PLDI 1991.
//
//===----------------------------------------------------------------------===//
//
// sdspc: compile a loop (file, stdin, or bundled kernel) through the
// paper's pipeline and emit the requested artifact.
//
//   sdspc [options] [file.loop | -k kernel-id | -]
//
//   --emit=schedule      prologue + kernel table (default)
//   --emit=timeline      schedule plus an ASCII Gantt view
//   --emit=rate          rate analysis only
//   --emit=program       register-transfer listing (codegen)
//   --emit=c             self-contained C99 function (software-
//                        pipelined structure, registers = storage)
//   --emit=dot-dataflow  Graphviz of the dataflow graph
//   --emit=dot-pn        Graphviz of the SDSP-PN
//   --emit=dot-behavior  Graphviz of the behavior graph (frustum shaded)
//   --emit=storage       acknowledgement/storage report
//   --opt                run constant folding + CSE + DCE first
//   --capacity=N         buffer capacity per arc (default 1)
//   --unroll=U           unroll the loop body U times first
//   --scp=L              schedule onto clean L-stage pipeline(s)
//   --pipelines=K        number of clean pipelines (with --scp)
//   --optimize-storage   run the Section 6 minimizer first
//   --run=N              execute N iterations on the VM with random
//                        inputs (seeded by --seed, default 1) and print
//                        the outputs
//   --seed=S             input seed for --run
//
//===----------------------------------------------------------------------===//

#include "codegen/CEmitter.h"
#include "codegen/Codegen.h"
#include "codegen/Vm.h"
#include "core/Frustum.h"
#include "core/RateAnalysis.h"
#include "core/ScheduleDerivation.h"
#include "core/ScpModel.h"
#include "core/StorageOptimizer.h"
#include "dataflow/Transforms.h"
#include "dataflow/Unroll.h"
#include "livermore/Livermore.h"
#include "loopir/Lowering.h"
#include "petri/BehaviorGraph.h"
#include "support/Random.h"

#include <cstring>
#include <fstream>
#include <iostream>
#include <sstream>

using namespace sdsp;

namespace {

struct Options {
  std::string Emit = "schedule";
  bool Optimize = false;
  uint32_t Capacity = 1;
  uint32_t Unroll = 1;
  uint32_t ScpDepth = 0;
  uint32_t Pipelines = 1;
  bool OptimizeStorage = false;
  uint64_t RunIterations = 0;
  uint64_t Seed = 1;
  std::string InputPath;
  std::string KernelId;
};

void printUsage(std::ostream &OS) {
  OS << "usage: sdspc [options] [file.loop | -k kernel | -]\n"
        "  --emit=schedule|timeline|rate|program|c|dot-dataflow|dot-pn|"
        "dot-behavior|storage\n"
        "  --opt --capacity=N --unroll=U --scp=L --pipelines=K\n"
        "  --optimize-storage --run=N --seed=S\n"
        "  -k <id>   use a bundled kernel (l1 l2 loop1 loop3 loop5 "
        "loop7 loop9 loop9lcd loop12)\n";
}

bool parseArgs(int argc, char **argv, Options &Opts) {
  for (int I = 1; I < argc; ++I) {
    std::string Arg = argv[I];
    auto Value = [&](const char *Prefix) -> const char * {
      size_t Len = std::strlen(Prefix);
      return Arg.compare(0, Len, Prefix) == 0 ? Arg.c_str() + Len
                                              : nullptr;
    };
    if (const char *V = Value("--emit=")) {
      Opts.Emit = V;
    } else if (const char *V = Value("--capacity=")) {
      Opts.Capacity = static_cast<uint32_t>(std::atoi(V));
    } else if (const char *V = Value("--unroll=")) {
      Opts.Unroll = static_cast<uint32_t>(std::atoi(V));
    } else if (const char *V = Value("--scp=")) {
      Opts.ScpDepth = static_cast<uint32_t>(std::atoi(V));
    } else if (const char *V = Value("--pipelines=")) {
      Opts.Pipelines = static_cast<uint32_t>(std::atoi(V));
    } else if (Arg == "--opt") {
      Opts.Optimize = true;
    } else if (Arg == "--optimize-storage") {
      Opts.OptimizeStorage = true;
    } else if (const char *V = Value("--run=")) {
      Opts.RunIterations = static_cast<uint64_t>(std::atoll(V));
    } else if (const char *V = Value("--seed=")) {
      Opts.Seed = static_cast<uint64_t>(std::atoll(V));
    } else if (Arg == "-k") {
      if (++I >= argc) {
        std::cerr << "sdspc: -k needs a kernel id\n";
        return false;
      }
      Opts.KernelId = argv[I];
    } else if (Arg == "--help" || Arg == "-h") {
      printUsage(std::cout);
      std::exit(0);
    } else if (!Arg.empty() && Arg[0] == '-' && Arg != "-") {
      std::cerr << "sdspc: unknown option '" << Arg << "'\n";
      return false;
    } else {
      Opts.InputPath = Arg;
    }
  }
  return true;
}

std::optional<std::string> readSource(const Options &Opts) {
  if (!Opts.KernelId.empty()) {
    const LivermoreKernel *K = findKernel(Opts.KernelId);
    if (!K) {
      std::cerr << "sdspc: unknown kernel '" << Opts.KernelId << "'\n";
      return std::nullopt;
    }
    return K->Source;
  }
  if (Opts.InputPath.empty() || Opts.InputPath == "-") {
    std::ostringstream SS;
    SS << std::cin.rdbuf();
    return SS.str();
  }
  std::ifstream File(Opts.InputPath);
  if (!File) {
    std::cerr << "sdspc: cannot open '" << Opts.InputPath << "'\n";
    return std::nullopt;
  }
  std::ostringstream SS;
  SS << File.rdbuf();
  return SS.str();
}

int run(const Options &Opts) {
  std::optional<std::string> Source = readSource(Opts);
  if (!Source)
    return 1;

  DiagnosticEngine Diags;
  std::optional<DataflowGraph> G = compileLoop(*Source, Diags);
  if (!G) {
    Diags.print(std::cerr);
    return 1;
  }

  if (Opts.Optimize) {
    TransformStats Stats;
    G = optimize(*G, Stats);
    if (Stats.changedAnything())
      std::cerr << "opt: folded " << Stats.ConstantsFolded << ", merged "
                << Stats.SubexpressionsMerged << ", removed "
                << Stats.DeadNodesRemoved << " (nodes "
                << Stats.NodesBefore << " -> " << Stats.NodesAfter
                << ")\n";
  }
  if (Opts.Unroll > 1)
    G = unrollLoop(*G, Opts.Unroll);

  if (Opts.Emit == "dot-dataflow") {
    G->printDot(std::cout, "dataflow");
    return 0;
  }

  Sdsp S = Sdsp::standard(*G, Opts.Capacity);
  if (Opts.OptimizeStorage) {
    StorageOptResult R = minimizeStorage(S);
    std::cerr << "storage: " << R.StorageBefore << " -> "
              << R.StorageAfter << " locations (rate "
              << R.OptimalRate << ")\n";
    S = std::move(R.Optimized);
  }
  SdspPn Pn = buildSdspPn(S);

  if (Opts.Emit == "storage") {
    std::cout << "loop body: " << S.loopBodySize()
              << " operations\nstorage: " << S.storageLocations()
              << " locations\n";
    const DataflowGraph &Graph = S.graph();
    for (const Sdsp::Ack &A : S.acks()) {
      std::cout << "  ack " << Graph.node(Graph.arc(A.Path.back()).To).Name
                << " -> "
                << Graph.node(Graph.arc(A.Path.front()).From).Name
                << " covering";
      for (ArcId Arc : A.Path)
        std::cout << " [" << Graph.node(Graph.arc(Arc).From).Name << "->"
                  << Graph.node(Graph.arc(Arc).To).Name << "]";
      std::cout << " slots=" << A.Slots << "\n";
    }
    return 0;
  }
  if (Opts.Emit == "dot-pn") {
    Pn.Net.printDot(std::cout, "sdsp_pn");
    return 0;
  }
  if (Opts.Emit == "rate") {
    RateReport R = analyzeRate(Pn);
    std::cout << "operations:        " << Pn.Net.numTransitions() << "\n"
              << "cycle time alpha*: " << R.CycleTime << "\n"
              << "optimal rate:      " << R.OptimalRate
              << " iterations/cycle\n"
              << "critical ops:      ";
    for (TransitionId T : R.CriticalTransitions)
      std::cout << Pn.Net.transition(T).Name << " ";
    std::cout << "\ncritical cycles:   " << R.NumCriticalCycles << "\n";
    return 0;
  }

  // Everything below needs a frustum.  Pick the machine model.
  std::optional<FrustumInfo> F;
  std::unique_ptr<FifoPolicy> Policy;
  std::optional<ScpPn> Scp;
  if (Opts.ScpDepth > 0) {
    Scp = buildScpPn(Pn, Opts.ScpDepth, Opts.Pipelines);
    Policy = Scp->makeFifoPolicy();
    F = detectFrustum(Scp->Net, Policy.get());
  } else {
    F = detectFrustum(Pn.Net);
  }
  if (!F) {
    std::cerr << "sdspc: no cyclic frustum (dead or diverging net)\n";
    return 1;
  }

  if (Opts.Emit == "dot-behavior") {
    const PetriNet &Net = Scp ? Scp->Net : Pn.Net;
    if (Policy)
      Policy->reset();
    EarliestFiringEngine Engine(Net, Policy.get());
    BehaviorGraph BG(Net);
    while (Engine.now() < F->RepeatTime)
      BG.recordStep(Engine.fireAndAdvance());
    BG.printDot(std::cout, "behavior", F->StartTime, F->RepeatTime);
    return 0;
  }

  if (Scp) {
    // Schedules on the SCP model: report the measured pattern.
    std::cout << "SCP machine, l = " << Opts.ScpDepth << ": frustum ["
              << F->StartTime << ", " << F->RepeatTime << "), rate "
              << F->computationRate(Scp->SdspTransitions.front())
              << ", usage " << processorUsage(*Scp, *F) << "\n";
    if (Opts.Emit != "schedule")
      std::cerr << "sdspc: --scp supports --emit=schedule only\n";
    std::vector<std::string> Names;
    for (TransitionId T : Scp->Net.transitionIds())
      Names.push_back(Scp->Net.transition(T).Name);
    // Print the issue slots of SDSP transitions per kernel cycle.
    for (TimeStep T = F->StartTime; T < F->RepeatTime; ++T) {
      std::cout << "  t+" << (T - F->StartTime) << ":";
      for (const StepRecord &Rec : F->Trace)
        if (Rec.Time == T)
          for (TransitionId Fired : Rec.Fired)
            if (Scp->IsSdspTransition[Fired.index()])
              std::cout << " " << Names[Fired.index()];
      std::cout << "\n";
    }
    return 0;
  }

  SoftwarePipelineSchedule Sched = deriveSchedule(Pn, *F);
  std::string Error;
  if (!validateSchedule(S, Pn, Sched, 64, &Error)) {
    std::cerr << "sdspc: internal error, invalid schedule: " << Error
              << "\n";
    return 1;
  }

  if (Opts.Emit == "schedule" || Opts.Emit == "timeline") {
    std::vector<std::string> Names;
    std::vector<uint32_t> Taus;
    for (TransitionId T : Pn.Net.transitionIds()) {
      Names.push_back(Pn.Net.transition(T).Name);
      Taus.push_back(Pn.Net.transition(T).ExecTime);
    }
    Sched.print(std::cout, Names);
    if (Opts.Emit == "timeline") {
      std::cout << "\n";
      Sched.printTimeline(std::cout, Names, Taus,
                          Sched.prologueEnd() + 4 * Sched.kernelLength());
    }
  } else if (Opts.Emit == "c") {
    LoopProgram Program = generateLoopProgram(S, Pn, Sched);
    CEmission E = emitC(Program, "sdsp_kernel");
    std::cout << E.Source;
  } else if (Opts.Emit == "program" || Opts.RunIterations > 0) {
    LoopProgram Program = generateLoopProgram(S, Pn, Sched);
    if (Opts.Emit == "program")
      Program.print(std::cout);
    if (Opts.RunIterations > 0) {
      // Random input streams, deterministic per seed.
      Rng R(Opts.Seed);
      StreamMap In;
      for (NodeId N : G->nodeIds())
        if (G->node(N).Kind == OpKind::Input) {
          std::vector<double> V(Opts.RunIterations);
          for (double &X : V)
            X = R.uniform() * 2.0 - 1.0;
          In[G->node(N).Name] = V;
        }
      VmResult Result =
          executeLoopProgram(Program, In, Opts.RunIterations);
      std::cout << "executed " << Opts.RunIterations << " iterations in "
                << Result.Cycles << " cycles\n";
      for (const auto &[Name, Values] : Result.Outputs) {
        std::cout << Name << ":";
        for (double V : Values)
          std::cout << " " << V;
        std::cout << "\n";
      }
    }
  } else {
    std::cerr << "sdspc: unknown --emit mode '" << Opts.Emit << "'\n";
    return 1;
  }
  return 0;
}

} // namespace

int main(int argc, char **argv) {
  Options Opts;
  if (!parseArgs(argc, argv, Opts)) {
    printUsage(std::cerr);
    return 1;
  }
  return run(Opts);
}
