//===- tools/sdspd.cpp - The SDSP compile service daemon -------------------===//
//
// Part of the SDSP project: a reproduction of Gao, Wong & Ning,
// "A Timed Petri-Net Model for Fine-Grain Loop Scheduling", PLDI 1991.
//
//===----------------------------------------------------------------------===//
//
// sdspd: a long-running compile service over a Unix-domain socket
// (docs/SERVICE.md).  Each connection carries one length-prefixed JSON
// compile request — an sdspc argv plus optional stdin bytes — and gets
// back one frame with the exit code, captured stdout/stderr, and any
// file outputs the invocation produced.  Requests dispatch onto a
// fixed-size Executor and share one artifact store for the daemon's
// whole lifetime: a memory tier always, plus the persistent
// content-addressed disk tier when --store-dir is given, so a restarted
// daemon serves cacheable passes from disk.
//
//   sdspd --socket=PATH [options]
//
//   --socket=PATH        Unix-domain socket to listen on (required);
//                        an existing file at PATH is replaced
//   --store-dir=DIR      persistent artifact store directory
//                        (SDSP_STORE_DIR is the default)
//   --store-bytes=N      disk-store byte budget (0 = unbounded)
//   -j N, --jobs=N       concurrent requests (default 1)
//   --deadline-ms=N      default per-request deadline, applied when the
//                        request itself carries none (0 = none)
//   --max-requests=N     exit after accepting N connections (tests)
//   --fault-spec=SPEC    daemon-scoped fault injection; daemon:accept
//                        drops the matching connection, everything else
//                        flows into the requests (docs/ROBUSTNESS.md)
//   --trace=FILE         write a Chrome trace-event capture at exit:
//                        one track per request with a "request" span
//   --metrics-json=FILE  write the "sdsp-metrics-v1" report at exit
//                        (process-lifetime counters, store tiers
//                        included)
//
// SIGTERM / SIGINT drain gracefully: the listener closes, in-flight
// requests run to completion and answer their clients, then state is
// flushed and the daemon exits 0.
//
// Exit codes: 0 clean shutdown, 1 bad invocation or socket failure.
//
//===----------------------------------------------------------------------===//

#ifndef _WIN32

#include "tools/DriverCore.h"

#include "core/Executor.h"
#include "support/FaultInjection.h"
#include "support/Json.h"
#include "support/Metrics.h"
#include "support/Trace.h"
#include "support/Wire.h"

#include <atomic>
#include <cerrno>
#include <csignal>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <iostream>
#include <poll.h>
#include <sstream>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

using namespace sdsp;

namespace {

struct DaemonOptions {
  std::string SocketPath;
  std::string StoreDir;
  uint64_t StoreBytes = 0;
  uint32_t Jobs = 1;
  uint64_t DefaultDeadlineMillis = 0;
  uint64_t MaxRequests = 0; ///< 0 = unlimited.
  std::string FaultSpec;
  std::string TracePath;
  std::string MetricsJsonPath;
};

void printUsage(std::ostream &OS) {
  OS << "usage: sdspd --socket=PATH [options]\n"
        "  --store-dir=DIR --store-bytes=N\n"
        "  -j N, --jobs=N --deadline-ms=N --max-requests=N\n"
        "  --fault-spec=SPEC --trace=FILE --metrics-json=FILE\n";
}

bool parseUint64(const std::string &V, const char *Flag, uint64_t &Out) {
  if (V.empty() || V.find_first_not_of("0123456789") != std::string::npos) {
    std::cerr << "sdspd: invalid value '" << V << "' for " << Flag
              << " (expected a non-negative integer)\n";
    return false;
  }
  errno = 0;
  Out = std::strtoull(V.c_str(), nullptr, 10);
  if (errno == ERANGE) {
    std::cerr << "sdspd: value '" << V << "' for " << Flag
              << " is out of range\n";
    return false;
  }
  return true;
}

bool parseDaemonArgs(int argc, char **argv, DaemonOptions &Opts) {
  for (int I = 1; I < argc; ++I) {
    std::string Arg = argv[I];
    auto Value = [&](const char *Prefix) -> const char * {
      size_t Len = std::strlen(Prefix);
      return Arg.compare(0, Len, Prefix) == 0 ? Arg.c_str() + Len
                                              : nullptr;
    };
    if (const char *V = Value("--socket=")) {
      Opts.SocketPath = V;
    } else if (const char *V = Value("--store-dir=")) {
      Opts.StoreDir = V;
    } else if (const char *V = Value("--store-bytes=")) {
      if (!parseUint64(V, "--store-bytes", Opts.StoreBytes))
        return false;
    } else if (const char *V = Value("--deadline-ms=")) {
      if (!parseUint64(V, "--deadline-ms", Opts.DefaultDeadlineMillis))
        return false;
    } else if (const char *V = Value("--max-requests=")) {
      if (!parseUint64(V, "--max-requests", Opts.MaxRequests))
        return false;
    } else if (const char *V = Value("--fault-spec=")) {
      Opts.FaultSpec = V;
    } else if (const char *V = Value("--trace=")) {
      Opts.TracePath = V;
    } else if (const char *V = Value("--metrics-json=")) {
      Opts.MetricsJsonPath = V;
    } else if (const char *V = Value("--jobs=")) {
      uint64_t N = 0;
      if (!parseUint64(V, "--jobs", N) || N > UINT32_MAX)
        return false;
      Opts.Jobs = static_cast<uint32_t>(N);
    } else if (Arg == "-j") {
      if (++I >= argc) {
        std::cerr << "sdspd: -j needs a thread count\n";
        return false;
      }
      uint64_t N = 0;
      if (!parseUint64(argv[I], "-j", N) || N > UINT32_MAX)
        return false;
      Opts.Jobs = static_cast<uint32_t>(N);
    } else if (Arg == "--help" || Arg == "-h") {
      printUsage(std::cout);
      std::exit(0);
    } else {
      std::cerr << "sdspd: unknown option '" << Arg << "'\n";
      return false;
    }
  }
  if (Opts.SocketPath.empty()) {
    std::cerr << "sdspd: --socket is required\n";
    return false;
  }
  return true;
}

/// The self-pipe a signal handler can write to without taking locks;
/// poll() watches the read end next to the listener.
int ShutdownPipe[2] = {-1, -1};

void onShutdownSignal(int) {
  char B = 1;
  // Best effort: a full pipe already means a shutdown is pending.
  [[maybe_unused]] ssize_t N = ::write(ShutdownPipe[1], &B, 1);
}

/// Serves one connection: read a request frame, run the shared driver
/// core against the daemon's store, answer with one response frame.
/// The response always carries exit/stdout/stderr; protocol errors
/// (torn frame, malformed JSON) just drop the connection — the client
/// reports the transport failure.
void serveRequest(int Fd, uint64_t ReqId, const DaemonOptions &DOpts,
                  const driver::Env &BaseEnv, TraceTrack *Track) {
  std::string Payload;
  bool CleanClose = false;
  if (Status St = readFrame(Fd, Payload, CleanClose); !St) {
    ::close(Fd);
    return;
  }

  json::Value Req;
  std::string ParseError;
  std::vector<std::string> Args;
  std::string StdinText;
  bool Malformed = !json::parse(Payload, Req, ParseError);
  if (!Malformed) {
    const json::Value *Argv = Req.find("argv");
    if (Argv && Argv->isArray()) {
      for (const json::Value &A : Argv->items())
        if (A.isString())
          Args.push_back(A.asString());
    } else {
      Malformed = true;
      ParseError = "request has no argv array";
    }
    if (const json::Value *In = Req.find("stdin"); In && In->isString())
      StdinText = In->asString();
  }

  std::ostringstream Out, Err;
  std::map<std::string, std::string> Files;
  int Exit = 0;
  if (Malformed) {
    Err << "sdspc: malformed request: " << ParseError << "\n";
    Exit = 1;
  } else {
    if (Track)
      Track->beginSpan("request", "daemon");
    driver::Options Opts;
    switch (driver::parseArgs(Args, Opts, Out, Err)) {
    case driver::ParseResult::Help:
      Exit = 0;
      break;
    case driver::ParseResult::Error:
      driver::printUsage(Err);
      Exit = 1;
      break;
    case driver::ParseResult::Ok:
      if (!Opts.RemoteSocket.empty() || !Opts.StoreDir.empty() ||
          Opts.StoreBytes) {
        Err << "sdspc: --remote and --store-dir/--store-bytes cannot "
               "appear in a remote request (the daemon owns the "
               "store)\n";
        Exit = 1;
        break;
      }
      if (!Opts.DeadlineGiven && DOpts.DefaultDeadlineMillis) {
        Opts.DeadlineMillis = DOpts.DefaultDeadlineMillis;
        Opts.DeadlineGiven = true;
      }
      {
        std::istringstream In(StdinText);
        driver::Env Env = BaseEnv;
        Env.In = &In;
        Env.Files = &Files;
        Exit = driver::run(Opts, Env, Out, Err);
      }
      break;
    }
    if (Track) {
      Track->endSpan();
      Track->argU64("request_id", ReqId);
      Track->argU64("exit_code", static_cast<uint64_t>(Exit));
    }
  }

  json::Value Resp = json::Value::object();
  Resp.set("schema", json::Value::string("sdsp-response-v1"));
  Resp.set("exit", json::Value::integer(Exit));
  Resp.set("stdout", json::Value::string(Out.str()));
  Resp.set("stderr", json::Value::string(Err.str()));
  json::Value FileObj = json::Value::object();
  for (auto &[Path, Content] : Files)
    FileObj.set(Path, json::Value::string(std::move(Content)));
  Resp.set("files", std::move(FileObj));
  // A client that vanished mid-response is its own problem; the daemon
  // ignores the write status and keeps serving.
  [[maybe_unused]] Status St = writeFrame(Fd, json::serialize(Resp));
  ::close(Fd);
}

int runDaemon(const DaemonOptions &DOpts) {
  // The daemon's own fault schedule (daemon:accept and anything it
  // wants to flow into every request that carries no --fault-spec).
  const FaultSchedule *Faults = nullptr;
  FaultSchedule OwnedFaults;
  if (!DOpts.FaultSpec.empty()) {
    Expected<FaultSchedule> S = FaultSchedule::parse(DOpts.FaultSpec);
    if (!S) {
      std::cerr << "sdspd: " << S.status().str() << "\n";
      return 1;
    }
    OwnedFaults = std::move(*S);
    Faults = &OwnedFaults;
  } else {
    Expected<const FaultSchedule *> P = FaultSchedule::process();
    if (!P) {
      std::cerr << "sdspd: " << P.status().str() << "\n";
      return 1;
    }
    Faults = *P;
  }

  // The lifetime store stack: always a shared memory tier, plus the
  // persistent disk tier when a store directory is configured.
  driver::Options StoreOpts;
  StoreOpts.StoreDir = DOpts.StoreDir;
  StoreOpts.StoreBytes = DOpts.StoreBytes;
  driver::StoreStack Stack;
  if (!driver::makeStoreStack(StoreOpts, Stack, std::cerr))
    return 1;
  MemoryStore FallbackMemory;
  driver::Env BaseEnv;
  BaseEnv.Store = Stack.store() ? Stack.store()
                                : static_cast<ArtifactStore *>(&FallbackMemory);
  BaseEnv.Memory = Stack.Memory ? Stack.Memory.get() : &FallbackMemory;
  BaseEnv.Disk = Stack.Disk.get();

  if (::pipe(ShutdownPipe) != 0) {
    std::cerr << "sdspd: cannot create shutdown pipe\n";
    return 1;
  }
  std::signal(SIGTERM, onShutdownSignal);
  std::signal(SIGINT, onShutdownSignal);
  std::signal(SIGPIPE, SIG_IGN);

  int ListenFd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (ListenFd < 0) {
    std::cerr << "sdspd: cannot create socket\n";
    return 1;
  }
  sockaddr_un Addr{};
  Addr.sun_family = AF_UNIX;
  if (DOpts.SocketPath.size() >= sizeof(Addr.sun_path)) {
    std::cerr << "sdspd: socket path too long: '" << DOpts.SocketPath
              << "'\n";
    return 1;
  }
  std::snprintf(Addr.sun_path, sizeof(Addr.sun_path), "%s",
                DOpts.SocketPath.c_str());
  ::unlink(DOpts.SocketPath.c_str());
  if (::bind(ListenFd, reinterpret_cast<sockaddr *>(&Addr),
             sizeof(Addr)) < 0 ||
      ::listen(ListenFd, 64) < 0) {
    std::cerr << "sdspd: cannot listen on '" << DOpts.SocketPath << "'\n";
    ::close(ListenFd);
    return 1;
  }
  // The readiness line tests and CI poll for before connecting.
  std::cout << "sdspd: listening on " << DOpts.SocketPath << "\n"
            << std::flush;

  TraceCollector Collector;
  FaultContext AcceptFC(Faults, "daemon");
  uint64_t Accepted = 0, Dropped = 0;
  {
    Executor Pool(DOpts.Jobs);
    for (;;) {
      if (DOpts.MaxRequests && Accepted >= DOpts.MaxRequests)
        break;
      pollfd Fds[2] = {{ListenFd, POLLIN, 0}, {ShutdownPipe[0], POLLIN, 0}};
      int N = ::poll(Fds, 2, -1);
      if (N < 0) {
        if (errno == EINTR)
          continue; // The signal also wrote the pipe; re-poll sees it.
        break;
      }
      if (Fds[1].revents)
        break; // SIGTERM/SIGINT: drain and exit.
      if (!(Fds[0].revents & POLLIN))
        continue;
      int Fd = ::accept(ListenFd, nullptr, nullptr);
      if (Fd < 0)
        continue;
      ++Accepted;
      // The accept fault site: an armed failure here drops the
      // connection (the client sees a clean close and reports the
      // transport error); the daemon keeps serving.
      if (Status St = AcceptFC.checkpoint("daemon:accept"); !St) {
        ::close(Fd);
        ++Dropped;
        continue;
      }
      uint64_t ReqId = Accepted;
      TraceTrack *Track =
          DOpts.TracePath.empty()
              ? nullptr
              : &Collector.track("request:" + std::to_string(ReqId));
      Pool.submit([Fd, ReqId, &DOpts, &BaseEnv, Track]() -> Status {
        serveRequest(Fd, ReqId, DOpts, BaseEnv, Track);
        return Status::ok();
      });
    }
    // Stop accepting before draining: clients connecting during the
    // drain get a connection error, not a hung request.
    ::close(ListenFd);
    ::unlink(DOpts.SocketPath.c_str());
    Pool.wait();
  } // Pool joins here; every in-flight request has answered.

  MetricsRegistry &MR = MetricsRegistry::global();
  MR.add("daemon.requests", Accepted);
  MR.add("daemon.dropped", Dropped);
  if (!DOpts.MetricsJsonPath.empty()) {
    driver::flushMemoryStoreMetrics(*BaseEnv.Memory);
    if (BaseEnv.Disk)
      driver::flushDiskStoreMetrics(*BaseEnv.Disk);
    std::ofstream File(DOpts.MetricsJsonPath);
    if (!File) {
      std::cerr << "sdspd: cannot write '" << DOpts.MetricsJsonPath
                << "'\n";
      return 1;
    }
    MetricsRegistry::writeJson(MR.snapshot(), File);
  }
  if (!DOpts.TracePath.empty()) {
    std::ofstream File(DOpts.TracePath);
    if (!File) {
      std::cerr << "sdspd: cannot write '" << DOpts.TracePath << "'\n";
      return 1;
    }
    Collector.writeJson(File);
  }
  std::cerr << "sdspd: served " << (Accepted - Dropped) << " requests ("
            << Dropped << " dropped), shutting down\n";
  return 0;
}

} // namespace

int main(int argc, char **argv) {
  DaemonOptions Opts;
  if (!parseDaemonArgs(argc, argv, Opts)) {
    printUsage(std::cerr);
    return 1;
  }
  return runDaemon(Opts);
}

#else // _WIN32

#include <iostream>

int main() {
  std::cerr << "sdspd: not supported on this platform\n";
  return 1;
}

#endif
