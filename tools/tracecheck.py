#!/usr/bin/env python3
"""Validators for sdspc observability output (docs/OBSERVABILITY.md).

Two subcommands, both exiting 0 on success and 1 with a readable
message on the first violation:

  tracecheck.py trace FILE
      Schema-check a Chrome trace-event capture produced by
      `sdspc --trace=FILE`: well-formed JSON, a traceEvents array,
      metadata ("M") records naming the process and every track,
      per-track monotone timestamps, balanced B/E span nesting, and
      an explicit scope on every instant.  "simd-dispatch" instants
      (the fast engine recording which readiness-sweep tier it
      selected, petri/SimdDispatch.h) must additionally carry a known
      tier name in their args.  "store-publish" instants (a pass
      artifact persisted to the content-addressed disk store,
      docs/SERVICE.md) must name the pass and a nonzero byte count,
      and "request" spans (one per sdspd request) may only appear on
      the daemon's "request:N" tracks.  Anything Perfetto or
      chrome://tracing would render wrong fails here first.

  tracecheck.py metrics-diff A B
      Compare the "counters" objects of two `sdspc --metrics-json`
      reports and fail on any difference.  Gauges (wall time, queue
      depth) are scheduling-dependent by design and are ignored; the
      counters are the determinism surface CI pins across -j values.

  tracecheck.py faults TRACE METRICS
      Cross-check fault-injection observability (docs/ROBUSTNESS.md):
      every "fault-injected" instant in the trace must be matched by
      the fault.injected counter (totals and per-site breakdown, ':'
      mapped to '.'), and "cancelled" instants must match the
      cancel.observed gauge.  A mismatch means a fault fired without
      being recorded, or vice versa.

  tracecheck.py pnml TRACE METRICS
      Cross-check PNML interop observability (docs/INTEROP.md):
      import-pnml / export-pnml spans must pair B/E per track, every
      closing record must carry a known "resolved" disposition, and
      the computed spans must reconcile with the pnml.* counters —
      computed imports == pnml.imports, computed exports ==
      pnml.exports, failed imports >= pnml.rejects, and the structural
      counters (places/transitions/arcs, export bytes) must be
      consistent with the imports/exports that produced them.
"""

import json
import sys

# Tier names the engine's SimdDispatch layer can report (must match
# sdsp::simdTierName in src/petri/SimdDispatch.cpp).
SIMD_TIERS = {"scalar", "sse2", "avx2", "avx512"}


def fail(msg):
    print(f"tracecheck: {msg}", file=sys.stderr)
    sys.exit(1)


def load_json(path):
    try:
        with open(path, "r", encoding="utf-8") as f:
            return json.load(f)
    except OSError as e:
        fail(f"cannot read '{path}': {e.strerror}")
    except json.JSONDecodeError as e:
        fail(f"'{path}' is not valid JSON: {e}")


def check_trace(path):
    doc = load_json(path)
    if not isinstance(doc, dict) or "traceEvents" not in doc:
        fail(f"'{path}': missing top-level 'traceEvents' array")
    events = doc["traceEvents"]
    if not isinstance(events, list) or not events:
        fail(f"'{path}': 'traceEvents' must be a non-empty array")

    named_tids = set()
    track_names = {}
    process_named = False
    # Per-tid state: last timestamp and the open-span stack.
    last_ts = {}
    open_spans = {}
    counts = {"B": 0, "E": 0, "i": 0, "simd": 0, "request": 0, "store": 0}

    for i, ev in enumerate(events):
        where = f"'{path}' event {i}"
        if not isinstance(ev, dict):
            fail(f"{where}: not an object")
        ph = ev.get("ph")
        if ph == "M":
            if ev.get("name") == "process_name":
                process_named = True
            elif ev.get("name") == "thread_name":
                named_tids.add(ev.get("tid"))
                track_names[ev.get("tid")] = \
                    ev.get("args", {}).get("name", "")
            continue
        if ph not in ("B", "E", "i"):
            fail(f"{where}: unexpected phase {ph!r}")
        counts[ph] += 1
        tid = ev.get("tid")
        ts = ev.get("ts")
        if not isinstance(tid, int) or not isinstance(ts, int):
            fail(f"{where}: integer 'tid' and 'ts' are required")
        if tid not in named_tids:
            fail(f"{where}: tid {tid} has no thread_name metadata")
        if ts < last_ts.get(tid, 0):
            fail(f"{where}: ts {ts} < {last_ts[tid]} on tid {tid} "
                 "(timestamps must be monotone per track)")
        last_ts[tid] = ts
        stack = open_spans.setdefault(tid, [])
        if ph == "B":
            stack.append(ev.get("name"))
        elif ph == "E":
            if not stack:
                fail(f"{where}: 'E' with no open span on tid {tid}")
            stack.pop()
        elif ev.get("s") not in ("t", "p", "g"):
            fail(f"{where}: instant needs an explicit scope 's'")
        if ph == "i" and ev.get("name") == "simd-dispatch":
            tier = ev.get("args", {}).get("tier")
            if tier not in SIMD_TIERS:
                fail(f"{where}: simd-dispatch instant has tier {tier!r}, "
                     f"expected one of {sorted(SIMD_TIERS)}")
            counts["simd"] += 1
        if ph == "i" and ev.get("name") == "store-publish":
            # A pass artifact reached the persistent disk store
            # (docs/SERVICE.md); the instant must identify the pass and
            # the serialized object size.
            args = ev.get("args", {})
            if not isinstance(args.get("pass"), str) or not args["pass"]:
                fail(f"{where}: store-publish instant has no 'pass' arg")
            if not isinstance(args.get("bytes"), int) or args["bytes"] < 1:
                fail(f"{where}: store-publish instant needs a positive "
                     f"'bytes' arg, got {args.get('bytes')!r}")
            counts["store"] += 1
        if ph == "B" and ev.get("name") == "request":
            # The sdspd request span lives on a per-request track.
            if not track_names.get(tid, "").startswith("request:"):
                fail(f"{where}: 'request' span on track "
                     f"{track_names.get(tid)!r} (expected a "
                     "'request:N' daemon track)")
            counts["request"] += 1

    if not process_named:
        fail(f"'{path}': no process_name metadata record")
    for tid, stack in open_spans.items():
        if stack:
            fail(f"'{path}': tid {tid} ends with unclosed span(s) "
                 f"{stack} (B/E must balance)")
    if counts["B"] != counts["E"]:
        fail(f"'{path}': {counts['B']} 'B' events vs {counts['E']} 'E'")
    print(f"tracecheck: '{path}' ok — {len(named_tids)} track(s), "
          f"{counts['B']} span(s), {counts['i']} instant(s), "
          f"{counts['simd']} simd-dispatch, {counts['request']} "
          f"request span(s), {counts['store']} store-publish")


def load_counters(path):
    doc = load_json(path)
    if doc.get("schema") != "sdsp-metrics-v1":
        fail(f"'{path}': expected schema 'sdsp-metrics-v1', "
             f"got {doc.get('schema')!r}")
    counters = doc.get("counters")
    if not isinstance(counters, dict):
        fail(f"'{path}': missing 'counters' object")
    return counters


def check_metrics_diff(path_a, path_b):
    a, b = load_counters(path_a), load_counters(path_b)
    diffs = []
    for name in sorted(set(a) | set(b)):
        va, vb = a.get(name), b.get(name)
        if va != vb:
            diffs.append(f"  {name}: {va} vs {vb}")
    if diffs:
        fail(f"counters differ between '{path_a}' and '{path_b}':\n"
             + "\n".join(diffs))
    print(f"tracecheck: {len(a)} counter(s) identical")


def check_faults(trace_path, metrics_path):
    doc = load_json(trace_path)
    if not isinstance(doc, dict) or "traceEvents" not in doc:
        fail(f"'{trace_path}': missing top-level 'traceEvents' array")

    injected = 0
    per_site = {}
    cancelled = 0
    for ev in doc["traceEvents"]:
        if not isinstance(ev, dict) or ev.get("ph") != "i":
            continue
        name = ev.get("name")
        if name == "fault-injected":
            injected += 1
            site = ev.get("args", {}).get("site")
            if not isinstance(site, str) or not site:
                fail(f"'{trace_path}': a fault-injected instant has no "
                     "'site' arg")
            per_site[site] = per_site.get(site, 0) + 1
        elif name == "cancelled":
            cancelled += 1

    mdoc = load_json(metrics_path)
    counters = load_counters(metrics_path)
    gauges = mdoc.get("gauges", {})

    total = counters.get("fault.injected", 0)
    if total != injected:
        fail(f"fault.injected counter is {total} but '{trace_path}' has "
             f"{injected} fault-injected instant(s)")
    for site, n in sorted(per_site.items()):
        key = "fault.injected." + site.replace(":", ".")
        if counters.get(key, 0) != n:
            fail(f"{key} counter is {counters.get(key, 0)} but "
                 f"'{trace_path}' has {n} firing(s) at {site}")
    site_sum = sum(v for k, v in counters.items()
                   if k.startswith("fault.injected."))
    if site_sum != total:
        fail(f"per-site fault.injected.* counters sum to {site_sum}, "
             f"expected {total}")
    observed = int(gauges.get("cancel.observed", 0))
    if observed != cancelled:
        fail(f"cancel.observed gauge is {observed} but '{trace_path}' "
             f"has {cancelled} cancelled instant(s)")
    print(f"tracecheck: faults ok — {injected} firing(s) over "
          f"{len(per_site)} site(s), {cancelled} cancellation(s)")


PNML_DISPOSITIONS = {"computed", "hit", "shared-hit", "failed", "cancelled"}


def check_pnml(trace_path, metrics_path):
    doc = load_json(trace_path)
    if not isinstance(doc, dict) or "traceEvents" not in doc:
        fail(f"'{trace_path}': missing top-level 'traceEvents' array")

    # Pair import-pnml/export-pnml B/E spans per track and bucket the
    # closing records by their "resolved" disposition.
    open_pnml = {}
    resolved = {"import-pnml": {}, "export-pnml": {}}
    for i, ev in enumerate(doc["traceEvents"]):
        if not isinstance(ev, dict):
            continue
        name = ev.get("name")
        if name not in ("import-pnml", "export-pnml"):
            continue
        where = f"'{trace_path}' event {i}"
        tid = ev.get("tid")
        if ev.get("ph") == "B":
            if open_pnml.get(tid):
                fail(f"{where}: nested {name} span on tid {tid}")
            open_pnml[tid] = name
        elif ev.get("ph") == "E":
            if open_pnml.get(tid) != name:
                fail(f"{where}: 'E' for {name} without a matching 'B' "
                     f"on tid {tid}")
            open_pnml[tid] = None
            how = ev.get("args", {}).get("resolved")
            if how not in PNML_DISPOSITIONS:
                fail(f"{where}: {name} resolved {how!r}, expected one "
                     f"of {sorted(PNML_DISPOSITIONS)}")
            bucket = resolved[name]
            bucket[how] = bucket.get(how, 0) + 1
    for tid, name in open_pnml.items():
        if name:
            fail(f"'{trace_path}': tid {tid} ends inside an open "
                 f"{name} span")

    imports = resolved["import-pnml"]
    exports = resolved["export-pnml"]
    if not imports:
        fail(f"'{trace_path}': no import-pnml spans at all")

    c = load_counters(metrics_path)
    computed_imports = imports.get("computed", 0)
    if c.get("pnml.imports", 0) != computed_imports:
        fail(f"pnml.imports is {c.get('pnml.imports', 0)} but the trace "
             f"has {computed_imports} computed import-pnml span(s)")
    computed_exports = exports.get("computed", 0)
    if c.get("pnml.exports", 0) != computed_exports:
        fail(f"pnml.exports is {c.get('pnml.exports', 0)} but the trace "
             f"has {computed_exports} computed export-pnml span(s)")
    if imports.get("failed", 0) < c.get("pnml.rejects", 0):
        fail(f"pnml.rejects is {c.get('pnml.rejects', 0)} but only "
             f"{imports.get('failed', 0)} import-pnml span(s) failed")
    # Structural counters: every computed import counts at least one
    # transition and two arcs (a net needs a transition, and arcs come
    # in producer/consumer pairs for anything cyclic); every computed
    # export writes bytes.
    if computed_imports and c.get("pnml.transitions", 0) < computed_imports:
        fail(f"pnml.transitions is {c.get('pnml.transitions', 0)} for "
             f"{computed_imports} computed import(s)")
    if computed_exports and c.get("pnml.export.bytes", 0) < computed_exports:
        fail(f"pnml.export.bytes is {c.get('pnml.export.bytes', 0)} for "
             f"{computed_exports} computed export(s)")
    print(f"tracecheck: pnml ok — imports {imports}, exports {exports}")


def main(argv):
    if len(argv) >= 3 and argv[1] == "trace" and len(argv) == 3:
        check_trace(argv[2])
    elif len(argv) == 4 and argv[1] == "metrics-diff":
        check_metrics_diff(argv[2], argv[3])
    elif len(argv) == 4 and argv[1] == "faults":
        check_faults(argv[2], argv[3])
    elif len(argv) == 4 and argv[1] == "pnml":
        check_pnml(argv[2], argv[3])
    else:
        fail("usage: tracecheck.py trace FILE | "
             "tracecheck.py metrics-diff A B | "
             "tracecheck.py faults TRACE METRICS | "
             "tracecheck.py pnml TRACE METRICS")


if __name__ == "__main__":
    main(sys.argv)
